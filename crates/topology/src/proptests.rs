//! Property-based tests over all provided topologies.

use proptest::prelude::*;

use supersim_netbase::{RouterId, TerminalId};

use crate::{Dragonfly, FoldedClos, HyperX, Topology, Torus};

fn check_wiring(t: &dyn Topology) {
    let mut terminal_seen = vec![false; t.num_terminals() as usize];
    for r in 0..t.num_routers() {
        let router = RouterId(r);
        for p in 0..t.radix(router) {
            let term = t.terminal_at(router, p);
            let net = t.neighbor(router, p);
            assert!(
                term.is_none() || net.is_none(),
                "r{r} p{p} is both a terminal and a network port"
            );
            if let Some(term) = term {
                assert!(
                    !std::mem::replace(&mut terminal_seen[term.index()], true),
                    "terminal {term} attached twice"
                );
                assert_eq!(t.terminal_attachment(term), (router, p));
            }
            if let Some((nr, np)) = net {
                assert_eq!(
                    t.neighbor(nr, np),
                    Some((router, p)),
                    "r{r} p{p}: neighbor not symmetric"
                );
                assert_ne!((nr, np), (router, p), "self-loop at r{r} p{p}");
            }
        }
    }
    assert!(
        terminal_seen.iter().all(|&s| s),
        "some terminal never attached"
    );
}

fn check_min_hops_triangle(t: &dyn Topology, samples: u32) {
    // min_hops is symmetric, zero iff same router, and obeys the triangle
    // inequality through any third terminal.
    let n = t.num_terminals();
    let step = (n / samples).max(1);
    for a in (0..n).step_by(step as usize) {
        for b in (0..n).step_by(step as usize) {
            let ab = t.min_hops(TerminalId(a), TerminalId(b));
            let ba = t.min_hops(TerminalId(b), TerminalId(a));
            assert_eq!(ab, ba, "asymmetric min_hops {a}<->{b}");
            let (ra, _) = t.terminal_attachment(TerminalId(a));
            let (rb, _) = t.terminal_attachment(TerminalId(b));
            assert_eq!(ab == 0, ra == rb);
            for c in (0..n).step_by((step * 3) as usize) {
                let ac = t.min_hops(TerminalId(a), TerminalId(c));
                let cb = t.min_hops(TerminalId(c), TerminalId(b));
                assert!(ab <= ac + cb, "triangle violated {a}->{c}->{b}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn torus_wiring(dims in prop::collection::vec(2u32..5, 1..4), conc in 1u32..4) {
        let t = Torus::new(dims, conc).unwrap();
        check_wiring(&t);
        check_min_hops_triangle(&t, 6);
    }

    #[test]
    fn clos_wiring(levels in 1u32..4, k in 2u32..5) {
        let t = FoldedClos::new(levels, k).unwrap();
        check_wiring(&t);
        check_min_hops_triangle(&t, 6);
    }

    #[test]
    fn hyperx_wiring(dims in prop::collection::vec(2u32..5, 1..3), conc in 1u32..4) {
        let t = HyperX::new(dims, conc).unwrap();
        check_wiring(&t);
        check_min_hops_triangle(&t, 6);
    }

    #[test]
    fn dragonfly_wiring(a in 2u32..5, h in 1u32..3, p in 1u32..3) {
        let t = Dragonfly::new(a, h, p).unwrap();
        check_wiring(&t);
        check_min_hops_triangle(&t, 6);
    }
}
