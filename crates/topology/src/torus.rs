//! k-ary n-cube (torus) topology with per-dimension widths.
//!
//! Port layout per router: ports `0..concentration` attach terminals; then
//! each dimension `d` contributes a plus-direction port
//! (`concentration + 2d`) and a minus-direction port
//! (`concentration + 2d + 1`).

use supersim_netbase::{Port, RouterId, TerminalId};

use crate::types::{from_coords, to_coords, Topology, TopologyError};

/// A torus with arbitrary per-dimension widths.
///
/// # Example
///
/// ```
/// use supersim_topology::{Topology, Torus};
///
/// // The paper's case study C: 4-D torus 8x8x8x8, concentration 1.
/// let t = Torus::new(vec![8, 8, 8, 8], 1).unwrap();
/// assert_eq!(t.num_routers(), 4096);
/// assert_eq!(t.num_terminals(), 4096);
/// assert_eq!(t.radix(supersim_netbase::RouterId(0)), 1 + 8);
/// ```
#[derive(Debug, Clone)]
pub struct Torus {
    widths: Vec<u32>,
    concentration: u32,
    num_routers: u32,
}

impl Torus {
    /// Creates a torus.
    ///
    /// # Errors
    ///
    /// Returns an error if `widths` is empty, any width is less than 2, or
    /// `concentration` is zero.
    pub fn new(widths: Vec<u32>, concentration: u32) -> Result<Self, TopologyError> {
        if widths.is_empty() {
            return Err(TopologyError::new("torus needs at least one dimension"));
        }
        if widths.iter().any(|&w| w < 2) {
            return Err(TopologyError::new("torus widths must be at least 2"));
        }
        if concentration == 0 {
            return Err(TopologyError::new("torus concentration must be at least 1"));
        }
        let num_routers = widths
            .iter()
            .try_fold(1u32, |acc, &w| acc.checked_mul(w))
            .ok_or_else(|| TopologyError::new("torus size overflows u32"))?;
        Ok(Torus {
            widths,
            concentration,
            num_routers,
        })
    }

    /// Per-dimension widths.
    pub fn widths(&self) -> &[u32] {
        &self.widths
    }

    /// Terminals per router.
    pub fn concentration(&self) -> u32 {
        self.concentration
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.widths.len()
    }

    /// Coordinates of a router.
    pub fn router_coords(&self, router: RouterId) -> Vec<u32> {
        to_coords(router.0, &self.widths)
    }

    /// Router at the given coordinates.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when a coordinate is out of range.
    pub fn router_at(&self, coords: &[u32]) -> RouterId {
        RouterId(from_coords(coords, &self.widths))
    }

    /// The network port moving in `dim`, `+1` direction when `plus` is
    /// true, `-1` otherwise.
    pub fn port_toward(&self, dim: usize, plus: bool) -> Port {
        self.concentration + 2 * dim as u32 + u32::from(!plus)
    }

    /// Decodes a network port into `(dim, plus)`.
    ///
    /// Returns `None` for terminal ports or out-of-range ports.
    pub fn port_direction(&self, port: Port) -> Option<(usize, bool)> {
        if port < self.concentration {
            return None;
        }
        let rel = port - self.concentration;
        let dim = (rel / 2) as usize;
        if dim >= self.widths.len() {
            return None;
        }
        Some((dim, rel.is_multiple_of(2)))
    }

    /// Signed minimal offset from `from` to `to` along a ring of width `w`:
    /// the distance and the direction (`true` = plus) of the shorter way
    /// around. Ties choose plus.
    pub fn ring_step(from: u32, to: u32, w: u32) -> Option<(u32, bool)> {
        if from == to {
            return None;
        }
        let fwd = (to + w - from) % w;
        let bwd = w - fwd;
        if fwd <= bwd {
            Some((fwd, true))
        } else {
            Some((bwd, false))
        }
    }
}

impl Topology for Torus {
    fn name(&self) -> &str {
        "torus"
    }

    fn num_routers(&self) -> u32 {
        self.num_routers
    }

    fn num_terminals(&self) -> u32 {
        self.num_routers * self.concentration
    }

    fn radix(&self, _router: RouterId) -> u32 {
        self.concentration + 2 * self.widths.len() as u32
    }

    fn terminal_attachment(&self, terminal: TerminalId) -> (RouterId, Port) {
        (
            RouterId(terminal.0 / self.concentration),
            terminal.0 % self.concentration,
        )
    }

    fn terminal_at(&self, router: RouterId, port: Port) -> Option<TerminalId> {
        (port < self.concentration).then(|| TerminalId(router.0 * self.concentration + port))
    }

    fn neighbor(&self, router: RouterId, port: Port) -> Option<(RouterId, Port)> {
        let (dim, plus) = self.port_direction(port)?;
        let mut coords = self.router_coords(router);
        let w = self.widths[dim];
        coords[dim] = if plus {
            (coords[dim] + 1) % w
        } else {
            (coords[dim] + w - 1) % w
        };
        let other = self.router_at(&coords);
        // Arriving on the opposite-direction port of the neighbor.
        Some((other, self.port_toward(dim, !plus)))
    }

    fn min_hops(&self, src: TerminalId, dst: TerminalId) -> u32 {
        let (sr, _) = self.terminal_attachment(src);
        let (dr, _) = self.terminal_attachment(dst);
        let sc = self.router_coords(sr);
        let dc = self.router_coords(dr);
        sc.iter()
            .zip(&dc)
            .zip(&self.widths)
            .map(|((&a, &b), &w)| Torus::ring_step(a, b, w).map_or(0, |(d, _)| d))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Torus::new(vec![], 1).is_err());
        assert!(Torus::new(vec![1], 1).is_err());
        assert!(Torus::new(vec![4], 0).is_err());
    }

    #[test]
    fn sizes() {
        let t = Torus::new(vec![4, 4], 2).unwrap();
        assert_eq!(t.num_routers(), 16);
        assert_eq!(t.num_terminals(), 32);
        assert_eq!(t.radix(RouterId(3)), 2 + 4);
        assert_eq!(t.dims(), 2);
    }

    #[test]
    fn terminal_attachment_round_trip() {
        let t = Torus::new(vec![3, 3], 4).unwrap();
        for i in 0..t.num_terminals() {
            let (r, p) = t.terminal_attachment(TerminalId(i));
            assert_eq!(t.terminal_at(r, p), Some(TerminalId(i)));
        }
        assert_eq!(t.terminal_at(RouterId(0), 4), None); // network port
    }

    #[test]
    fn neighbor_is_involution() {
        let t = Torus::new(vec![4, 3, 2], 1).unwrap();
        for r in 0..t.num_routers() {
            for p in 0..t.radix(RouterId(r)) {
                if let Some((nr, np)) = t.neighbor(RouterId(r), p) {
                    assert_eq!(
                        t.neighbor(nr, np),
                        Some((RouterId(r), p)),
                        "r{r} p{p} not symmetric"
                    );
                }
            }
        }
    }

    #[test]
    fn wrap_around_links() {
        let t = Torus::new(vec![4], 1).unwrap();
        // Router 3 plus-direction wraps to router 0.
        let plus = t.port_toward(0, true);
        assert_eq!(
            t.neighbor(RouterId(3), plus),
            Some((RouterId(0), t.port_toward(0, false)))
        );
    }

    #[test]
    fn ring_step_prefers_short_way() {
        assert_eq!(Torus::ring_step(0, 1, 8), Some((1, true)));
        assert_eq!(Torus::ring_step(0, 7, 8), Some((1, false)));
        assert_eq!(Torus::ring_step(0, 4, 8), Some((4, true))); // tie → plus
        assert_eq!(Torus::ring_step(2, 2, 8), None);
    }

    #[test]
    fn min_hops_sums_dimensions() {
        let t = Torus::new(vec![8, 8], 1).unwrap();
        let src = TerminalId(0); // router (0,0)
        let dst = TerminalId(from_coords(&[3, 7], &[8, 8]));
        // dim0: 3 hops; dim1: 1 hop the short way.
        assert_eq!(t.min_hops(src, dst), 4);
        assert_eq!(t.min_hops(src, src), 0);
    }

    #[test]
    fn width_two_ring_has_distinct_ports() {
        let t = Torus::new(vec![2], 1).unwrap();
        let plus = t.port_toward(0, true);
        let minus = t.port_toward(0, false);
        // Both ports reach the same router but on opposite ports.
        assert_eq!(t.neighbor(RouterId(0), plus), Some((RouterId(1), minus)));
        assert_eq!(t.neighbor(RouterId(0), minus), Some((RouterId(1), plus)));
    }

    use crate::types::from_coords;
}
