//! HyperX topology: fully-connected dimensions.
//!
//! A HyperX has `n` dimensions of widths `S[0..n]`; routers at coordinates
//! differing in exactly one dimension are directly connected. With all
//! widths 2 this is the hypercube; with one dimension it is the 1-D
//! flattened butterfly used in paper case study B.
//!
//! Port layout per router: ports `0..concentration` attach terminals; then
//! dimension `d` contributes `S[d] - 1` ports, one per other coordinate in
//! that dimension, ordered by coordinate with the router's own coordinate
//! skipped.

use supersim_netbase::{Port, RouterId, TerminalId};

use crate::types::{from_coords, to_coords, Topology, TopologyError};

/// A HyperX network.
///
/// # Example
///
/// ```
/// use supersim_topology::{HyperX, Topology};
/// use supersim_netbase::RouterId;
///
/// // Paper §VI-B: 1-D flattened butterfly, 32 routers, concentration 32:
/// // 1024 terminals, radix 63 routers.
/// let h = HyperX::new(vec![32], 32).unwrap();
/// assert_eq!(h.num_terminals(), 1024);
/// assert_eq!(h.radix(RouterId(0)), 63);
/// ```
#[derive(Debug, Clone)]
pub struct HyperX {
    widths: Vec<u32>,
    concentration: u32,
    num_routers: u32,
    /// First port of each dimension's port block (after terminal ports).
    dim_port_base: Vec<u32>,
}

impl HyperX {
    /// Creates a HyperX.
    ///
    /// # Errors
    ///
    /// Returns an error if `widths` is empty, any width is less than 2, or
    /// `concentration` is zero.
    pub fn new(widths: Vec<u32>, concentration: u32) -> Result<Self, TopologyError> {
        if widths.is_empty() {
            return Err(TopologyError::new("hyperx needs at least one dimension"));
        }
        if widths.iter().any(|&w| w < 2) {
            return Err(TopologyError::new("hyperx widths must be at least 2"));
        }
        if concentration == 0 {
            return Err(TopologyError::new(
                "hyperx concentration must be at least 1",
            ));
        }
        let num_routers = widths
            .iter()
            .try_fold(1u32, |acc, &w| acc.checked_mul(w))
            .ok_or_else(|| TopologyError::new("hyperx size overflows u32"))?;
        let mut dim_port_base = Vec::with_capacity(widths.len());
        let mut base = concentration;
        for &w in &widths {
            dim_port_base.push(base);
            base += w - 1;
        }
        Ok(HyperX {
            widths,
            concentration,
            num_routers,
            dim_port_base,
        })
    }

    /// Per-dimension widths.
    pub fn widths(&self) -> &[u32] {
        &self.widths
    }

    /// Terminals per router.
    pub fn concentration(&self) -> u32 {
        self.concentration
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.widths.len()
    }

    /// Coordinates of a router.
    pub fn router_coords(&self, router: RouterId) -> Vec<u32> {
        to_coords(router.0, &self.widths)
    }

    /// Router at the given coordinates.
    pub fn router_at(&self, coords: &[u32]) -> RouterId {
        RouterId(from_coords(coords, &self.widths))
    }

    /// The output port on `router` that reaches coordinate `to` in
    /// dimension `dim` directly.
    ///
    /// # Panics
    ///
    /// Panics if `to` equals the router's own coordinate in `dim` (no
    /// self-link exists) or is out of range.
    pub fn port_toward(&self, router: RouterId, dim: usize, to: u32) -> Port {
        let own = self.router_coords(router)[dim];
        assert!(to < self.widths[dim], "coordinate out of range");
        assert_ne!(to, own, "no self-link in a fully connected dimension");
        // Ports are ordered by target coordinate with `own` skipped.
        self.dim_port_base[dim] + if to < own { to } else { to - 1 }
    }

    /// Decodes a network port into `(dim, target coordinate)`.
    ///
    /// Returns `None` for terminal or out-of-range ports.
    pub fn port_target(&self, router: RouterId, port: Port) -> Option<(usize, u32)> {
        if port < self.concentration {
            return None;
        }
        let dim = self.dim_port_base.iter().rposition(|&b| b <= port)?;
        let rel = port - self.dim_port_base[dim];
        if rel >= self.widths[dim] - 1 {
            return None;
        }
        let own = self.router_coords(router)[dim];
        Some((dim, if rel < own { rel } else { rel + 1 }))
    }
}

impl Topology for HyperX {
    fn name(&self) -> &str {
        "hyperx"
    }

    fn num_routers(&self) -> u32 {
        self.num_routers
    }

    fn num_terminals(&self) -> u32 {
        self.num_routers * self.concentration
    }

    fn radix(&self, _router: RouterId) -> u32 {
        self.concentration + self.widths.iter().map(|&w| w - 1).sum::<u32>()
    }

    fn terminal_attachment(&self, terminal: TerminalId) -> (RouterId, Port) {
        (
            RouterId(terminal.0 / self.concentration),
            terminal.0 % self.concentration,
        )
    }

    fn terminal_at(&self, router: RouterId, port: Port) -> Option<TerminalId> {
        (port < self.concentration).then(|| TerminalId(router.0 * self.concentration + port))
    }

    fn neighbor(&self, router: RouterId, port: Port) -> Option<(RouterId, Port)> {
        let (dim, to) = self.port_target(router, port)?;
        let mut coords = self.router_coords(router);
        let own = coords[dim];
        coords[dim] = to;
        let other = self.router_at(&coords);
        Some((other, self.port_toward(other, dim, own)))
    }

    fn min_hops(&self, src: TerminalId, dst: TerminalId) -> u32 {
        let (sr, _) = self.terminal_attachment(src);
        let (dr, _) = self.terminal_attachment(dst);
        let sc = self.router_coords(sr);
        let dc = self.router_coords(dr);
        sc.iter().zip(&dc).filter(|(a, b)| a != b).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(HyperX::new(vec![], 1).is_err());
        assert!(HyperX::new(vec![1], 1).is_err());
        assert!(HyperX::new(vec![4], 0).is_err());
    }

    #[test]
    fn flattened_butterfly_1d() {
        let h = HyperX::new(vec![32], 32).unwrap();
        assert_eq!(h.num_routers(), 32);
        assert_eq!(h.num_terminals(), 1024);
        assert_eq!(h.radix(RouterId(0)), 63);
    }

    #[test]
    fn hypercube() {
        let h = HyperX::new(vec![2, 2, 2], 1).unwrap();
        assert_eq!(h.num_routers(), 8);
        assert_eq!(h.radix(RouterId(0)), 1 + 3);
        // Hamming distance as hop count.
        assert_eq!(h.min_hops(TerminalId(0), TerminalId(7)), 3);
        assert_eq!(h.min_hops(TerminalId(0), TerminalId(4)), 1);
    }

    #[test]
    fn port_toward_and_back() {
        let h = HyperX::new(vec![4, 3], 2).unwrap();
        for r in 0..h.num_routers() {
            let router = RouterId(r);
            let coords = h.router_coords(router);
            for (dim, &here) in coords.iter().enumerate() {
                for to in 0..h.widths()[dim] {
                    if to == here {
                        continue;
                    }
                    let port = h.port_toward(router, dim, to);
                    assert_eq!(h.port_target(router, port), Some((dim, to)));
                }
            }
        }
    }

    #[test]
    fn neighbor_is_involution() {
        let h = HyperX::new(vec![4, 3], 2).unwrap();
        for r in 0..h.num_routers() {
            for p in 0..h.radix(RouterId(r)) {
                if let Some((nr, np)) = h.neighbor(RouterId(r), p) {
                    assert_eq!(
                        h.neighbor(nr, np),
                        Some((RouterId(r), p)),
                        "r{r} p{p} not symmetric"
                    );
                }
            }
        }
    }

    #[test]
    fn direct_links_in_each_dimension() {
        let h = HyperX::new(vec![4], 1).unwrap();
        // Router 1 reaches routers 0, 2, 3 directly.
        let targets: Vec<_> = (1..4)
            .map(|p| h.neighbor(RouterId(1), p).unwrap().0 .0)
            .collect();
        assert_eq!(targets, vec![0, 2, 3]);
    }

    #[test]
    fn terminal_ports_have_no_neighbor() {
        let h = HyperX::new(vec![4], 2).unwrap();
        assert_eq!(h.neighbor(RouterId(0), 0), None);
        assert_eq!(h.neighbor(RouterId(0), 1), None);
        assert!(h.neighbor(RouterId(0), 2).is_some());
        assert_eq!(h.neighbor(RouterId(0), 99), None);
    }
}
