//! The topology abstraction.

use std::error::Error;
use std::fmt;

use supersim_netbase::{Port, RouterId, TerminalId};

/// Invalid topology parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyError {
    message: String,
}

impl TopologyError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        TopologyError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid topology: {}", self.message)
    }
}

impl Error for TopologyError {}

/// Classes of channels, used to assign per-class latencies (e.g. dragonfly
/// global links are much longer than local links).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelClass {
    /// Router ↔ terminal channel.
    Terminal,
    /// Ordinary router ↔ router channel.
    Local,
    /// Long-reach channel (dragonfly inter-group links).
    Global,
}

/// The shape of a network.
///
/// Conventions shared by all implementations:
///
/// - Router ports `0..concentration` attach terminals; network ports
///   follow.
/// - [`Topology::neighbor`] is an involution at the port level: if
///   `neighbor(r, p) == Some((s, q))` then `neighbor(s, q) == Some((r, p))`
///   — channels are bidirectional pairs of unidirectional links. The
///   property-based tests enforce this for every provided topology.
pub trait Topology: Send + Sync {
    /// Short topology name (e.g. `"torus"`).
    fn name(&self) -> &str;

    /// Total number of routers.
    fn num_routers(&self) -> u32;

    /// Total number of terminals.
    fn num_terminals(&self) -> u32;

    /// Total ports (terminal + network) on `router`.
    fn radix(&self, router: RouterId) -> u32;

    /// The router and router port a terminal attaches to.
    fn terminal_attachment(&self, terminal: TerminalId) -> (RouterId, Port);

    /// The terminal attached at (`router`, `port`), if `port` is a terminal
    /// port.
    fn terminal_at(&self, router: RouterId, port: Port) -> Option<TerminalId>;

    /// The far end of a network port: `(neighbor router, its port)`.
    /// `None` for terminal ports and unwired ports.
    fn neighbor(&self, router: RouterId, port: Port) -> Option<(RouterId, Port)>;

    /// The channel class of (`router`, `port`), for latency assignment.
    fn channel_class(&self, router: RouterId, port: Port) -> ChannelClass {
        if self.terminal_at(router, port).is_some() {
            ChannelClass::Terminal
        } else {
            ChannelClass::Local
        }
    }

    /// Minimal router-to-router hop count between two terminals' routers
    /// (0 when both attach to the same router).
    fn min_hops(&self, src: TerminalId, dst: TerminalId) -> u32;
}

/// Decodes `index` into mixed-radix coordinates with the given `widths`
/// (least significant dimension first).
pub(crate) fn to_coords(mut index: u32, widths: &[u32]) -> Vec<u32> {
    let mut coords = Vec::with_capacity(widths.len());
    for &w in widths {
        coords.push(index % w);
        index /= w;
    }
    coords
}

/// Inverse of [`to_coords`].
pub(crate) fn from_coords(coords: &[u32], widths: &[u32]) -> u32 {
    debug_assert_eq!(coords.len(), widths.len());
    let mut index = 0u32;
    for (i, (&c, &w)) in coords.iter().zip(widths).enumerate().rev() {
        debug_assert!(
            c < w,
            "coordinate {c} out of range for width {w} in dim {i}"
        );
        index = index * w + c;
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinate_round_trip() {
        let widths = [4u32, 3, 2];
        for i in 0..24 {
            let c = to_coords(i, &widths);
            assert_eq!(from_coords(&c, &widths), i);
            assert!(c.iter().zip(&widths).all(|(&x, &w)| x < w));
        }
    }

    #[test]
    fn coords_are_little_endian() {
        assert_eq!(to_coords(5, &[4, 3]), vec![1, 1]);
        assert_eq!(from_coords(&[1, 1], &[4, 3]), 5);
        assert_eq!(to_coords(0, &[4, 3]), vec![0, 0]);
    }

    #[test]
    fn error_display() {
        let e = TopologyError::new("widths must be non-empty");
        assert_eq!(e.to_string(), "invalid topology: widths must be non-empty");
    }
}
