//! Folded-Clos (fat tree) topology.
//!
//! An `L`-level folded Clos built from routers with `k` down ports and `k`
//! up ports (root routers use only their `k` down ports). Terminals number
//! `k^L`; each level has `k^(L-1)` routers.
//!
//! Identify each terminal by its base-`k` digits `D[0..L]` (least
//! significant first): `D[0]` is the terminal port at the leaf router and
//! `D[1..L]` are the leaf router's digits. A router at level `l` carries
//! digits `d[0..L-1]`; its up port `u` connects to the level-`l+1` router
//! with `d[l] := u`, arriving on that router's down port equal to the old
//! `d[l]`. Ascending therefore *frees* digit positions `0..l`, which is why
//! any common ancestor at the lowest common level works — the structural
//! fact adaptive up-routing exploits.

use supersim_netbase::{Port, RouterId, TerminalId};

use crate::types::{from_coords, to_coords, Topology, TopologyError};

/// An L-level folded-Clos network (paper case study A).
///
/// # Example
///
/// ```
/// use supersim_topology::{FoldedClos, Topology};
///
/// // Paper §VI-A: 3-level folded Clos of radix-32 routers (k = 16):
/// // 4096 terminals.
/// let c = FoldedClos::new(3, 16).unwrap();
/// assert_eq!(c.num_terminals(), 4096);
/// assert_eq!(c.num_routers(), 3 * 256);
/// ```
#[derive(Debug, Clone)]
pub struct FoldedClos {
    levels: u32,
    k: u32,
    routers_per_level: u32,
}

impl FoldedClos {
    /// Creates an `levels`-level folded Clos with `k` down and `k` up ports
    /// per router (router radix `2k` below the root).
    ///
    /// # Errors
    ///
    /// Returns an error if `levels` is zero, `k < 2`, or the terminal count
    /// `k^levels` overflows `u32`.
    pub fn new(levels: u32, k: u32) -> Result<Self, TopologyError> {
        if levels == 0 {
            return Err(TopologyError::new("folded clos needs at least one level"));
        }
        if k < 2 {
            return Err(TopologyError::new("folded clos needs k of at least 2"));
        }
        let mut terminals = 1u32;
        for _ in 0..levels {
            terminals = terminals
                .checked_mul(k)
                .ok_or_else(|| TopologyError::new("folded clos size overflows u32"))?;
        }
        let routers_per_level = terminals / k;
        Ok(FoldedClos {
            levels,
            k,
            routers_per_level,
        })
    }

    /// Number of levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Down-port (and up-port) count per router.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Routers per level.
    pub fn routers_per_level(&self) -> u32 {
        self.routers_per_level
    }

    /// `(level, digits)` of a router.
    pub fn router_position(&self, router: RouterId) -> (u32, Vec<u32>) {
        let level = router.0 / self.routers_per_level;
        let widths = vec![self.k; self.levels as usize - 1];
        (level, to_coords(router.0 % self.routers_per_level, &widths))
    }

    /// Router id from `(level, digits)`.
    pub fn router_id(&self, level: u32, digits: &[u32]) -> RouterId {
        let widths = vec![self.k; self.levels as usize - 1];
        RouterId(level * self.routers_per_level + from_coords(digits, &widths))
    }

    /// Whether `port` is an up port on a router at `level`.
    pub fn is_up_port(&self, level: u32, port: Port) -> bool {
        level + 1 < self.levels && port >= self.k
    }

    /// The first up port (up ports are `k..2k` below the root level).
    pub fn up_port_base(&self) -> Port {
        self.k
    }

    /// Base-`k` digits of a terminal id: `D[0]` is the leaf terminal port.
    pub fn terminal_digits(&self, terminal: TerminalId) -> Vec<u32> {
        to_coords(terminal.0, &vec![self.k; self.levels as usize])
    }

    /// The level of the lowest common ancestor a packet must climb to when
    /// traveling between two terminals (0 = same leaf router).
    pub fn ancestor_level(&self, src: TerminalId, dst: TerminalId) -> u32 {
        let sd = self.terminal_digits(src);
        let dd = self.terminal_digits(dst);
        // Highest differing digit position above 0 forces the climb.
        (1..self.levels as usize)
            .rev()
            .find(|&i| sd[i] != dd[i])
            .map_or(0, |i| i as u32)
    }

    /// Whether the subtree below `router` (at its level) contains `dst`:
    /// true when the router's digit positions `level..L-1` match the
    /// destination digits `level+1..L`.
    pub fn subtree_contains(&self, router: RouterId, dst: TerminalId) -> bool {
        let (level, digits) = self.router_position(router);
        let dd = self.terminal_digits(dst);
        (level as usize..self.levels as usize - 1).all(|i| digits[i] == dd[i + 1])
    }

    /// The down port toward `dst` from a router at `level` whose subtree
    /// contains it: digit `D[level]` of the destination.
    pub fn down_port_toward(&self, level: u32, dst: TerminalId) -> Port {
        self.terminal_digits(dst)[level as usize]
    }
}

impl Topology for FoldedClos {
    fn name(&self) -> &str {
        "folded_clos"
    }

    fn num_routers(&self) -> u32 {
        self.levels * self.routers_per_level
    }

    fn num_terminals(&self) -> u32 {
        self.routers_per_level * self.k
    }

    fn radix(&self, router: RouterId) -> u32 {
        let (level, _) = self.router_position(router);
        if level + 1 == self.levels {
            self.k // root level: down ports only
        } else {
            2 * self.k
        }
    }

    fn terminal_attachment(&self, terminal: TerminalId) -> (RouterId, Port) {
        // Leaf router digits are the terminal digits above position 0.
        (RouterId(terminal.0 / self.k), terminal.0 % self.k)
    }

    fn terminal_at(&self, router: RouterId, port: Port) -> Option<TerminalId> {
        let (level, _) = self.router_position(router);
        (level == 0 && port < self.k).then(|| TerminalId(router.0 * self.k + port))
    }

    fn neighbor(&self, router: RouterId, port: Port) -> Option<(RouterId, Port)> {
        let (level, digits) = self.router_position(router);
        if port >= self.radix(router) {
            return None;
        }
        if self.is_up_port(level, port) {
            // Up port u: replace digit[level] with u; arrive on the down
            // port equal to the replaced digit.
            let u = port - self.k;
            let mut up = digits.clone();
            let old = up[level as usize];
            up[level as usize] = u;
            Some((self.router_id(level + 1, &up), old))
        } else if level > 0 {
            // Down port p at level > 0: replace digit[level-1] with p;
            // arrive on the up port equal to the replaced digit.
            let mut down = digits.clone();
            let old = down[(level - 1) as usize];
            down[(level - 1) as usize] = port;
            Some((self.router_id(level - 1, &down), self.k + old))
        } else {
            None // level-0 down ports are terminal ports
        }
    }

    fn min_hops(&self, src: TerminalId, dst: TerminalId) -> u32 {
        if src == dst {
            return 0;
        }
        let a = self.ancestor_level(src, dst);
        // Climb `a` channels, descend `a` channels: 2a + 1 routers visited,
        // i.e. 2a router-to-router hops.
        2 * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations() {
        let c = FoldedClos::new(3, 16).unwrap();
        assert_eq!(c.num_terminals(), 4096);
        assert_eq!(c.radix(RouterId(0)), 32);
        // Root routers expose only their down ports.
        let root = c.router_id(2, &[0, 0]);
        assert_eq!(c.radix(root), 16);

        let small = FoldedClos::new(3, 8).unwrap();
        assert_eq!(small.num_terminals(), 512);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(FoldedClos::new(0, 4).is_err());
        assert!(FoldedClos::new(2, 1).is_err());
        assert!(FoldedClos::new(9, 64).is_err()); // overflow
    }

    #[test]
    fn position_round_trip() {
        let c = FoldedClos::new(3, 4).unwrap();
        for r in 0..c.num_routers() {
            let (level, digits) = c.router_position(RouterId(r));
            assert_eq!(c.router_id(level, &digits), RouterId(r));
        }
    }

    #[test]
    fn terminal_attachment_round_trip() {
        let c = FoldedClos::new(2, 4).unwrap();
        for t in 0..c.num_terminals() {
            let (r, p) = c.terminal_attachment(TerminalId(t));
            assert_eq!(c.terminal_at(r, p), Some(TerminalId(t)));
        }
    }

    #[test]
    fn neighbor_is_involution() {
        let c = FoldedClos::new(3, 3).unwrap();
        for r in 0..c.num_routers() {
            for p in 0..c.radix(RouterId(r)) {
                if let Some((nr, np)) = c.neighbor(RouterId(r), p) {
                    assert_eq!(
                        c.neighbor(nr, np),
                        Some((RouterId(r), p)),
                        "r{r} p{p} not symmetric"
                    );
                }
            }
        }
    }

    #[test]
    fn ancestor_levels() {
        let c = FoldedClos::new(3, 4).unwrap();
        // Same leaf router: terminals 0 and 1 differ only in D[0].
        assert_eq!(c.ancestor_level(TerminalId(0), TerminalId(1)), 0);
        // Differ in D[1]: one level up.
        assert_eq!(c.ancestor_level(TerminalId(0), TerminalId(4)), 1);
        // Differ in D[2]: to the root.
        assert_eq!(c.ancestor_level(TerminalId(0), TerminalId(16)), 2);
        assert_eq!(c.min_hops(TerminalId(0), TerminalId(16)), 4);
        assert_eq!(c.min_hops(TerminalId(0), TerminalId(0)), 0);
    }

    #[test]
    fn up_then_down_reaches_destination() {
        // Walk a packet manually: climb to the ancestor level picking
        // arbitrary up ports, then descend by down_port_toward.
        let c = FoldedClos::new(3, 4).unwrap();
        let src = TerminalId(5);
        let dst = TerminalId(57);
        let a = c.ancestor_level(src, dst);
        let (mut router, _) = c.terminal_attachment(src);
        for step in 0..a {
            // Arbitrary up port choice (here: index step mod k).
            let port = c.up_port_base() + (step % c.k());
            let (next, _) = c.neighbor(router, port).unwrap();
            router = next;
        }
        assert!(c.subtree_contains(router, dst));
        let (mut level, _) = c.router_position(router);
        while level > 0 {
            let port = c.down_port_toward(level, dst);
            let (next, _) = c.neighbor(router, port).unwrap();
            router = next;
            level -= 1;
            assert!(c.subtree_contains(router, dst));
        }
        let port = c.down_port_toward(0, dst);
        assert_eq!(c.terminal_at(router, port), Some(dst));
    }

    #[test]
    fn subtree_membership() {
        let c = FoldedClos::new(3, 4).unwrap();
        let (leaf, _) = c.terminal_attachment(TerminalId(7));
        assert!(c.subtree_contains(leaf, TerminalId(7)));
        assert!(c.subtree_contains(leaf, TerminalId(4))); // same leaf
        assert!(!c.subtree_contains(leaf, TerminalId(63)));
        // Every root contains every terminal.
        let root = c.router_id(2, &[1, 2]);
        assert!(c.subtree_contains(root, TerminalId(0)));
        assert!(c.subtree_contains(root, TerminalId(63)));
    }
}
