//! Dragonfly topology.
//!
//! The canonical technology-driven dragonfly: `g` groups of `a` routers;
//! routers within a group are fully connected by local channels; each
//! router drives `h` global channels; every pair of groups is connected by
//! exactly one global channel (requiring `g = a*h + 1` in the balanced
//! configuration this implementation provides).
//!
//! Port layout per router: ports `0..p` attach terminals, the next `a - 1`
//! ports are local channels (ordered by peer router index with self
//! skipped), and the last `h` ports are global channels.

use supersim_netbase::{Port, RouterId, TerminalId};

use crate::types::{ChannelClass, Topology, TopologyError};

/// A balanced dragonfly network.
///
/// # Example
///
/// ```
/// use supersim_topology::{Dragonfly, Topology};
///
/// // a=4 routers/group, h=2 globals/router, p=2 terminals/router:
/// // g = a*h + 1 = 9 groups, 36 routers, 72 terminals.
/// let d = Dragonfly::new(4, 2, 2).unwrap();
/// assert_eq!(d.num_groups(), 9);
/// assert_eq!(d.num_routers(), 36);
/// assert_eq!(d.num_terminals(), 72);
/// ```
#[derive(Debug, Clone)]
pub struct Dragonfly {
    /// Routers per group.
    a: u32,
    /// Global channels per router.
    h: u32,
    /// Terminals per router.
    p: u32,
    /// Number of groups (`a * h + 1`).
    g: u32,
}

impl Dragonfly {
    /// Creates a balanced dragonfly with `a` routers per group, `h` global
    /// channels per router, and `p` terminals per router. The group count
    /// is `a*h + 1`.
    ///
    /// # Errors
    ///
    /// Returns an error if any parameter is zero or the size overflows.
    pub fn new(a: u32, h: u32, p: u32) -> Result<Self, TopologyError> {
        if a == 0 || h == 0 || p == 0 {
            return Err(TopologyError::new("dragonfly parameters must be non-zero"));
        }
        let g = a
            .checked_mul(h)
            .and_then(|x| x.checked_add(1))
            .ok_or_else(|| TopologyError::new("dragonfly size overflows u32"))?;
        g.checked_mul(a)
            .and_then(|r| r.checked_mul(p))
            .ok_or_else(|| TopologyError::new("dragonfly size overflows u32"))?;
        Ok(Dragonfly { a, h, p, g })
    }

    /// Routers per group.
    pub fn routers_per_group(&self) -> u32 {
        self.a
    }

    /// Global channels per router.
    pub fn globals_per_router(&self) -> u32 {
        self.h
    }

    /// Terminals per router.
    pub fn concentration(&self) -> u32 {
        self.p
    }

    /// Number of groups.
    pub fn num_groups(&self) -> u32 {
        self.g
    }

    /// `(group, router-within-group)` of a router.
    pub fn router_position(&self, router: RouterId) -> (u32, u32) {
        (router.0 / self.a, router.0 % self.a)
    }

    /// Router id from `(group, router-within-group)`.
    pub fn router_id(&self, group: u32, local: u32) -> RouterId {
        RouterId(group * self.a + local)
    }

    /// First local port.
    pub fn local_port_base(&self) -> Port {
        self.p
    }

    /// First global port.
    pub fn global_port_base(&self) -> Port {
        self.p + self.a - 1
    }

    /// The local port on `router` that reaches `peer` (another router in
    /// the same group) directly.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is the router itself or out of range.
    pub fn local_port_toward(&self, router: RouterId, peer: u32) -> Port {
        let (_, own) = self.router_position(router);
        assert!(peer < self.a, "peer out of range");
        assert_ne!(peer, own, "no self-link within a group");
        self.local_port_base() + if peer < own { peer } else { peer - 1 }
    }

    /// The group reached by global link index `l` (0-based within the
    /// group, `l = local_router * h + global_port_offset`) of group `grp`.
    pub fn global_link_target(&self, grp: u32, l: u32) -> u32 {
        (grp + 1 + l) % self.g
    }

    /// The router (and its global port) within `grp` that owns the single
    /// global channel from `grp` to `dst_group`.
    ///
    /// # Panics
    ///
    /// Panics if `dst_group == grp`.
    pub fn global_exit(&self, grp: u32, dst_group: u32) -> (RouterId, Port) {
        assert_ne!(grp, dst_group, "no global link within a group");
        let l = (dst_group + self.g - grp - 1) % self.g;
        let local = l / self.h;
        let port = self.global_port_base() + (l % self.h);
        (self.router_id(grp, local), port)
    }
}

impl Topology for Dragonfly {
    fn name(&self) -> &str {
        "dragonfly"
    }

    fn num_routers(&self) -> u32 {
        self.g * self.a
    }

    fn num_terminals(&self) -> u32 {
        self.num_routers() * self.p
    }

    fn radix(&self, _router: RouterId) -> u32 {
        self.p + (self.a - 1) + self.h
    }

    fn terminal_attachment(&self, terminal: TerminalId) -> (RouterId, Port) {
        (RouterId(terminal.0 / self.p), terminal.0 % self.p)
    }

    fn terminal_at(&self, router: RouterId, port: Port) -> Option<TerminalId> {
        (port < self.p).then(|| TerminalId(router.0 * self.p + port))
    }

    fn neighbor(&self, router: RouterId, port: Port) -> Option<(RouterId, Port)> {
        let (grp, own) = self.router_position(router);
        if port < self.p || port >= self.radix(router) {
            return None;
        }
        if port < self.global_port_base() {
            // Local channel.
            let rel = port - self.local_port_base();
            let peer = if rel < own { rel } else { rel + 1 };
            let peer_router = self.router_id(grp, peer);
            Some((peer_router, self.local_port_toward(peer_router, own)))
        } else {
            // Global channel: link index within this group.
            let l = own * self.h + (port - self.global_port_base());
            let dst_group = self.global_link_target(grp, l);
            // The link back from dst_group to grp.
            let (peer_router, peer_port) = self.global_exit(dst_group, grp);
            Some((peer_router, peer_port))
        }
    }

    fn channel_class(&self, _router: RouterId, port: Port) -> ChannelClass {
        if port < self.p {
            ChannelClass::Terminal
        } else if port < self.global_port_base() {
            ChannelClass::Local
        } else {
            ChannelClass::Global
        }
    }

    fn min_hops(&self, src: TerminalId, dst: TerminalId) -> u32 {
        let (sr, _) = self.terminal_attachment(src);
        let (dr, _) = self.terminal_attachment(dst);
        if sr == dr {
            return 0;
        }
        let (sg, _) = self.router_position(sr);
        let (dg, _) = self.router_position(dr);
        if sg == dg {
            return 1; // one local hop
        }
        // Up to: local to the exit router, global, local to dst router.
        let (exit, _) = self.global_exit(sg, dg);
        let (entry, _) = self.global_exit(dg, sg);
        u32::from(exit != sr) + 1 + u32::from(entry != dr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> Dragonfly {
        Dragonfly::new(4, 2, 2).unwrap()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Dragonfly::new(0, 1, 1).is_err());
        assert!(Dragonfly::new(1, 0, 1).is_err());
        assert!(Dragonfly::new(1, 1, 0).is_err());
        assert!(Dragonfly::new(70000, 70000, 1).is_err());
    }

    #[test]
    fn balanced_sizes() {
        let d = df();
        assert_eq!(d.num_groups(), 9);
        assert_eq!(d.num_routers(), 36);
        assert_eq!(d.num_terminals(), 72);
        assert_eq!(d.radix(RouterId(0)), 2 + 3 + 2);
    }

    #[test]
    fn every_group_pair_has_exactly_one_global_link() {
        let d = df();
        let g = d.num_groups();
        let mut seen = vec![vec![0u32; g as usize]; g as usize];
        for grp in 0..g {
            for l in 0..(d.routers_per_group() * d.globals_per_router()) {
                let t = d.global_link_target(grp, l);
                assert_ne!(t, grp, "self-link");
                seen[grp as usize][t as usize] += 1;
            }
        }
        for (i, row) in seen.iter().enumerate() {
            for (j, &n) in row.iter().enumerate() {
                let expect = u32::from(i != j);
                assert_eq!(n, expect, "groups {i}->{j}");
            }
        }
    }

    #[test]
    fn neighbor_is_involution() {
        let d = df();
        for r in 0..d.num_routers() {
            for p in 0..d.radix(RouterId(r)) {
                if let Some((nr, np)) = d.neighbor(RouterId(r), p) {
                    assert_eq!(
                        d.neighbor(nr, np),
                        Some((RouterId(r), p)),
                        "r{r} p{p} not symmetric"
                    );
                }
            }
        }
    }

    #[test]
    fn local_links_fully_connect_groups() {
        let d = df();
        let r = d.router_id(3, 1);
        let peers: Vec<u32> = (0..3)
            .map(|i| {
                let (nr, _) = d.neighbor(r, d.local_port_base() + i).unwrap();
                d.router_position(nr).1
            })
            .collect();
        assert_eq!(peers, vec![0, 2, 3]);
        // All within the same group.
        for i in 0..3 {
            let (nr, _) = d.neighbor(r, d.local_port_base() + i).unwrap();
            assert_eq!(d.router_position(nr).0, 3);
        }
    }

    #[test]
    fn channel_classes() {
        let d = df();
        let r = RouterId(0);
        assert_eq!(d.channel_class(r, 0), ChannelClass::Terminal);
        assert_eq!(d.channel_class(r, d.local_port_base()), ChannelClass::Local);
        assert_eq!(
            d.channel_class(r, d.global_port_base()),
            ChannelClass::Global
        );
    }

    #[test]
    fn global_exit_round_trip() {
        let d = df();
        for a in 0..d.num_groups() {
            for b in 0..d.num_groups() {
                if a == b {
                    continue;
                }
                let (router, port) = d.global_exit(a, b);
                let (nr, _) = d.neighbor(router, port).unwrap();
                assert_eq!(d.router_position(nr).0, b);
            }
        }
    }

    #[test]
    fn min_hops_cases() {
        let d = df();
        // Same router.
        assert_eq!(d.min_hops(TerminalId(0), TerminalId(1)), 0);
        // Same group, different router.
        assert_eq!(d.min_hops(TerminalId(0), TerminalId(3)), 1);
        // Different groups: between 1 and 3 hops.
        for t in 8..d.num_terminals() {
            let h = d.min_hops(TerminalId(0), TerminalId(t));
            assert!((1..=3).contains(&h), "hops {h} out of range");
        }
    }
}
