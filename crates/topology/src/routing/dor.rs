//! Dimension-order routing (DOR) for tori, with dateline VC classes.
//!
//! Dimensions are corrected in index order; within a dimension the shorter
//! way around the ring is taken. Deadlock freedom on the rings follows the
//! classic dateline scheme: virtual channels are split into two classes,
//! packets start a dimension in class 0 and switch to class 1 on the hop
//! that crosses the wrap-around link. With `v` VCs configured, class 0 owns
//! VCs `0..v/2` and class 1 owns `v/2..v`; within a class the least
//! congested VC is chosen, so configurations with 4 or 8 VCs (paper case
//! study C) use all of them.

use std::sync::Arc;

use supersim_netbase::{Flit, Vc};

use crate::routing::{least_congested_vc, RouteChoice, RoutingAlgorithm, RoutingContext};
use crate::torus::Torus;
use crate::types::Topology;

/// Dimension-order routing on a [`Torus`].
///
/// One instance serves one router input port, as in the paper's
/// architecture where every input port has an independent routing engine.
#[derive(Debug, Clone)]
pub struct DimOrderRouting {
    topology: Arc<Torus>,
    vcs: u32,
}

impl DimOrderRouting {
    /// Creates a DOR engine for a router of the given torus with `vcs`
    /// virtual channels.
    ///
    /// # Panics
    ///
    /// Panics if `vcs` is not an even number of at least 2 — the dateline
    /// scheme needs two equal VC classes.
    pub fn new(topology: Arc<Torus>, vcs: u32) -> Self {
        assert!(
            vcs >= 2 && vcs.is_multiple_of(2),
            "dateline DOR needs an even number of VCs (>= 2)"
        );
        DimOrderRouting { topology, vcs }
    }

    /// VC candidates of a dateline class.
    fn class_vcs(&self, class: u32) -> std::ops::Range<Vc> {
        let half = self.vcs / 2;
        (class * half)..((class + 1) * half)
    }
}

impl RoutingAlgorithm for DimOrderRouting {
    fn name(&self) -> &str {
        "dimension_order"
    }

    fn vcs_required(&self) -> u32 {
        self.vcs
    }

    fn route(&mut self, ctx: &mut RoutingContext<'_>, flit: &mut Flit) -> RouteChoice {
        let t = &self.topology;
        let (dst_router, dst_port) = t.terminal_attachment(flit.pkt.dst);
        if ctx.router == dst_router {
            // Ejection: any VC of the terminal port.
            let vc = least_congested_vc(ctx.congestion, dst_port, 0..self.vcs);
            return RouteChoice { port: dst_port, vc };
        }
        let cur = t.router_coords(ctx.router);
        let dst = t.router_coords(dst_router);
        // First differing dimension, in index order.
        let (dim, (&c, &d)) = cur
            .iter()
            .zip(&dst)
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .expect("not at destination router, so some coordinate differs");
        let w = t.widths()[dim];
        let (_, plus) = Torus::ring_step(c, d, w).expect("coordinates differ");
        let port = t.port_toward(dim, plus);

        // Dateline class: carry class 1 within a dimension once the wrap
        // link has been crossed; reset on entering a new dimension.
        let crossing_now = (plus && c == w - 1) || (!plus && c == 0);
        let same_dim = t
            .port_direction(ctx.input_port)
            .is_some_and(|(in_dim, _)| in_dim == dim);
        let in_class = u32::from(ctx.input_vc >= self.vcs / 2);
        let class = if crossing_now || (same_dim && in_class == 1) {
            1
        } else {
            0
        };
        let vc = least_congested_vc(ctx.congestion, port, self.class_vcs(class));
        RouteChoice { port, vc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::ZeroCongestion;
    use supersim_des::Rng;
    use supersim_netbase::{AppId, MessageId, PacketBuilder, PacketId, RouterId, TerminalId};

    fn head(dst: u32) -> Flit {
        PacketBuilder {
            id: PacketId(1),
            message: MessageId(1),
            app: AppId(0),
            src: TerminalId(0),
            dst: TerminalId(dst),
            size: 1,
            message_size: 1,
            inject_tick: 0,
            message_tick: 0,
            sample: false,
        }
        .build()
        .remove(0)
    }

    fn ctx_at<'a>(
        router: RouterId,
        input_port: u32,
        input_vc: u32,
        rng: &'a mut Rng,
    ) -> RoutingContext<'a> {
        RoutingContext {
            router,
            input_port,
            input_vc,
            congestion: &ZeroCongestion,
            rng,
        }
    }

    /// Walk a packet from src to dst, returning visited routers and VCs.
    fn walk(t: &Arc<Torus>, src: u32, dst: u32) -> (Vec<u32>, Vec<u32>) {
        let mut rng = Rng::new(7);
        let mut algo = DimOrderRouting::new(Arc::clone(t), 2);
        let mut flit = head(dst);
        flit.pkt = Arc::new(supersim_netbase::PacketInfo {
            src: TerminalId(src),
            ..(*flit.pkt).clone()
        });
        let (mut router, mut in_port) = t.terminal_attachment(TerminalId(src));
        let mut in_vc = 0;
        let mut routers = vec![router.0];
        let mut vcs = vec![];
        for _ in 0..64 {
            let mut c = ctx_at(router, in_port, in_vc, &mut rng);
            let choice = algo.route(&mut c, &mut flit);
            if let Some(term) = t.terminal_at(router, choice.port) {
                assert_eq!(term, TerminalId(dst), "ejected at wrong terminal");
                return (routers, vcs);
            }
            vcs.push(choice.vc);
            let (next, arrive_port) = t.neighbor(router, choice.port).expect("wired port");
            router = next;
            in_port = arrive_port;
            in_vc = choice.vc;
            routers.push(router.0);
        }
        panic!("packet did not reach destination");
    }

    #[test]
    fn routes_minimally_on_a_ring() {
        let t = Arc::new(Torus::new(vec![8], 1).unwrap());
        let (routers, _) = walk(&t, 1, 4);
        assert_eq!(routers, vec![1, 2, 3, 4]);
        // The short way wraps for 1 -> 7.
        let (routers, _) = walk(&t, 1, 7);
        assert_eq!(routers, vec![1, 0, 7]);
    }

    #[test]
    fn corrects_dimensions_in_order() {
        let t = Arc::new(Torus::new(vec![4, 4], 1).unwrap());
        // src (1,0), dst (3,1): dim0 first (1->2->3 the short way), then dim1.
        let src = 1;
        let dst = 3 + 4;
        let (routers, _) = walk(&t, src, dst);
        assert_eq!(routers, vec![1, 2, 3, 3 + 4]);
    }

    #[test]
    fn dateline_switches_vc_class() {
        let t = Arc::new(Torus::new(vec![8], 1).unwrap());
        // 6 -> 1 the short way: 6,7,0,1 crossing the wrap link 7->0.
        let (routers, vcs) = walk(&t, 6, 1);
        assert_eq!(routers, vec![6, 7, 0, 1]);
        // Hops: 6->7 class 0, 7->0 crosses (class 1), 0->1 stays class 1.
        assert_eq!(vcs, vec![0, 1, 1]);
    }

    #[test]
    fn class_resets_on_new_dimension() {
        let t = Arc::new(Torus::new(vec![4, 4], 1).unwrap());
        // src (3,3) dst (1,1): dim0 wraps 3->0->1 (class 1 after cross),
        // then dim1 wraps 3->0->1 but restarts in class 0 until its cross.
        let src = 3 + 3 * 4;
        let dst = 1 + 4;
        let (_, vcs) = walk(&t, src, dst);
        assert_eq!(vcs, vec![1, 1, 1, 1]);
        // dim0: 3->0 crosses immediately (class 1), 0->1 class 1;
        // dim1: 3->0 crosses immediately (class 1), 0->1 class 1.
    }

    #[test]
    fn non_wrapping_path_stays_class_zero() {
        let t = Arc::new(Torus::new(vec![8], 1).unwrap());
        let (_, vcs) = walk(&t, 1, 4);
        assert_eq!(vcs, vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "even number of VCs")]
    fn odd_vcs_rejected() {
        let t = Arc::new(Torus::new(vec![4], 1).unwrap());
        let _ = DimOrderRouting::new(t, 3);
    }

    #[test]
    fn all_pairs_reach_destination_small_torus() {
        let t = Arc::new(Torus::new(vec![3, 3], 1).unwrap());
        for src in 0..9 {
            for dst in 0..9 {
                if src == dst {
                    continue;
                }
                let (routers, _) = walk(&t, src, dst);
                // Path length == min hops + 1 routers.
                let expect = t.min_hops(TerminalId(src), TerminalId(dst)) as usize + 1;
                assert_eq!(routers.len(), expect, "{src}->{dst}");
            }
        }
    }
}
