//! Minimal-adaptive routing for tori with Duato-style escape channels.
//!
//! At each router a head flit may move along *any* productive dimension
//! (one whose coordinate still differs from the destination's, taking the
//! shorter way around that ring), choosing the least congested option on
//! the *adaptive* virtual channels (VCs `2..v`). Deadlock freedom comes
//! from an *escape* sub-network — VCs 0 and 1 running strict
//! dimension-order routing with a **history-free dateline** class — that a
//! blocked packet can always fall back to, per Duato's theory. The router
//! re-routes a waiting head every switch cycle
//! ([`RoutingAlgorithm::reroutes`]), and this engine forces the escape
//! choice periodically so the fallback is always eventually taken.
//!
//! The history-free dateline: a packet moving *plus* in a ring of size `k`
//! uses class 0 while its coordinate is greater than the destination's
//! (the pre-wrap stretch) and class 1 afterwards; the class-0 set then
//! never contains the link `0 → 1` and the class-1 set never contains the
//! wrap link, so both are acyclic regardless of where a packet joined the
//! escape network. The minus direction mirrors this.

use std::sync::Arc;

use supersim_netbase::{Flit, PacketId, Vc};

use crate::routing::{least_congested_vc, RouteChoice, RoutingAlgorithm, RoutingContext};
use crate::torus::Torus;
use crate::types::Topology;

/// How many consecutive routing attempts pick adaptively before one is
/// forced onto the escape path (liveness of the Duato fallback).
const ESCAPE_EVERY: u32 = 4;

/// Minimal-adaptive torus routing with escape VCs 0/1.
#[derive(Debug, Clone)]
pub struct AdaptiveTorusRouting {
    topology: Arc<Torus>,
    vcs: u32,
    /// Routing attempts for the packet currently at this engine's head.
    attempts: u32,
    last_packet: Option<PacketId>,
}

impl AdaptiveTorusRouting {
    /// Creates an adaptive torus engine.
    ///
    /// # Panics
    ///
    /// Panics if `vcs < 3`: two escape classes plus at least one adaptive
    /// VC are required.
    pub fn new(topology: Arc<Torus>, vcs: u32) -> Self {
        assert!(
            vcs >= 3,
            "adaptive torus routing needs at least 3 VCs (2 escape + adaptive)"
        );
        AdaptiveTorusRouting {
            topology,
            vcs,
            attempts: 0,
            last_packet: None,
        }
    }

    /// The history-free dateline class for a hop in `dim` from coordinate
    /// `c` toward `d` in direction `plus`.
    fn escape_class(c: u32, d: u32, plus: bool) -> Vc {
        let pre_wrap = if plus { c > d } else { c < d };
        if pre_wrap {
            0
        } else {
            1
        }
    }
}

impl RoutingAlgorithm for AdaptiveTorusRouting {
    fn name(&self) -> &str {
        "adaptive_torus"
    }

    fn vcs_required(&self) -> u32 {
        self.vcs
    }

    fn reroutes(&self) -> bool {
        true
    }

    fn route(&mut self, ctx: &mut RoutingContext<'_>, flit: &mut Flit) -> RouteChoice {
        let t = &self.topology;
        let (dst_router, dst_port) = t.terminal_attachment(flit.pkt.dst);
        if ctx.router == dst_router {
            let vc = least_congested_vc(ctx.congestion, dst_port, 0..self.vcs);
            return RouteChoice { port: dst_port, vc };
        }

        // Count attempts for this packet; every ESCAPE_EVERY-th attempt is
        // forced onto the escape path so a blocked head always eventually
        // tries the deadlock-free sub-network.
        if self.last_packet == Some(flit.pkt.id) {
            self.attempts = self.attempts.wrapping_add(1);
        } else {
            self.last_packet = Some(flit.pkt.id);
            self.attempts = 0;
        }
        let force_escape = self.attempts % ESCAPE_EVERY == ESCAPE_EVERY - 1;

        let cur = t.router_coords(ctx.router);
        let dst = t.router_coords(dst_router);

        // Escape choice: strict dimension order on the escape classes.
        let (esc_dim, (&ec, &ed)) = cur
            .iter()
            .zip(&dst)
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .expect("not at destination router");
        let (_, esc_plus) =
            Torus::ring_step(ec, ed, t.widths()[esc_dim]).expect("coordinates differ");
        let escape = RouteChoice {
            port: t.port_toward(esc_dim, esc_plus),
            vc: Self::escape_class(ec, ed, esc_plus),
        };
        if force_escape {
            return escape;
        }

        // Adaptive candidates: every productive dimension, shorter way,
        // least congested adaptive VC (2..v).
        let mut best: Option<(f64, RouteChoice)> = None;
        for (dim, (&c, &d)) in cur.iter().zip(&dst).enumerate() {
            if c == d {
                continue;
            }
            let (_, plus) = Torus::ring_step(c, d, t.widths()[dim]).expect("differs");
            let port = t.port_toward(dim, plus);
            let vc = least_congested_vc(ctx.congestion, port, 2..self.vcs);
            let congestion = ctx.congestion.vc_congestion(port, vc);
            if best.as_ref().is_none_or(|(bc, _)| congestion < *bc) {
                best = Some((congestion, RouteChoice { port, vc }));
            }
        }
        let (adaptive_congestion, adaptive) = best.expect("at least one productive dim");

        // Prefer the adaptive path unless the escape path is strictly less
        // congested (e.g. the adaptive buffers are backed up).
        let escape_congestion = ctx.congestion.vc_congestion(escape.port, escape.vc);
        if escape_congestion < adaptive_congestion {
            escape
        } else {
            adaptive
        }
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        use supersim_des::wire::put_varint;
        put_varint(out, u64::from(self.attempts));
        match self.last_packet {
            None => out.push(0),
            Some(PacketId(id)) => {
                out.push(1);
                put_varint(out, id);
            }
        }
    }

    fn load_state(&mut self, buf: &mut &[u8]) -> Option<()> {
        use supersim_des::wire::{get_u8, get_varint};
        self.attempts = u32::try_from(get_varint(buf)?).ok()?;
        self.last_packet = match get_u8(buf)? {
            0 => None,
            1 => Some(PacketId(get_varint(buf)?)),
            _ => return None,
        };
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::ZeroCongestion;
    use supersim_des::Rng;
    use supersim_netbase::{AppId, MessageId, PacketBuilder, TerminalId};

    fn head(id: u64, src: u32, dst: u32) -> Flit {
        PacketBuilder {
            id: PacketId(id),
            message: MessageId(id),
            app: AppId(0),
            src: TerminalId(src),
            dst: TerminalId(dst),
            size: 1,
            message_size: 1,
            inject_tick: 0,
            message_tick: 0,
            sample: false,
        }
        .build()
        .remove(0)
    }

    fn walk(t: &Arc<Torus>, src: u32, dst: u32, seed: u64) -> Vec<u32> {
        let mut rng = Rng::new(seed);
        let mut algo = AdaptiveTorusRouting::new(Arc::clone(t), 4);
        let mut flit = head(seed, src, dst);
        let (mut router, mut in_port) = t.terminal_attachment(TerminalId(src));
        let mut path = vec![router.0];
        for _ in 0..64 {
            let mut ctx = RoutingContext {
                router,
                input_port: in_port,
                input_vc: flit.vc,
                congestion: &ZeroCongestion,
                rng: &mut rng,
            };
            let choice = algo.route(&mut ctx, &mut flit);
            if let Some(term) = t.terminal_at(router, choice.port) {
                assert_eq!(term, TerminalId(dst));
                return path;
            }
            let (next, arrive) = t.neighbor(router, choice.port).expect("wired");
            flit.vc = choice.vc;
            router = next;
            in_port = arrive;
            path.push(router.0);
        }
        panic!("packet lost");
    }

    #[test]
    fn all_pairs_minimal_length() {
        let t = Arc::new(Torus::new(vec![4, 3], 1).unwrap());
        for src in 0..12 {
            for dst in 0..12 {
                if src == dst {
                    continue;
                }
                let path = walk(&t, src, dst, 7);
                let hops = t.min_hops(TerminalId(src), TerminalId(dst)) as usize;
                assert_eq!(path.len(), hops + 1, "{src}->{dst}: {path:?}");
            }
        }
    }

    #[test]
    fn escape_class_is_history_free_and_acyclic() {
        // Plus direction: class 0 links never include 0 -> 1; class 1
        // links never include the wrap.
        let k = 8u32;
        for d in 0..k {
            for c in 0..k {
                if c == d {
                    continue;
                }
                let class = AdaptiveTorusRouting::escape_class(c, d, true);
                if c == 0 {
                    assert_eq!(class, 1, "link 0->1 must be class 1");
                }
                if c == k - 1 && class == 1 {
                    panic!("wrap link k-1 -> 0 must be class 0 when used (c={c}, d={d})");
                }
            }
        }
        // Minus direction mirrors: class 0 excludes k-1 -> k-2; class 1
        // excludes the minus wrap 0 -> k-1.
        for d in 0..k {
            for c in 0..k {
                if c == d {
                    continue;
                }
                let class = AdaptiveTorusRouting::escape_class(c, d, false);
                if c == k - 1 {
                    assert_eq!(class, 1, "link k-1 -> k-2 must be class 1");
                }
                if c == 0 {
                    assert_eq!(class, 0, "minus wrap must be class 0");
                }
            }
        }
    }

    #[test]
    fn forced_escape_fires_periodically() {
        let t = Arc::new(Torus::new(vec![4, 4], 1).unwrap());
        let mut algo = AdaptiveTorusRouting::new(Arc::clone(&t), 4);
        let mut rng = Rng::new(1);
        let mut flit = head(1, 0, 5); // router (0,0) -> (1,1): two productive dims
        let mut escape_hits = 0;
        for _ in 0..16 {
            let mut ctx = RoutingContext {
                router: supersim_netbase::RouterId(0),
                input_port: 0,
                input_vc: 0,
                congestion: &ZeroCongestion,
                rng: &mut rng,
            };
            let choice = algo.route(&mut ctx, &mut flit);
            if choice.vc < 2 {
                escape_hits += 1;
            }
        }
        assert_eq!(
            escape_hits, 4,
            "every 4th attempt must take the escape path"
        );
    }

    #[test]
    fn adaptive_vcs_used_when_uncongested() {
        let t = Arc::new(Torus::new(vec![4, 4], 1).unwrap());
        let mut algo = AdaptiveTorusRouting::new(Arc::clone(&t), 4);
        let mut rng = Rng::new(1);
        let mut flit = head(1, 0, 5);
        let mut ctx = RoutingContext {
            router: supersim_netbase::RouterId(0),
            input_port: 0,
            input_vc: 0,
            congestion: &ZeroCongestion,
            rng: &mut rng,
        };
        let choice = algo.route(&mut ctx, &mut flit);
        assert!(
            choice.vc >= 2,
            "first attempt should be adaptive, got vc {}",
            choice.vc
        );
    }

    #[test]
    #[should_panic(expected = "at least 3 VCs")]
    fn needs_three_vcs() {
        let t = Arc::new(Torus::new(vec![4], 1).unwrap());
        let _ = AdaptiveTorusRouting::new(t, 2);
    }
}
