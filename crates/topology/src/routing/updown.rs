//! Up/down routing for folded-Clos networks (paper §VI-A).
//!
//! While the destination is outside the current router's subtree the packet
//! climbs; any up port leads to a valid common ancestor, so the choice is
//! free. [`UpDownMode::Adaptive`] picks the least congested up port (the
//! algorithm of Kim et al.'s "Adaptive Routing in High-Radix Clos
//! Networks", used in case study A); [`UpDownMode::Deterministic`] picks a
//! hash of the destination, keeping each flow on one path. The descent is
//! fully determined by the destination address.

use std::sync::Arc;

use supersim_netbase::{Flit, Port};

use crate::clos::FoldedClos;
use crate::routing::{least_congested_vc, RouteChoice, RoutingAlgorithm, RoutingContext};

/// Up-port selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpDownMode {
    /// Least congested up port, random tie break.
    Adaptive,
    /// Destination-hashed up port: oblivious and flow-stable.
    Deterministic,
}

/// Up/down routing on a [`FoldedClos`].
#[derive(Debug, Clone)]
pub struct UpDownRouting {
    topology: Arc<FoldedClos>,
    mode: UpDownMode,
    vcs: u32,
}

impl UpDownRouting {
    /// Creates an up/down engine.
    ///
    /// # Panics
    ///
    /// Panics if `vcs` is zero.
    pub fn new(topology: Arc<FoldedClos>, mode: UpDownMode, vcs: u32) -> Self {
        assert!(vcs > 0, "at least one VC required");
        UpDownRouting {
            topology,
            mode,
            vcs,
        }
    }

    fn pick_up_port(&self, ctx: &mut RoutingContext<'_>, flit: &Flit) -> Port {
        let k = self.topology.k();
        let base = self.topology.up_port_base();
        match self.mode {
            UpDownMode::Deterministic => {
                // Knuth multiplicative hash of the destination spreads
                // flows across up ports while keeping each flow stable.
                base + flit.pkt.dst.0.wrapping_mul(2_654_435_761) % k
            }
            UpDownMode::Adaptive => {
                // Least congested up port; random tie break so that
                // simultaneous engines do not all pile onto port 0.
                let mut best = Vec::with_capacity(4);
                let mut best_c = f64::INFINITY;
                for u in 0..k {
                    let c = ctx.congestion.port_congestion(base + u);
                    if c < best_c {
                        best_c = c;
                        best.clear();
                        best.push(base + u);
                    } else if c == best_c {
                        best.push(base + u);
                    }
                }
                best[ctx.rng.gen_range(0..best.len())]
            }
        }
    }
}

impl RoutingAlgorithm for UpDownRouting {
    fn name(&self) -> &str {
        match self.mode {
            UpDownMode::Adaptive => "adaptive_updown",
            UpDownMode::Deterministic => "deterministic_updown",
        }
    }

    fn vcs_required(&self) -> u32 {
        self.vcs
    }

    fn route(&mut self, ctx: &mut RoutingContext<'_>, flit: &mut Flit) -> RouteChoice {
        let t = &self.topology;
        let port = if t.subtree_contains(ctx.router, flit.pkt.dst) {
            // Descend (or eject): the address digit names the down port.
            let (level, _) = t.router_position(ctx.router);
            t.down_port_toward(level, flit.pkt.dst)
        } else {
            self.pick_up_port(ctx, flit)
        };
        let vc = least_congested_vc(ctx.congestion, port, 0..self.vcs);
        RouteChoice { port, vc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{CongestionView, ZeroCongestion};
    use crate::types::Topology;
    use supersim_des::Rng;
    use supersim_netbase::{AppId, MessageId, PacketBuilder, PacketId, TerminalId, Vc};

    fn head(src: u32, dst: u32) -> Flit {
        PacketBuilder {
            id: PacketId(1),
            message: MessageId(1),
            app: AppId(0),
            src: TerminalId(src),
            dst: TerminalId(dst),
            size: 1,
            message_size: 1,
            inject_tick: 0,
            message_tick: 0,
            sample: false,
        }
        .build()
        .remove(0)
    }

    fn walk(t: &Arc<FoldedClos>, mode: UpDownMode, src: u32, dst: u32) -> Vec<u32> {
        let mut rng = Rng::new(11);
        let mut algo = UpDownRouting::new(Arc::clone(t), mode, 1);
        let mut flit = head(src, dst);
        let (mut router, mut in_port) = t.terminal_attachment(TerminalId(src));
        let mut path = vec![router.0];
        for _ in 0..32 {
            let mut ctx = RoutingContext {
                router,
                input_port: in_port,
                input_vc: 0,
                congestion: &ZeroCongestion,
                rng: &mut rng,
            };
            let choice = algo.route(&mut ctx, &mut flit);
            if let Some(term) = t.terminal_at(router, choice.port) {
                assert_eq!(term, TerminalId(dst));
                return path;
            }
            let (next, arrive) = t.neighbor(router, choice.port).expect("wired");
            router = next;
            in_port = arrive;
            path.push(router.0);
        }
        panic!("packet lost in the clos");
    }

    #[test]
    fn all_pairs_reach_destination_both_modes() {
        let t = Arc::new(FoldedClos::new(3, 3).unwrap());
        for mode in [UpDownMode::Adaptive, UpDownMode::Deterministic] {
            for src in (0..27).step_by(5) {
                for dst in 0..27 {
                    if src == dst {
                        continue;
                    }
                    let path = walk(&t, mode, src, dst);
                    let hops = t.min_hops(TerminalId(src), TerminalId(dst)) as usize;
                    assert_eq!(path.len(), hops + 1, "{mode:?} {src}->{dst}");
                }
            }
        }
    }

    #[test]
    fn same_leaf_goes_straight_down() {
        let t = Arc::new(FoldedClos::new(3, 4).unwrap());
        let path = walk(&t, UpDownMode::Adaptive, 0, 3);
        assert_eq!(path.len(), 1); // never leaves the leaf router
    }

    #[test]
    fn deterministic_mode_is_path_stable() {
        let t = Arc::new(FoldedClos::new(3, 4).unwrap());
        let a = walk(&t, UpDownMode::Deterministic, 0, 63);
        let b = walk(&t, UpDownMode::Deterministic, 0, 63);
        assert_eq!(a, b);
    }

    /// A view that makes up port 1 (absolute port k+1) look bad.
    struct BiasedView {
        bad_port: Port,
    }
    impl CongestionView for BiasedView {
        fn vc_congestion(&self, port: Port, _vc: Vc) -> f64 {
            self.port_congestion(port)
        }
        fn port_congestion(&self, port: Port) -> f64 {
            if port == self.bad_port {
                0.9
            } else {
                0.1
            }
        }
    }

    #[test]
    fn adaptive_mode_avoids_congested_up_port() {
        let t = Arc::new(FoldedClos::new(2, 4).unwrap());
        let mut algo = UpDownRouting::new(Arc::clone(&t), UpDownMode::Adaptive, 1);
        let mut rng = Rng::new(3);
        let bad = t.up_port_base() + 1;
        let view = BiasedView { bad_port: bad };
        // Destination outside the leaf's subtree forces an up hop.
        let (router, _) = t.terminal_attachment(TerminalId(0));
        for _ in 0..32 {
            let mut ctx = RoutingContext {
                router,
                input_port: 0,
                input_vc: 0,
                congestion: &view,
                rng: &mut rng,
            };
            let mut flit = head(0, 15);
            let choice = algo.route(&mut ctx, &mut flit);
            assert_ne!(choice.port, bad, "picked the congested up port");
            assert!(choice.port >= t.up_port_base());
        }
    }

    #[test]
    fn adaptive_tie_break_spreads_choices() {
        let t = Arc::new(FoldedClos::new(2, 4).unwrap());
        let mut algo = UpDownRouting::new(Arc::clone(&t), UpDownMode::Adaptive, 1);
        let mut rng = Rng::new(3);
        let (router, _) = t.terminal_attachment(TerminalId(0));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let mut ctx = RoutingContext {
                router,
                input_port: 0,
                input_vc: 0,
                congestion: &ZeroCongestion,
                rng: &mut rng,
            };
            let mut flit = head(0, 15);
            seen.insert(algo.route(&mut ctx, &mut flit).port);
        }
        assert!(seen.len() > 1, "tie break never varied the port");
    }
}
