//! The routing algorithm abstraction.
//!
//! Routing algorithms are constructed per router input port (each input
//! port's routing engine operates independently — a property case study A
//! shows to matter) and invoked once per head flit. Adaptive algorithms
//! consult the router's [`CongestionView`], which the router
//! microarchitecture implements; the paper's latent-congestion and
//! credit-accounting case studies are experiments on *what that view
//! reports*.

pub mod dor;
pub mod dragonfly_routing;
pub mod hyperx_routing;
pub mod torus_adaptive;
pub mod updown;

use supersim_des::Rng;

use supersim_netbase::{Flit, Port, RouterId, Vc};

/// A router's view of its own output congestion, as seen by routing
/// engines.
///
/// Values are normalized occupancies: 0.0 = completely free, 1.0 = full.
/// What exactly is counted (output queues, downstream credits, or both; per
/// VC or per port) and how stale the view is are properties of the router's
/// congestion sensor configuration.
pub trait CongestionView {
    /// Congestion of output (`port`, `vc`).
    fn vc_congestion(&self, port: Port, vc: Vc) -> f64;

    /// Congestion of the whole output `port`.
    fn port_congestion(&self, port: Port) -> f64;
}

/// A congestion view reporting zero everywhere; useful for testing routing
/// algorithms' structural decisions in isolation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroCongestion;

impl CongestionView for ZeroCongestion {
    fn vc_congestion(&self, _port: Port, _vc: Vc) -> f64 {
        0.0
    }
    fn port_congestion(&self, _port: Port) -> f64 {
        0.0
    }
}

/// Everything a routing engine may consult while routing one head flit.
pub struct RoutingContext<'a> {
    /// The router this engine lives in.
    pub router: RouterId,
    /// The input port the head flit arrived on.
    pub input_port: Port,
    /// The input VC the head flit arrived on.
    pub input_vc: Vc,
    /// The router's congestion view.
    pub congestion: &'a dyn CongestionView,
    /// Deterministic randomness for oblivious decisions.
    pub rng: &'a mut Rng,
}

/// The outcome of routing one head flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteChoice {
    /// Output port to take.
    pub port: Port,
    /// Virtual channel to request on that output.
    pub vc: Vc,
}

/// A routing algorithm instance bound to one router input port.
///
/// Implementations may mutate the head flit to carry routing state with the
/// packet (e.g. the Valiant intermediate router in
/// [`Flit::inter`]).
pub trait RoutingAlgorithm: Send {
    /// Short name for diagnostics.
    fn name(&self) -> &str;

    /// Number of VCs this algorithm requires of the router.
    fn vcs_required(&self) -> u32;

    /// Whether the router should *re-route* a head flit on every switch
    /// cycle until its packet starts transmitting. Fully adaptive
    /// algorithms with escape channels (Duato-style) return `true` so a
    /// blocked head can fall back to the escape path; deterministic and
    /// source-decided algorithms keep the default `false`.
    fn reroutes(&self) -> bool {
        false
    }

    /// Routes a head flit, returning the output port and VC.
    fn route(&mut self, ctx: &mut RoutingContext<'_>, flit: &mut Flit) -> RouteChoice;

    /// Serializes per-engine routing state for a checkpoint. Stateless
    /// algorithms (the default) write nothing; algorithms that carry
    /// state across `route` calls must override this and
    /// [`RoutingAlgorithm::load_state`] for deterministic resume.
    fn save_state(&self, _out: &mut Vec<u8>) {}

    /// Overlays saved routing state. Total: `None` on malformed input.
    /// The stateless default accepts the empty snapshot.
    fn load_state(&mut self, _buf: &mut &[u8]) -> Option<()> {
        Some(())
    }
}

/// Selects the least congested VC of `port` among `vcs`, breaking ties by
/// lower VC number. Shared by several algorithms.
pub(crate) fn least_congested_vc(
    view: &dyn CongestionView,
    port: Port,
    vcs: impl Iterator<Item = Vc>,
) -> Vc {
    let mut best: Option<(f64, Vc)> = None;
    for vc in vcs {
        let c = view.vc_congestion(port, vc);
        match best {
            Some((bc, _)) if bc <= c => {}
            _ => best = Some((c, vc)),
        }
    }
    best.expect("vc candidate set must be non-empty").1
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeView;
    impl CongestionView for FakeView {
        fn vc_congestion(&self, _port: Port, vc: Vc) -> f64 {
            match vc {
                0 => 0.9,
                1 => 0.2,
                2 => 0.2,
                _ => 1.0,
            }
        }
        fn port_congestion(&self, _port: Port) -> f64 {
            0.5
        }
    }

    #[test]
    fn least_congested_vc_picks_minimum_with_low_tie_break() {
        let vc = least_congested_vc(&FakeView, 0, 0..4);
        assert_eq!(vc, 1);
    }

    #[test]
    fn zero_congestion_reports_zero() {
        assert_eq!(ZeroCongestion.vc_congestion(3, 1), 0.0);
        assert_eq!(ZeroCongestion.port_congestion(9), 0.0);
    }
}
