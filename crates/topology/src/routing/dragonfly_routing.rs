//! Minimal and UGAL routing for dragonfly networks.
//!
//! The minimal path is local → global → local (at most one of each). UGAL
//! chooses per packet, at the source router, between the minimal path and a
//! Valiant path through a random intermediate *group*, comparing first-hop
//! congestion weighted by estimated path length.
//!
//! Deadlock freedom uses the standard hop-ladder: the VC number equals the
//! number of router-to-router hops already taken (capped at the top VC), so
//! channel dependencies only ever climb the ladder. Minimal routing needs
//! 3 VCs, UGAL needs 6.

use std::sync::Arc;

use supersim_netbase::{Flit, Port, RouterId, Vc};

use crate::dragonfly::Dragonfly;
use crate::routing::{RouteChoice, RoutingAlgorithm, RoutingContext};
use crate::types::Topology;

/// Path selection policy for dragonfly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DragonflyMode {
    /// Minimal local/global/local routing.
    Minimal,
    /// UGAL with the given non-minimal bias threshold.
    Ugal {
        /// Additive bias favoring the minimal path.
        threshold: f64,
    },
}

/// Minimal / UGAL routing on a [`Dragonfly`].
#[derive(Debug, Clone)]
pub struct DragonflyRouting {
    topology: Arc<Dragonfly>,
    mode: DragonflyMode,
    vcs: u32,
}

impl DragonflyRouting {
    /// Creates a dragonfly routing engine.
    ///
    /// # Panics
    ///
    /// Panics if `vcs` is below the ladder depth the mode requires
    /// (3 for minimal, 6 for UGAL).
    pub fn new(topology: Arc<Dragonfly>, mode: DragonflyMode, vcs: u32) -> Self {
        let need = match mode {
            DragonflyMode::Minimal => 3,
            DragonflyMode::Ugal { .. } => 6,
        };
        assert!(vcs >= need, "dragonfly {mode:?} needs at least {need} VCs");
        DragonflyRouting {
            topology,
            mode,
            vcs,
        }
    }

    /// Next output port of the minimal path from `router` toward
    /// `target_router`; `None` when already there.
    fn min_port(&self, router: RouterId, target_router: RouterId) -> Option<Port> {
        let t = &self.topology;
        if router == target_router {
            return None;
        }
        let (my_group, my_local) = t.router_position(router);
        let (dst_group, dst_local) = t.router_position(target_router);
        if my_group == dst_group {
            return Some(t.local_port_toward(router, dst_local));
        }
        let (exit_router, exit_port) = t.global_exit(my_group, dst_group);
        if exit_router == router {
            Some(exit_port)
        } else {
            let (_, exit_local) = t.router_position(exit_router);
            debug_assert_ne!(exit_local, my_local);
            Some(t.local_port_toward(router, exit_local))
        }
    }

    /// Remaining minimal hop estimate from `router` to `target_router`.
    fn hops_between(&self, router: RouterId, target_router: RouterId) -> u32 {
        let t = &self.topology;
        if router == target_router {
            return 0;
        }
        let (mg, _) = t.router_position(router);
        let (dg, _) = t.router_position(target_router);
        if mg == dg {
            return 1;
        }
        let (exit, _) = t.global_exit(mg, dg);
        let (entry, _) = t.global_exit(dg, mg);
        u32::from(exit != router) + 1 + u32::from(entry != target_router)
    }

    /// The VC for the next hop under the hop-ladder scheme.
    fn ladder_vc(&self, flit: &Flit) -> Vc {
        (flit.hops as u32).min(self.vcs - 1)
    }
}

impl RoutingAlgorithm for DragonflyRouting {
    fn name(&self) -> &str {
        match self.mode {
            DragonflyMode::Minimal => "dragonfly_minimal",
            DragonflyMode::Ugal { .. } => "dragonfly_ugal",
        }
    }

    fn vcs_required(&self) -> u32 {
        self.vcs
    }

    fn route(&mut self, ctx: &mut RoutingContext<'_>, flit: &mut Flit) -> RouteChoice {
        let t = Arc::clone(&self.topology);
        let (dst_router, dst_port) = t.terminal_attachment(flit.pkt.dst);

        if flit.inter == Some(ctx.router) {
            flit.inter = None;
        }

        if ctx.router == dst_router && flit.inter.is_none() {
            return RouteChoice {
                port: dst_port,
                vc: self.ladder_vc(flit),
            };
        }

        let at_source = t.terminal_at(ctx.router, ctx.input_port).is_some();
        if at_source {
            if let DragonflyMode::Ugal { threshold } = self.mode {
                let (my_group, _) = t.router_position(ctx.router);
                let (dst_group, _) = t.router_position(dst_router);
                if my_group != dst_group {
                    // Random intermediate group and router within it.
                    let g = t.num_groups();
                    let mut ig = ctx.rng.gen_range(0..g);
                    while ig == my_group || ig == dst_group {
                        ig = ctx.rng.gen_range(0..g);
                    }
                    let inter = t.router_id(ig, ctx.rng.gen_range(0..t.routers_per_group()));
                    let h_min = self.hops_between(ctx.router, dst_router);
                    let h_non =
                        self.hops_between(ctx.router, inter) + self.hops_between(inter, dst_router);
                    let p_min = self.min_port(ctx.router, dst_router).expect("differs");
                    let p_non = self.min_port(ctx.router, inter).expect("differs");
                    let q_min = ctx.congestion.port_congestion(p_min);
                    let q_non = ctx.congestion.port_congestion(p_non);
                    if q_min * h_min as f64 > q_non * h_non as f64 + threshold {
                        flit.inter = Some(inter);
                        return RouteChoice {
                            port: p_non,
                            vc: self.ladder_vc(flit),
                        };
                    }
                }
            }
        }

        let target = flit.inter.unwrap_or(dst_router);
        let port = self.min_port(ctx.router, target).expect("target differs");
        RouteChoice {
            port,
            vc: self.ladder_vc(flit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{CongestionView, ZeroCongestion};
    use supersim_des::Rng;
    use supersim_netbase::{AppId, MessageId, PacketBuilder, PacketId, TerminalId};

    fn head(src: u32, dst: u32) -> Flit {
        PacketBuilder {
            id: PacketId(1),
            message: MessageId(1),
            app: AppId(0),
            src: TerminalId(src),
            dst: TerminalId(dst),
            size: 1,
            message_size: 1,
            inject_tick: 0,
            message_tick: 0,
            sample: false,
        }
        .build()
        .remove(0)
    }

    fn walk(
        t: &Arc<Dragonfly>,
        algo: &mut DragonflyRouting,
        view: &dyn CongestionView,
        src: u32,
        dst: u32,
        seed: u64,
    ) -> Vec<u32> {
        let mut rng = Rng::new(seed);
        let mut flit = head(src, dst);
        let (mut router, mut in_port) = t.terminal_attachment(TerminalId(src));
        let mut path = vec![router.0];
        for _ in 0..16 {
            let mut ctx = RoutingContext {
                router,
                input_port: in_port,
                input_vc: flit.vc,
                congestion: view,
                rng: &mut rng,
            };
            let choice = algo.route(&mut ctx, &mut flit);
            if let Some(term) = t.terminal_at(router, choice.port) {
                assert_eq!(term, TerminalId(dst));
                return path;
            }
            let (next, arrive) = t.neighbor(router, choice.port).expect("wired");
            flit.vc = choice.vc;
            flit.hops += 1;
            router = next;
            in_port = arrive;
            path.push(router.0);
        }
        panic!("packet lost in the dragonfly");
    }

    #[test]
    fn minimal_all_pairs_within_three_hops() {
        let t = Arc::new(Dragonfly::new(3, 2, 2).unwrap()); // 7 groups, 21 routers
        let mut algo = DragonflyRouting::new(Arc::clone(&t), DragonflyMode::Minimal, 3);
        for src in 0..t.num_terminals() {
            for dst in 0..t.num_terminals() {
                if src == dst {
                    continue;
                }
                let path = walk(&t, &mut algo, &ZeroCongestion, src, dst, 3);
                let hops = t.min_hops(TerminalId(src), TerminalId(dst)) as usize;
                assert_eq!(path.len(), hops + 1, "{src}->{dst}: {path:?}");
            }
        }
    }

    #[test]
    fn ladder_vcs_increase_along_path() {
        let t = Arc::new(Dragonfly::new(3, 2, 2).unwrap());
        let mut algo = DragonflyRouting::new(Arc::clone(&t), DragonflyMode::Minimal, 3);
        let mut rng = Rng::new(1);
        let mut flit = head(0, t.num_terminals() - 1);
        let (mut router, mut in_port) = t.terminal_attachment(TerminalId(0));
        let mut vcs = vec![];
        for _ in 0..8 {
            let mut ctx = RoutingContext {
                router,
                input_port: in_port,
                input_vc: flit.vc,
                congestion: &ZeroCongestion,
                rng: &mut rng,
            };
            let choice = algo.route(&mut ctx, &mut flit);
            if t.terminal_at(router, choice.port).is_some() {
                break;
            }
            vcs.push(choice.vc);
            let (next, arrive) = t.neighbor(router, choice.port).unwrap();
            flit.hops += 1;
            router = next;
            in_port = arrive;
        }
        assert!(
            vcs.windows(2).all(|w| w[0] < w[1]),
            "vcs not increasing: {vcs:?}"
        );
    }

    #[test]
    fn ugal_uncongested_stays_minimal() {
        let t = Arc::new(Dragonfly::new(3, 2, 2).unwrap());
        let mut algo =
            DragonflyRouting::new(Arc::clone(&t), DragonflyMode::Ugal { threshold: 0.0 }, 6);
        let dst = t.num_terminals() - 1;
        let path = walk(&t, &mut algo, &ZeroCongestion, 0, dst, 17);
        let hops = t.min_hops(TerminalId(0), TerminalId(dst)) as usize;
        assert_eq!(path.len(), hops + 1);
    }

    #[test]
    fn ugal_congested_takes_valiant_and_delivers() {
        let t = Arc::new(Dragonfly::new(3, 2, 2).unwrap());
        let mut algo =
            DragonflyRouting::new(Arc::clone(&t), DragonflyMode::Ugal { threshold: 0.0 }, 6);
        // Make the source router's minimal first hop look congested.
        struct Hot(Port);
        impl CongestionView for Hot {
            fn vc_congestion(&self, port: Port, _vc: Vc) -> f64 {
                self.port_congestion(port)
            }
            fn port_congestion(&self, port: Port) -> f64 {
                if port == self.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
        let dst = t.num_terminals() - 1;
        let (src_router, _) = t.terminal_attachment(TerminalId(0));
        let (dst_router, _) = t.terminal_attachment(TerminalId(dst));
        let inner = DragonflyRouting::new(Arc::clone(&t), DragonflyMode::Minimal, 3);
        let hot = inner.min_port(src_router, dst_router).unwrap();
        let min_hops = t.min_hops(TerminalId(0), TerminalId(dst)) as usize;
        let mut took_longer = false;
        for seed in 0..10 {
            let path = walk(&t, &mut algo, &Hot(hot), 0, dst, seed);
            if path.len() > min_hops + 1 {
                took_longer = true;
            }
        }
        assert!(took_longer, "ugal never took a non-minimal path");
    }

    #[test]
    #[should_panic(expected = "needs at least")]
    fn insufficient_vcs_rejected() {
        let t = Arc::new(Dragonfly::new(3, 2, 2).unwrap());
        let _ = DragonflyRouting::new(t, DragonflyMode::Ugal { threshold: 0.0 }, 3);
    }
}
