//! Minimal and UGAL routing for HyperX / flattened butterfly (paper §VI-B).
//!
//! Minimal routing corrects dimensions in index order, one hop each —
//! deadlock-free on one VC because the channel dependency order follows the
//! dimension order.
//!
//! UGAL (Universal Globally-Adaptive Load-balanced routing, Singh 2005)
//! decides per packet at the *source router* between the minimal path and a
//! Valiant path through a random intermediate router, comparing congestion
//! weighted by path length: minimal wins when
//! `q_min * h_min <= q_nonmin * h_nonmin + threshold`. Non-minimal packets
//! travel to the intermediate on VC 0 and minimally afterwards on VC 1,
//! which breaks the cross-phase cycle (2 VCs required — the configuration
//! of case study B).

use std::sync::Arc;

use supersim_netbase::{Flit, Port, RouterId, Vc};

use crate::hyperx::HyperX;
use crate::routing::{least_congested_vc, RouteChoice, RoutingAlgorithm, RoutingContext};
use crate::types::Topology;

/// Path selection policy for HyperX.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HyperXMode {
    /// Dimension-order minimal routing.
    Minimal,
    /// Oblivious Valiant routing: every packet detours through a uniformly
    /// random intermediate router, perfectly load-balancing adversarial
    /// patterns at the cost of doubling the path length.
    Valiant,
    /// UGAL with the given non-minimal bias threshold (in normalized
    /// congestion units; 0 compares costs directly).
    Ugal {
        /// Additive bias favoring the minimal path.
        threshold: f64,
    },
}

/// The VC carrying packets on their Valiant first phase.
const VC_NONMIN: Vc = 0;
/// The VC carrying minimal-phase packets.
const VC_MIN: Vc = 1;

/// Minimal / UGAL routing on a [`HyperX`].
#[derive(Debug, Clone)]
pub struct HyperXRouting {
    topology: Arc<HyperX>,
    mode: HyperXMode,
    vcs: u32,
}

impl HyperXRouting {
    /// Creates a HyperX routing engine.
    ///
    /// # Panics
    ///
    /// Panics if `vcs` is zero, or if the mode is UGAL and `vcs < 2`.
    pub fn new(topology: Arc<HyperX>, mode: HyperXMode, vcs: u32) -> Self {
        assert!(vcs > 0, "at least one VC required");
        if matches!(mode, HyperXMode::Ugal { .. } | HyperXMode::Valiant) {
            assert!(vcs >= 2, "two-phase routing needs at least 2 VCs");
        }
        HyperXRouting {
            topology,
            mode,
            vcs,
        }
    }

    /// First-hop port of the dimension-order minimal path from `from`
    /// toward router `to`; `None` when already there.
    fn min_port(&self, from: RouterId, to: RouterId) -> Option<Port> {
        let t = &self.topology;
        let fc = t.router_coords(from);
        let tc = t.router_coords(to);
        fc.iter()
            .zip(&tc)
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(dim, (_, &b))| t.port_toward(from, dim, b))
    }

    /// Dimension-order hop count between routers.
    fn hops_between(&self, a: RouterId, b: RouterId) -> u32 {
        let t = &self.topology;
        t.router_coords(a)
            .iter()
            .zip(&t.router_coords(b))
            .filter(|(x, y)| x != y)
            .count() as u32
    }

    /// VC candidates of a phase class when more than 2 VCs are configured:
    /// even VCs extend class 0, odd VCs extend class 1.
    fn class_vcs(&self, class: Vc) -> impl Iterator<Item = Vc> {
        let vcs = self.vcs;
        (0..vcs).filter(move |v| v % 2 == class % 2)
    }
}

impl RoutingAlgorithm for HyperXRouting {
    fn name(&self) -> &str {
        match self.mode {
            HyperXMode::Minimal => "hyperx_minimal",
            HyperXMode::Valiant => "hyperx_valiant",
            HyperXMode::Ugal { .. } => "ugal",
        }
    }

    fn vcs_required(&self) -> u32 {
        self.vcs
    }

    fn route(&mut self, ctx: &mut RoutingContext<'_>, flit: &mut Flit) -> RouteChoice {
        let t = Arc::clone(&self.topology);
        let (dst_router, dst_port) = t.terminal_attachment(flit.pkt.dst);

        // Phase bookkeeping: reaching the intermediate clears it.
        if flit.inter == Some(ctx.router) {
            flit.inter = None;
        }

        if ctx.router == dst_router && flit.inter.is_none() {
            let vc = least_congested_vc(ctx.congestion, dst_port, 0..self.vcs);
            return RouteChoice { port: dst_port, vc };
        }

        let at_source = t.terminal_at(ctx.router, ctx.input_port).is_some();
        if at_source && !matches!(self.mode, HyperXMode::Minimal) {
            // Candidate intermediate: uniform among other routers.
            let n = t.num_routers();
            let mut inter = RouterId(ctx.rng.gen_range(0..n));
            while inter == ctx.router || inter == dst_router {
                inter = RouterId(ctx.rng.gen_range(0..n));
            }
            let go_nonminimal = match self.mode {
                HyperXMode::Valiant => true,
                HyperXMode::Ugal { threshold } => {
                    let h_min = self.hops_between(ctx.router, dst_router);
                    let h_non =
                        self.hops_between(ctx.router, inter) + self.hops_between(inter, dst_router);
                    let p_min = self.min_port(ctx.router, dst_router).expect("not at dst");
                    let p_non = self.min_port(ctx.router, inter).expect("inter differs");
                    let q_min = ctx.congestion.vc_congestion(p_min, VC_MIN);
                    let q_non = ctx.congestion.vc_congestion(p_non, VC_NONMIN);
                    q_min * h_min as f64 > q_non * h_non as f64 + threshold
                }
                HyperXMode::Minimal => unreachable!("filtered above"),
            };
            if go_nonminimal {
                flit.inter = Some(inter);
                let p_non = self.min_port(ctx.router, inter).expect("inter differs");
                let vc = least_congested_vc(ctx.congestion, p_non, self.class_vcs(VC_NONMIN));
                return RouteChoice { port: p_non, vc };
            }
        }

        // Minimal (or post-decision) phase: head toward the current target.
        let (target, class) = match flit.inter {
            Some(inter) => (inter, VC_NONMIN),
            None => (dst_router, VC_MIN),
        };
        let port = self
            .min_port(ctx.router, target)
            .expect("target differs from current router");
        let vc = if matches!(self.mode, HyperXMode::Minimal) {
            // Pure minimal routing is deadlock-free on any VC; use all.
            least_congested_vc(ctx.congestion, port, 0..self.vcs)
        } else {
            least_congested_vc(ctx.congestion, port, self.class_vcs(class))
        };
        RouteChoice { port, vc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{CongestionView, ZeroCongestion};
    use supersim_des::Rng;
    use supersim_netbase::{AppId, MessageId, PacketBuilder, PacketId, TerminalId};

    fn head(src: u32, dst: u32) -> Flit {
        PacketBuilder {
            id: PacketId(1),
            message: MessageId(1),
            app: AppId(0),
            src: TerminalId(src),
            dst: TerminalId(dst),
            size: 1,
            message_size: 1,
            inject_tick: 0,
            message_tick: 0,
            sample: false,
        }
        .build()
        .remove(0)
    }

    fn walk(
        t: &Arc<HyperX>,
        algo: &mut HyperXRouting,
        view: &dyn CongestionView,
        src: u32,
        dst: u32,
        seed: u64,
    ) -> Vec<u32> {
        let mut rng = Rng::new(seed);
        let mut flit = head(src, dst);
        let (mut router, mut in_port) = t.terminal_attachment(TerminalId(src));
        let mut in_vc = 0;
        let mut path = vec![router.0];
        for _ in 0..16 {
            let mut ctx = RoutingContext {
                router,
                input_port: in_port,
                input_vc: in_vc,
                congestion: view,
                rng: &mut rng,
            };
            let choice = algo.route(&mut ctx, &mut flit);
            if let Some(term) = t.terminal_at(router, choice.port) {
                assert_eq!(term, TerminalId(dst));
                return path;
            }
            let (next, arrive) = t.neighbor(router, choice.port).expect("wired");
            in_vc = choice.vc;
            router = next;
            in_port = arrive;
            path.push(router.0);
        }
        panic!("packet lost in the hyperx");
    }

    #[test]
    fn minimal_routes_one_hop_per_dimension() {
        let t = Arc::new(HyperX::new(vec![4, 4], 1).unwrap());
        let mut algo = HyperXRouting::new(Arc::clone(&t), HyperXMode::Minimal, 1);
        // (1,0) -> (3,2): exactly two hops.
        let path = walk(&t, &mut algo, &ZeroCongestion, 1, 3 + 2 * 4, 5);
        assert_eq!(path.len(), 3);
        assert_eq!(path[1], 3); // dim 0 corrected first
    }

    #[test]
    fn minimal_all_pairs() {
        let t = Arc::new(HyperX::new(vec![3, 3], 2).unwrap());
        let mut algo = HyperXRouting::new(Arc::clone(&t), HyperXMode::Minimal, 1);
        for src in 0..t.num_terminals() {
            for dst in 0..t.num_terminals() {
                if src == dst {
                    continue;
                }
                let path = walk(&t, &mut algo, &ZeroCongestion, src, dst, 5);
                let hops = t.min_hops(TerminalId(src), TerminalId(dst)) as usize;
                assert_eq!(path.len(), hops + 1, "{src}->{dst}");
            }
        }
    }

    #[test]
    fn ugal_uncongested_goes_minimal() {
        let t = Arc::new(HyperX::new(vec![8], 4).unwrap());
        let mut algo = HyperXRouting::new(Arc::clone(&t), HyperXMode::Ugal { threshold: 0.0 }, 2);
        // With zero congestion everywhere, q_min*h_min = 0 <= 0: minimal.
        let path = walk(&t, &mut algo, &ZeroCongestion, 0, 17, 9);
        assert_eq!(path.len(), 2); // src router 0, dst router 4, one hop
    }

    /// Congestion view where the direct port toward a victim router is hot.
    struct HotPort {
        port: Port,
    }
    impl CongestionView for HotPort {
        fn vc_congestion(&self, port: Port, _vc: Vc) -> f64 {
            if port == self.port {
                1.0
            } else {
                0.0
            }
        }
        fn port_congestion(&self, port: Port) -> f64 {
            self.vc_congestion(port, 0)
        }
    }

    #[test]
    fn ugal_congested_goes_valiant() {
        let t = Arc::new(HyperX::new(vec![8], 4).unwrap());
        let mut algo = HyperXRouting::new(Arc::clone(&t), HyperXMode::Ugal { threshold: 0.0 }, 2);
        // src terminal 0 on router 0; dst terminal 17 on router 4; the
        // direct port from router 0 to router 4 is hot.
        let direct = t.port_toward(supersim_netbase::RouterId(0), 0, 4);
        let view = HotPort { port: direct };
        let path = walk(&t, &mut algo, &view, 0, 17, 13);
        assert_eq!(
            path.len(),
            3,
            "expected a two-hop valiant path, got {path:?}"
        );
        assert_ne!(path[1], 4);
    }

    #[test]
    fn ugal_valiant_packets_reach_destination() {
        let t = Arc::new(HyperX::new(vec![6], 1).unwrap());
        // Force Valiant by making every direct port look congested and
        // verify delivery across many seeds.
        struct AllHot;
        impl CongestionView for AllHot {
            fn vc_congestion(&self, _p: Port, vc: Vc) -> f64 {
                if vc == VC_MIN {
                    1.0
                } else {
                    0.0
                }
            }
            fn port_congestion(&self, _p: Port) -> f64 {
                0.5
            }
        }
        let mut algo = HyperXRouting::new(Arc::clone(&t), HyperXMode::Ugal { threshold: 0.0 }, 2);
        for seed in 0..20 {
            let path = walk(&t, &mut algo, &AllHot, 0, 3, seed);
            assert!(path.len() == 3, "valiant path expected, got {path:?}");
        }
    }

    #[test]
    #[should_panic(expected = "needs at least 2")]
    fn ugal_requires_two_vcs() {
        let t = Arc::new(HyperX::new(vec![4], 1).unwrap());
        let _ = HyperXRouting::new(t, HyperXMode::Ugal { threshold: 0.0 }, 1);
    }

    #[test]
    fn valiant_always_detours_and_delivers() {
        let t = Arc::new(HyperX::new(vec![6], 1).unwrap());
        let mut algo = HyperXRouting::new(Arc::clone(&t), HyperXMode::Valiant, 2);
        for seed in 0..16 {
            let path = walk(&t, &mut algo, &ZeroCongestion, 0, 3, seed);
            // Source router, random intermediate, destination router.
            assert_eq!(path.len(), 3, "expected a two-hop valiant path: {path:?}");
            assert_ne!(path[1], 3);
            assert_ne!(path[1], 0);
        }
    }
}
