#![warn(missing_docs)]

//! Topologies and routing algorithms for SuperSim-rs (paper §IV-B).
//!
//! A [`Topology`] defines the shape of the network: how many routers and
//! terminals exist, how terminals attach to routers, and how router ports
//! wire to each other. A [`RoutingAlgorithm`] decides, per head flit, which
//! output port and virtual channel to take; adaptive algorithms consult the
//! router's [`CongestionView`]. The router microarchitecture and the
//! topology with its routing algorithm are modeled independently, exactly
//! as in the paper: routers obtain routing algorithm instances through a
//! factory supplied by the network.
//!
//! Provided topologies:
//!
//! - [`Torus`] — k-ary n-cube with per-dimension widths (paper §VI-C uses
//!   an 8×8×8×8 4-D torus),
//! - [`FoldedClos`] — L-level fat tree (paper §VI-A uses a 3-level,
//!   4096-terminal folded Clos),
//! - [`HyperX`] — fully-connected dimensions; covers the 1-D flattened
//!   butterfly of §VI-B and the hypercube,
//! - [`Dragonfly`] — groups of routers with all-to-all global links.
//!
//! Provided routing algorithms:
//!
//! - [`DimOrderRouting`] — deterministic dimension-order routing for tori
//!   with dateline VC classes,
//! - [`UpDownRouting`] — adaptive (least congested) or deterministic
//!   up-routing for folded Clos,
//! - [`HyperXRouting`] — minimal DOR and UGAL (min vs Valiant by
//!   congestion) for HyperX,
//! - [`DragonflyRouting`] — minimal and UGAL global adaptive routing.

mod clos;
mod dragonfly;
mod hyperx;
mod partition;
pub mod routing;
mod torus;
mod types;

pub use clos::FoldedClos;
pub use dragonfly::Dragonfly;
pub use hyperx::HyperX;
pub use partition::{cut_links, partition_routers};
pub use routing::dor::DimOrderRouting;
pub use routing::dragonfly_routing::{DragonflyMode, DragonflyRouting};
pub use routing::hyperx_routing::{HyperXMode, HyperXRouting};
pub use routing::torus_adaptive::AdaptiveTorusRouting;
pub use routing::updown::{UpDownMode, UpDownRouting};
pub use routing::{CongestionView, RouteChoice, RoutingAlgorithm, RoutingContext, ZeroCongestion};
pub use torus::Torus;
pub use types::{ChannelClass, Topology, TopologyError};

#[cfg(all(test, feature = "proptest"))]
mod proptests;
