//! Raw host-time (wall-clock) records for the profiling plane.
//!
//! Everything in this module is strictly *out-of-band*: host clocks are
//! read around engine phases but never feed simulation state, event
//! ordering, or any wire payload that influences delivery. The records
//! collected here are surfaced after the run (or over side channels such
//! as the end-of-run DONE frame and the progress heartbeat) so that all
//! byte-identity guarantees hold with profiling enabled.
//!
//! The structs are plain `std` data: the `stats` crate turns them into
//! metric planes and Chrome `trace_event` JSON, and the `core` crate
//! wires them to configuration. Only the engines in this crate write
//! them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::wire::{get_str, get_varint, put_str, put_varint};

/// Cap on retained per-round slices, so a long run cannot grow the
/// profile without bound. Later rounds past the cap are counted in
/// [`HostShardTimes::dropped_slices`] but not retained.
pub const MAX_ROUND_SLICES: usize = 8192;

/// Wall-time of one executed round (generation batch) on one shard.
///
/// `start_ns` is relative to the owning recorder's epoch (the start of
/// that engine's `run_until`), so slices from different worker processes
/// are aligned only approximately — good enough for a timeline view,
/// never used for anything else.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostRoundSlice {
    /// Nanoseconds since the recorder epoch when the round began.
    pub start_ns: u64,
    /// Simulated tick of the round's generation.
    pub tick: u64,
    /// Events executed locally this round.
    pub events: u64,
    /// Wall time spent executing events.
    pub execute_ns: u64,
    /// Wall time inside the fold (includes barrier / hub wait).
    pub fold_ns: u64,
    /// Wall time inside the exchange (includes barrier / hub wait).
    pub exchange_ns: u64,
}

/// Accumulated host-time attribution for one shard (or the whole
/// sequential engine, which is shard 0 of 1).
///
/// Phase counters are measured on every batch while profiling is
/// enabled; the per-event component-class attribution only on 1-in-N
/// sampled batches (`sample`), bounding the overhead.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostShardTimes {
    /// Sampling stride: per-event attribution runs on one batch in
    /// `sample`. Zero means profiling was disabled.
    pub sample: u32,
    /// Batches (generations) observed while profiling.
    pub total_batches: u64,
    /// Batches that ran with per-event attribution.
    pub sampled_batches: u64,
    /// Events executed within sampled batches.
    pub sampled_events: u64,
    /// Wall time draining the queue (building generation batches).
    pub drain_ns: u64,
    /// Wall time executing events.
    pub execute_ns: u64,
    /// Wall time closing sampling windows at window edges.
    pub sample_edge_ns: u64,
    /// Wall time in the fold (barrier / hub wait for the global minimum).
    pub fold_ns: u64,
    /// Wall time in the exchange (shipping and delivering outboxes).
    pub exchange_ns: u64,
    /// Wall time serializing checkpoint state on this shard.
    pub checkpoint_ns: u64,
    /// Checkpoint snapshots taken on this shard.
    pub checkpoint_writes: u64,
    /// Bytes of checkpoint state produced on this shard.
    pub checkpoint_bytes: u64,
    /// Per component-class `(class, ns, events)` from sampled batches.
    pub classes: Vec<(String, u64, u64)>,
    /// Per-round timeline slices, oldest first, capped at
    /// [`MAX_ROUND_SLICES`].
    pub round_slices: Vec<HostRoundSlice>,
    /// Rounds whose slices were dropped once the cap was reached.
    pub dropped_slices: u64,
}

impl HostShardTimes {
    /// True when this record was collected with profiling on.
    pub fn enabled(&self) -> bool {
        self.sample != 0
    }

    /// Adds `ns`/`events` to the accumulator of `class`.
    pub fn add_class(&mut self, class: &str, ns: u64, events: u64) {
        for (name, t, n) in &mut self.classes {
            if name == class {
                *t += ns;
                *n += events;
                return;
            }
        }
        self.classes.push((class.to_string(), ns, events));
    }

    /// Retains a round slice, or counts it as dropped past the cap.
    pub fn push_slice(&mut self, slice: HostRoundSlice) {
        if self.round_slices.len() < MAX_ROUND_SLICES {
            self.round_slices.push(slice);
        } else {
            self.dropped_slices += 1;
        }
    }

    /// Folds another record (e.g. one `run_until` segment) into this
    /// one: counters add, classes merge by name, slices append under the
    /// cap. The stride is taken from `other` when set.
    pub fn merge(&mut self, other: &HostShardTimes) {
        if other.sample != 0 {
            self.sample = other.sample;
        }
        self.total_batches += other.total_batches;
        self.sampled_batches += other.sampled_batches;
        self.sampled_events += other.sampled_events;
        self.drain_ns += other.drain_ns;
        self.execute_ns += other.execute_ns;
        self.sample_edge_ns += other.sample_edge_ns;
        self.fold_ns += other.fold_ns;
        self.exchange_ns += other.exchange_ns;
        self.checkpoint_ns += other.checkpoint_ns;
        self.checkpoint_writes += other.checkpoint_writes;
        self.checkpoint_bytes += other.checkpoint_bytes;
        for (name, ns, events) in &other.classes {
            self.add_class(name, *ns, *events);
        }
        self.dropped_slices += other.dropped_slices;
        for s in &other.round_slices {
            self.push_slice(*s);
        }
    }

    /// Appends the wire form (LEB128 varints, the crate's wire
    /// discipline) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(self.sample));
        put_varint(out, self.total_batches);
        put_varint(out, self.sampled_batches);
        put_varint(out, self.sampled_events);
        put_varint(out, self.drain_ns);
        put_varint(out, self.execute_ns);
        put_varint(out, self.sample_edge_ns);
        put_varint(out, self.fold_ns);
        put_varint(out, self.exchange_ns);
        put_varint(out, self.checkpoint_ns);
        put_varint(out, self.checkpoint_writes);
        put_varint(out, self.checkpoint_bytes);
        put_varint(out, self.classes.len() as u64);
        for (name, ns, events) in &self.classes {
            put_str(out, name);
            put_varint(out, *ns);
            put_varint(out, *events);
        }
        put_varint(out, self.round_slices.len() as u64);
        for s in &self.round_slices {
            put_varint(out, s.start_ns);
            put_varint(out, s.tick);
            put_varint(out, s.events);
            put_varint(out, s.execute_ns);
            put_varint(out, s.fold_ns);
            put_varint(out, s.exchange_ns);
        }
        put_varint(out, self.dropped_slices);
    }

    /// Decodes the wire form; `None` on malformed input.
    pub fn decode(buf: &mut &[u8]) -> Option<HostShardTimes> {
        let sample = u32::try_from(get_varint(buf)?).ok()?;
        let total_batches = get_varint(buf)?;
        let sampled_batches = get_varint(buf)?;
        let sampled_events = get_varint(buf)?;
        let drain_ns = get_varint(buf)?;
        let execute_ns = get_varint(buf)?;
        let sample_edge_ns = get_varint(buf)?;
        let fold_ns = get_varint(buf)?;
        let exchange_ns = get_varint(buf)?;
        let checkpoint_ns = get_varint(buf)?;
        let checkpoint_writes = get_varint(buf)?;
        let checkpoint_bytes = get_varint(buf)?;
        let n_classes = usize::try_from(get_varint(buf)?).ok()?;
        let mut classes = Vec::with_capacity(n_classes.min(64));
        for _ in 0..n_classes {
            let name = get_str(buf)?;
            let ns = get_varint(buf)?;
            let events = get_varint(buf)?;
            classes.push((name, ns, events));
        }
        let n_slices = usize::try_from(get_varint(buf)?).ok()?;
        if n_slices > MAX_ROUND_SLICES {
            return None;
        }
        let mut round_slices = Vec::with_capacity(n_slices);
        for _ in 0..n_slices {
            round_slices.push(HostRoundSlice {
                start_ns: get_varint(buf)?,
                tick: get_varint(buf)?,
                events: get_varint(buf)?,
                execute_ns: get_varint(buf)?,
                fold_ns: get_varint(buf)?,
                exchange_ns: get_varint(buf)?,
            });
        }
        let dropped_slices = get_varint(buf)?;
        Some(HostShardTimes {
            sample,
            total_batches,
            sampled_batches,
            sampled_events,
            drain_ns,
            execute_ns,
            sample_edge_ns,
            fold_ns,
            exchange_ns,
            checkpoint_ns,
            checkpoint_writes,
            checkpoint_bytes,
            classes,
            round_slices,
            dropped_slices,
        })
    }
}

/// Engine-side helper pairing a [`HostShardTimes`] with its wall-clock
/// epoch and the batch-sampling counter. Created disabled; an engine
/// arms it via [`HostRecorder::set_sample`] and resets the epoch at the
/// start of each `run_until`.
#[derive(Debug)]
pub struct HostRecorder {
    epoch: Instant,
    counter: u64,
    /// The accumulated record.
    pub times: HostShardTimes,
}

impl Default for HostRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl HostRecorder {
    /// A disabled recorder: every probe is a no-op until armed.
    pub fn new() -> Self {
        HostRecorder {
            epoch: Instant::now(),
            counter: 0,
            times: HostShardTimes::default(),
        }
    }

    /// A recorder armed with the given stride (0 keeps it disabled).
    pub fn with_sample(sample: u32) -> Self {
        let mut r = Self::new();
        r.set_sample(sample);
        r
    }

    /// Arms (sample ≥ 1) or disarms (0) profiling.
    pub fn set_sample(&mut self, sample: u32) {
        self.times.sample = sample;
    }

    /// Whether any probing should happen at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.times.sample != 0
    }

    /// Re-bases `start_ns` of future slices on "now".
    pub fn reset_epoch(&mut self) {
        self.epoch = Instant::now();
    }

    /// Nanoseconds since the epoch (saturating to `u64`).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Counts one batch; true when this batch gets per-event
    /// attribution (every `sample`-th batch, starting with the first).
    #[inline]
    pub fn batch_sampled(&mut self) -> bool {
        self.times.total_batches += 1;
        let sampled = self.counter == 0;
        self.counter += 1;
        if self.counter >= u64::from(self.times.sample) {
            self.counter = 0;
        }
        if sampled {
            self.times.sampled_batches += 1;
        }
        sampled
    }
}

/// Live run progress, shared between the executing engine (writers) and
/// the heartbeat emitter (reader). All relaxed atomics: readers only
/// need an eventually consistent snapshot, and the stores on the engine
/// side must stay nearly free.
#[derive(Debug, Default)]
pub struct ProgressShared {
    events: Vec<AtomicU64>,
    tick: AtomicU64,
    rounds: AtomicU64,
    restarts: AtomicU64,
}

impl ProgressShared {
    /// A progress board with one cumulative-events slot per shard.
    pub fn new(shards: usize) -> Self {
        ProgressShared {
            events: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
            tick: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
        }
    }

    /// Publishes shard `shard`'s cumulative executed-event count.
    #[inline]
    pub fn record_events(&self, shard: usize, cumulative: u64) {
        if let Some(slot) = self.events.get(shard) {
            slot.store(cumulative, Ordering::Relaxed);
        }
    }

    /// Publishes the current simulated tick.
    #[inline]
    pub fn record_tick(&self, tick: u64) {
        self.tick.store(tick, Ordering::Relaxed);
    }

    /// Counts one completed round.
    #[inline]
    pub fn add_round(&self) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one worker-fleet restart.
    pub fn add_restart(&self) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Sum of all shards' published event counts.
    pub fn events(&self) -> u64 {
        self.events.iter().map(|e| e.load(Ordering::Relaxed)).sum()
    }

    /// Last published simulated tick.
    pub fn tick(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// Rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Worker-fleet restarts so far.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_times_round_trip() {
        let mut t = HostShardTimes {
            sample: 64,
            total_batches: 1000,
            sampled_batches: 16,
            sampled_events: 4096,
            drain_ns: 11,
            execute_ns: 22,
            sample_edge_ns: 33,
            fold_ns: 44,
            exchange_ns: 55,
            checkpoint_ns: 66,
            checkpoint_writes: 2,
            checkpoint_bytes: 777,
            ..HostShardTimes::default()
        };
        t.add_class("router", 100, 10);
        t.add_class("interface", 50, 5);
        t.add_class("router", 1, 1);
        t.push_slice(HostRoundSlice {
            start_ns: 5,
            tick: 9,
            events: 3,
            execute_ns: 2,
            fold_ns: 1,
            exchange_ns: 1,
        });
        let mut wire = Vec::new();
        t.encode(&mut wire);
        let decoded = HostShardTimes::decode(&mut wire.as_slice()).expect("decodes");
        assert_eq!(decoded, t);
        assert_eq!(decoded.classes[0], ("router".to_string(), 101, 11));
    }

    #[test]
    fn decode_rejects_truncation() {
        let t = HostShardTimes {
            sample: 1,
            ..HostShardTimes::default()
        };
        let mut wire = Vec::new();
        t.encode(&mut wire);
        for cut in 0..wire.len() {
            assert!(HostShardTimes::decode(&mut &wire[..cut]).is_none());
        }
    }

    #[test]
    fn recorder_samples_one_in_n() {
        let mut r = HostRecorder::with_sample(4);
        let pattern: Vec<bool> = (0..8).map(|_| r.batch_sampled()).collect();
        assert_eq!(
            pattern,
            [true, false, false, false, true, false, false, false]
        );
        assert_eq!(r.times.total_batches, 8);
        assert_eq!(r.times.sampled_batches, 2);
    }

    #[test]
    fn slice_cap_counts_drops() {
        let mut t = HostShardTimes::default();
        for _ in 0..(MAX_ROUND_SLICES + 3) {
            t.push_slice(HostRoundSlice::default());
        }
        assert_eq!(t.round_slices.len(), MAX_ROUND_SLICES);
        assert_eq!(t.dropped_slices, 3);
    }

    #[test]
    fn progress_board_sums_shards() {
        let p = ProgressShared::new(3);
        p.record_events(0, 10);
        p.record_events(2, 5);
        p.record_events(7, 99); // out of range: ignored
        p.record_tick(42);
        p.add_round();
        p.add_round();
        p.add_restart();
        assert_eq!(p.events(), 15);
        assert_eq!(p.tick(), 42);
        assert_eq!(p.rounds(), 2);
        assert_eq!(p.restarts(), 1);
    }
}
