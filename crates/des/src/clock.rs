//! Clock domains (paper §III-B, Figure 2b).
//!
//! SuperSim allows multiple clock frequencies in one design. A clock is
//! specified by its cycle time in ticks (e.g. Clock A with a 3-tick period
//! and Clock B with a 2-tick period). This is most commonly used to model
//! switch frequency speedup, where the switch core runs faster than the
//! links.

use crate::time::{Tick, Time};

/// A clock domain with a fixed period (in ticks) and phase offset.
///
/// Edges occur at ticks `phase + n * period` for `n = 0, 1, 2, ...`.
///
/// # Example
///
/// ```
/// use supersim_des::Clock;
///
/// // A clock with a 3-tick cycle time.
/// let clk = Clock::new(3);
/// assert_eq!(clk.edge(0), 0);
/// assert_eq!(clk.edge(2), 6);
/// assert_eq!(clk.next_edge(4), 6);  // strictly after tick 4
/// assert_eq!(clk.edge_at_or_after(6), 6);
/// assert_eq!(clk.cycle(7), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Clock {
    period: Tick,
    phase: Tick,
}

impl Clock {
    /// Creates a clock with the given period in ticks and phase 0.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: Tick) -> Self {
        Self::with_phase(period, 0)
    }

    /// Creates a clock with the given period and phase offset in ticks.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `phase >= period`.
    pub fn with_phase(period: Tick, phase: Tick) -> Self {
        assert!(period > 0, "clock period must be non-zero");
        assert!(phase < period, "clock phase must be less than the period");
        Clock { period, phase }
    }

    /// The cycle time of this clock in ticks.
    #[inline]
    pub fn period(&self) -> Tick {
        self.period
    }

    /// The phase offset of this clock in ticks.
    #[inline]
    pub fn phase(&self) -> Tick {
        self.phase
    }

    /// The tick of edge number `cycle`.
    #[inline]
    pub fn edge(&self, cycle: u64) -> Tick {
        self.phase + cycle * self.period
    }

    /// The cycle number whose edge is at or before `tick`.
    ///
    /// Ticks before the first edge report cycle 0.
    #[inline]
    pub fn cycle(&self, tick: Tick) -> u64 {
        tick.saturating_sub(self.phase) / self.period
    }

    /// The first edge tick strictly after `tick`.
    #[inline]
    pub fn next_edge(&self, tick: Tick) -> Tick {
        let e = self.edge_at_or_after(tick);
        if e == tick {
            e + self.period
        } else {
            e
        }
    }

    /// The first edge tick at or after `tick`.
    #[inline]
    pub fn edge_at_or_after(&self, tick: Tick) -> Tick {
        if tick <= self.phase {
            return self.phase;
        }
        let delta = tick - self.phase;
        let rem = delta % self.period;
        if rem == 0 {
            tick
        } else {
            tick + (self.period - rem)
        }
    }

    /// The first edge time at or after `time`, at epsilon 0.
    ///
    /// If `time` already sits exactly on an edge but at a non-zero epsilon,
    /// the *next* edge is returned, because work at an epsilon greater than
    /// zero happens logically after the edge fired.
    #[inline]
    pub fn edge_time_after(&self, time: Time) -> Time {
        let tick = if time.epsilon() == 0 {
            self.edge_at_or_after(time.tick())
        } else {
            self.next_edge(time.tick())
        };
        Time::at(tick)
    }

    /// Whether `tick` falls exactly on a clock edge.
    #[inline]
    pub fn is_edge(&self, tick: Tick) -> bool {
        tick >= self.phase && (tick - self.phase).is_multiple_of(self.period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_and_cycles() {
        let c = Clock::new(3);
        assert_eq!(c.edge(0), 0);
        assert_eq!(c.edge(4), 12);
        assert_eq!(c.cycle(0), 0);
        assert_eq!(c.cycle(2), 0);
        assert_eq!(c.cycle(3), 1);
        assert_eq!(c.cycle(11), 3);
    }

    #[test]
    fn phase_offset() {
        let c = Clock::with_phase(4, 1);
        assert_eq!(c.edge(0), 1);
        assert_eq!(c.edge(2), 9);
        assert!(c.is_edge(5));
        assert!(!c.is_edge(4));
        assert_eq!(c.edge_at_or_after(0), 1);
        assert_eq!(c.cycle(0), 0);
        assert_eq!(c.cycle(5), 1);
    }

    #[test]
    fn next_edge_is_strict() {
        let c = Clock::new(2);
        assert_eq!(c.next_edge(4), 6);
        assert_eq!(c.next_edge(5), 6);
        assert_eq!(c.edge_at_or_after(4), 4);
    }

    #[test]
    fn edge_time_after_respects_epsilon() {
        let c = Clock::new(5);
        // On the edge at epsilon 0: stay.
        assert_eq!(c.edge_time_after(Time::new(10, 0)), Time::at(10));
        // On the edge but past epsilon 0: next edge.
        assert_eq!(c.edge_time_after(Time::new(10, 1)), Time::at(15));
        // Between edges: round up.
        assert_eq!(c.edge_time_after(Time::new(11, 3)), Time::at(15));
    }

    #[test]
    #[should_panic(expected = "period must be non-zero")]
    fn zero_period_panics() {
        let _ = Clock::new(0);
    }

    #[test]
    #[should_panic(expected = "phase must be less")]
    fn bad_phase_panics() {
        let _ = Clock::with_phase(2, 2);
    }

    #[test]
    fn two_frequency_example_from_paper() {
        // Figure 2b: Clock A has a 3-tick cycle, Clock B a 2-tick cycle.
        let a = Clock::new(3);
        let b = Clock::new(2);
        let a_edges: Vec<_> = (0..4).map(|i| a.edge(i)).collect();
        let b_edges: Vec<_> = (0..5).map(|i| b.edge(i)).collect();
        assert_eq!(a_edges, vec![0, 3, 6, 9]);
        assert_eq!(b_edges, vec![0, 2, 4, 6, 8]);
    }
}
