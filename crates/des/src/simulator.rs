//! The simulation engine: component storage, executor, and run statistics
//! (paper §III-A, Figure 1).

use std::fmt;
use std::time::{Duration, Instant};

use crate::component::{Component, ComponentId};
use crate::event::{EventEntry, EventQueue};
use crate::rng::Rng;
use crate::time::{Tick, Time};

/// Why a [`Simulator::run`] call returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue ran empty: the simulation is over.
    Drained,
    /// A component requested an orderly stop via [`Context::stop`].
    Stopped,
    /// The tick limit given to [`Simulator::run_until`] was reached.
    TickLimit,
    /// A component reported a fatal modeling error via [`Context::fail`].
    Failed(String),
}

impl RunOutcome {
    /// Whether the run ended without a component-reported error.
    pub fn is_ok(&self) -> bool {
        !matches!(self, RunOutcome::Failed(_))
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Drained => write!(f, "event queue drained"),
            RunOutcome::Stopped => write!(f, "stopped by component request"),
            RunOutcome::TickLimit => write!(f, "tick limit reached"),
            RunOutcome::Failed(msg) => write!(f, "failed: {msg}"),
        }
    }
}

/// Engine statistics for one run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Events executed during the run.
    pub events_executed: u64,
    /// Simulation time of the last executed event.
    pub end_time: Time,
    /// Largest number of simultaneously pending events.
    pub queue_high_water: usize,
    /// Total events enqueued over the lifetime of the simulator.
    pub total_enqueued: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// How the run ended.
    pub outcome: RunOutcome,
}

impl RunStats {
    /// Events executed per wall-clock second, or 0 for an empty run.
    pub fn events_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events_executed as f64 / secs
        } else {
            0.0
        }
    }
}

/// Number of log₂ batch-size buckets: bucket 0 is unused (a batch has at
/// least one event), bucket `i` covers sizes in `[2^(i-1), 2^i)`.
pub const BATCH_BUCKETS: usize = 65;

/// Engine self-metrics accumulated over the simulator's lifetime.
///
/// The `des` crate sits below the stats crate in the dependency order, so
/// the batch-size distribution is exposed as a raw log₂-bucketed count
/// array; higher layers convert it into their histogram type.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Events executed since construction.
    pub events_executed: u64,
    /// Same-`(tick, epsilon)` batches dispatched.
    pub batches: u64,
    /// Log₂-bucketed distribution of executed batch sizes: bucket `i > 0`
    /// counts batches of `[2^(i-1), 2^i)` events. Sums to `batches`; the
    /// weighted sum of sizes is `events_executed`.
    pub batch_counts: [u64; BATCH_BUCKETS],
    /// Events pending right now.
    pub queue_len: usize,
    /// Largest number of simultaneously pending events ever observed.
    pub queue_high_water: usize,
    /// Events ever enqueued.
    pub total_enqueued: u64,
    /// Current ring horizon in ticks.
    pub horizon: usize,
    /// Adaptive horizon doublings performed.
    pub horizon_resizes: u64,
    /// Pushes that landed in the overflow heap instead of the ring.
    pub overflow_spills: u64,
    /// Events currently parked in the overflow heap.
    pub overflow_len: usize,
}

/// Log₂ bucket index shared with the stats crate's histogram: 0 → 0,
/// otherwise `64 - leading_zeros(v)`.
#[inline]
fn log2_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The execution context handed to a component while it processes an event.
///
/// Through the context a component can read the current time, schedule new
/// events (for itself or any other component), draw deterministic random
/// numbers, and signal stop or failure.
pub struct Context<'a, E> {
    now: Time,
    self_id: ComponentId,
    queue: &'a mut EventQueue<E>,
    rng: &'a mut Rng,
    stop_requested: &'a mut bool,
    failure: &'a mut Option<String>,
}

impl<'a, E> Context<'a, E> {
    /// The time of the event currently being processed.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the component currently processing an event.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Schedules `payload` for `target` at `time`.
    ///
    /// `time` must not be in the past. Scheduling at exactly the current
    /// `(tick, epsilon)` is allowed and runs after the current event (FIFO);
    /// use [`Time::next_epsilon`] to make intra-tick ordering explicit.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`Context::now`] — scheduling into
    /// the past is always a bug in a component model.
    #[inline]
    pub fn schedule(&mut self, target: ComponentId, time: Time, payload: E) {
        assert!(
            time >= self.now,
            "component {} scheduled an event into the past ({} < {})",
            self.self_id,
            time,
            self.now
        );
        self.queue.push(target, time, payload);
    }

    /// Schedules `payload` for this component itself at `time`.
    #[inline]
    pub fn schedule_self(&mut self, time: Time, payload: E) {
        self.schedule(self.self_id, time, payload);
    }

    /// The simulation's deterministic random number generator.
    ///
    /// All stochastic decisions must draw from this generator so that a
    /// `(configuration, seed)` pair reproduces bit-identical simulations.
    #[inline]
    pub fn rng(&mut self) -> &mut Rng {
        self.rng
    }

    /// Requests an orderly stop: the executor returns after the current
    /// event completes, leaving remaining events pending.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }

    /// Reports a fatal modeling error (paper §IV-D error detection). The
    /// executor halts and surfaces the message in [`RunOutcome::Failed`].
    pub fn fail(&mut self, message: impl Into<String>) {
        if self.failure.is_none() {
            *self.failure = Some(message.into());
        }
    }
}

/// The discrete event simulator: owns the components, the global event
/// queue, and the executor loop.
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct Simulator<E> {
    components: Vec<Option<Box<dyn Component<E>>>>,
    queue: EventQueue<E>,
    /// Scratch buffer for batch draining, reused across `run` calls.
    batch: Vec<EventEntry<E>>,
    now: Time,
    rng: Rng,
    events_executed: u64,
    batches: u64,
    batch_counts: [u64; BATCH_BUCKETS],
}

impl<E: 'static> Simulator<E> {
    /// Creates a simulator whose random stream is derived from `seed`.
    pub fn new(seed: u64) -> Self {
        Simulator {
            components: Vec::new(),
            queue: EventQueue::new(),
            batch: Vec::new(),
            now: Time::ZERO,
            rng: Rng::new(seed),
            events_executed: 0,
            batches: 0,
            batch_counts: [0; BATCH_BUCKETS],
        }
    }

    /// Registers a component and returns its id.
    pub fn add_component(&mut self, component: Box<dyn Component<E>>) -> ComponentId {
        let id = ComponentId(self.components.len() as u32);
        self.components.push(Some(component));
        id
    }

    /// Number of registered components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Current simulation time (time of the most recent event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Enqueues an initial event from outside any component.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current simulation time.
    pub fn schedule(&mut self, target: ComponentId, time: Time, payload: E) {
        assert!(time >= self.now, "cannot schedule into the past");
        self.queue.push(target, time, payload);
    }

    /// Borrows a component by id.
    ///
    /// Returns `None` for an unknown id.
    pub fn component(&self, id: ComponentId) -> Option<&dyn Component<E>> {
        self.components.get(id.index()).and_then(|c| c.as_deref())
    }

    /// Downcasts a component to its concrete type for post-run inspection.
    pub fn component_as<T: 'static>(&self, id: ComponentId) -> Option<&T> {
        self.component(id)
            .and_then(|c| c.as_any().downcast_ref::<T>())
    }

    /// Mutable variant of [`Simulator::component_as`].
    pub fn component_as_mut<T: 'static>(&mut self, id: ComponentId) -> Option<&mut T> {
        self.components
            .get_mut(id.index())
            .and_then(|c| c.as_deref_mut())
            .and_then(|c| c.as_any_mut().downcast_mut::<T>())
    }

    /// Folds one finished (or aborted) batch into the engine counters.
    #[inline]
    fn record_batch(&mut self, done: u64) {
        if done == 0 {
            return;
        }
        self.events_executed += done;
        self.batches += 1;
        self.batch_counts[log2_bucket(done)] += 1;
    }

    /// Engine self-metrics accumulated since construction.
    pub fn metrics(&self) -> EngineMetrics {
        EngineMetrics {
            events_executed: self.events_executed,
            batches: self.batches,
            batch_counts: self.batch_counts,
            queue_len: self.queue.len(),
            queue_high_water: self.queue.high_water_mark(),
            total_enqueued: self.queue.total_enqueued(),
            horizon: self.queue.horizon(),
            horizon_resizes: self.queue.horizon_resizes(),
            overflow_spills: self.queue.overflow_spills(),
            overflow_len: self.queue.overflow_len(),
        }
    }

    /// Runs until the event queue drains, a component stops or fails.
    pub fn run(&mut self) -> RunStats {
        self.run_until(Tick::MAX)
    }

    /// Runs until the queue drains, a component stops or fails, or the next
    /// event would execute at a tick strictly greater than `tick_limit`.
    ///
    /// The executor drains the queue in same-`(tick, epsilon)` batches:
    /// every event in a batch is known to be ready, so the hot loop
    /// dispatches the whole slice without re-examining the queue between
    /// events. If a component stops or fails mid-batch, the unexecuted
    /// remainder is requeued ahead of anything scheduled during the batch,
    /// so resuming the run observes the exact single-pop order.
    pub fn run_until(&mut self, tick_limit: Tick) -> RunStats {
        let start = Instant::now();
        let start_events = self.events_executed;
        let mut stop_requested = false;
        let mut failure: Option<String> = None;
        let mut batch = std::mem::take(&mut self.batch);
        let outcome = 'run: loop {
            let Some(next_time) = self.queue.take_batch_until(tick_limit, &mut batch) else {
                break if self.queue.is_empty() {
                    RunOutcome::Drained
                } else {
                    RunOutcome::TickLimit
                };
            };
            debug_assert!(next_time >= self.now, "event queue went backwards");
            self.now = next_time;

            // Engine stats update once per batch, not per event: `done`
            // counts executed events in a register and folds into the
            // simulator's counters when the batch ends (normally or via an
            // abort path), keeping the per-event loop free of stats writes.
            let mut done = 0u64;
            let mut pending = batch.drain(..);
            while let Some(entry) = pending.next() {
                let slot = match self.components.get_mut(entry.target.index()) {
                    Some(slot) => slot,
                    None => {
                        let target = entry.target;
                        self.record_batch(done + 1);
                        self.queue.requeue_front(pending);
                        break 'run RunOutcome::Failed(format!(
                            "event targeted unregistered {target}"
                        ));
                    }
                };
                let mut component = slot.take().expect("component re-entered while active");
                let mut ctx = Context {
                    now: self.now,
                    self_id: entry.target,
                    queue: &mut self.queue,
                    rng: &mut self.rng,
                    stop_requested: &mut stop_requested,
                    failure: &mut failure,
                };
                component.handle(&mut ctx, entry.payload);
                self.components[entry.target.index()] = Some(component);
                done += 1;

                if let Some(msg) = failure.take() {
                    self.record_batch(done);
                    self.queue.requeue_front(pending);
                    break 'run RunOutcome::Failed(msg);
                }
                if stop_requested {
                    self.record_batch(done);
                    self.queue.requeue_front(pending);
                    break 'run RunOutcome::Stopped;
                }
            }
            self.record_batch(done);
        };
        self.batch = batch;
        RunStats {
            events_executed: self.events_executed - start_events,
            end_time: self.now,
            queue_high_water: self.queue.high_water_mark(),
            total_enqueued: self.queue.total_enqueued(),
            wall: start.elapsed(),
            outcome,
        }
    }
}

impl<E> fmt::Debug for Simulator<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("components", &self.components.len())
            .field("pending_events", &self.queue.len())
            .field("now", &self.now)
            .field("events_executed", &self.events_executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    #[derive(Debug, Clone, PartialEq)]
    enum Ev {
        Ping(u32),
        Stop,
        Fail,
    }

    struct Echo {
        peer: Option<ComponentId>,
        received: Vec<u32>,
        limit: u32,
    }

    impl Component<Ev> for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
            match event {
                Ev::Ping(n) => {
                    self.received.push(n);
                    if n < self.limit {
                        if let Some(peer) = self.peer {
                            ctx.schedule(peer, ctx.now().plus_ticks(2), Ev::Ping(n + 1));
                        }
                    }
                }
                Ev::Stop => ctx.stop(),
                Ev::Fail => ctx.fail("synthetic failure"),
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn echo_pair(limit: u32) -> (Simulator<Ev>, ComponentId, ComponentId) {
        let mut sim = Simulator::new(1);
        let a = sim.add_component(Box::new(Echo {
            peer: None,
            received: vec![],
            limit,
        }));
        let b = sim.add_component(Box::new(Echo {
            peer: Some(a),
            received: vec![],
            limit,
        }));
        sim.component_as_mut::<Echo>(a).unwrap().peer = Some(b);
        (sim, a, b)
    }

    #[test]
    fn ping_pong_until_drained() {
        let (mut sim, a, b) = echo_pair(5);
        sim.schedule(a, Time::at(0), Ev::Ping(0));
        let stats = sim.run();
        assert_eq!(stats.outcome, RunOutcome::Drained);
        assert_eq!(stats.events_executed, 6);
        assert_eq!(sim.component_as::<Echo>(a).unwrap().received, vec![0, 2, 4]);
        assert_eq!(sim.component_as::<Echo>(b).unwrap().received, vec![1, 3, 5]);
        assert_eq!(sim.now(), Time::at(10));
    }

    #[test]
    fn stop_leaves_queue_pending() {
        let (mut sim, a, _) = echo_pair(100);
        sim.schedule(a, Time::at(0), Ev::Ping(0));
        sim.schedule(a, Time::at(3), Ev::Stop);
        let stats = sim.run();
        assert_eq!(stats.outcome, RunOutcome::Stopped);
        // The in-flight ping to the peer is still pending.
        let resumed = sim.run();
        assert_eq!(resumed.outcome, RunOutcome::Drained);
    }

    #[test]
    fn failure_is_surfaced() {
        let (mut sim, a, _) = echo_pair(1);
        sim.schedule(a, Time::at(0), Ev::Fail);
        let stats = sim.run();
        assert_eq!(
            stats.outcome,
            RunOutcome::Failed("synthetic failure".into())
        );
    }

    #[test]
    fn tick_limit_pauses_and_resumes() {
        let (mut sim, a, b) = echo_pair(50);
        sim.schedule(a, Time::at(0), Ev::Ping(0));
        let stats = sim.run_until(10);
        assert_eq!(stats.outcome, RunOutcome::TickLimit);
        assert!(sim.now().tick() <= 10);
        let stats = sim.run();
        assert_eq!(stats.outcome, RunOutcome::Drained);
        let total = sim.component_as::<Echo>(a).unwrap().received.len()
            + sim.component_as::<Echo>(b).unwrap().received.len();
        assert_eq!(total, 51);
    }

    #[test]
    fn unknown_target_fails() {
        let mut sim: Simulator<Ev> = Simulator::new(0);
        sim.schedule(ComponentId::from_index(9), Time::at(0), Ev::Stop);
        let stats = sim.run();
        assert!(matches!(stats.outcome, RunOutcome::Failed(_)));
    }

    #[test]
    fn deterministic_rng_across_runs() {
        let mut a = Simulator::<Ev>::new(42);
        let mut b = Simulator::<Ev>::new(42);
        let xa: u64 = a.rng.gen_u64();
        let xb: u64 = b.rng.gen_u64();
        assert_eq!(xa, xb);
    }

    #[test]
    fn batch_metrics_account_every_event_once() {
        let (mut sim, a, _) = echo_pair(9);
        sim.schedule(a, Time::at(0), Ev::Ping(0));
        let stats = sim.run();
        assert_eq!(stats.outcome, RunOutcome::Drained);
        let m = sim.metrics();
        assert_eq!(m.events_executed, stats.events_executed);
        assert_eq!(m.batch_counts.iter().sum::<u64>(), m.batches);
        // Ping-pong runs one event per (tick, epsilon): all batches size 1.
        assert_eq!(m.batches, m.events_executed);
        assert_eq!(m.batch_counts[1], m.batches, "size-1 batches fill bucket 1");
        assert_eq!(m.total_enqueued, stats.total_enqueued);
        assert_eq!(m.queue_len, 0);
    }

    #[test]
    fn aborted_batch_still_counts_executed_events() {
        let mut sim = Simulator::new(7);
        let a = sim.add_component(Box::new(Echo {
            peer: None,
            received: vec![],
            limit: 0,
        }));
        // Three same-time events; the second stops the run mid-batch.
        sim.schedule(a, Time::at(1), Ev::Ping(0));
        sim.schedule(a, Time::at(1), Ev::Stop);
        sim.schedule(a, Time::at(1), Ev::Ping(1));
        let stats = sim.run();
        assert_eq!(stats.outcome, RunOutcome::Stopped);
        assert_eq!(stats.events_executed, 2);
        let m = sim.metrics();
        assert_eq!(m.events_executed, 2);
        assert_eq!(m.batches, 1);
        assert_eq!(m.batch_counts[2], 1, "partial batch of 2 lands in bucket 2");
        assert_eq!(m.queue_len, 1, "unexecuted remainder stays pending");
    }

    #[test]
    fn stats_report_throughput() {
        let (mut sim, a, _) = echo_pair(3);
        sim.schedule(a, Time::at(0), Ev::Ping(0));
        let stats = sim.run();
        assert!(stats.events_per_second() >= 0.0);
        assert_eq!(stats.total_enqueued, 4);
        assert!(stats.queue_high_water >= 1);
    }
}
