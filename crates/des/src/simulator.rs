//! The sequential engine: component storage, calendar-queue executor, and
//! run statistics (paper §III-A, Figure 1).
//!
//! This is the original `Simulator` (the name survives as a type alias),
//! now one of two [`Engine`](crate::Engine) backends. It executes the
//! whole simulation on the calling thread, draining same-`(tick,
//! epsilon)` *generations* in canonical stamp order — see the
//! [`engine`](crate::engine) module for the determinism contract shared
//! with the sharded backend.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use crate::component::{Component, ComponentId};
use crate::engine::{
    flush_trace, log2_bucket, next_edge_after, Context, Engine, EngineMetrics, EventStamp,
    RunOutcome, RunStats, SinkRef, Stamped, TaggedTrace, TraceSink, BATCH_BUCKETS, EXTERNAL_SRC,
};
use crate::event::{EventEntry, EventQueue};
use crate::host::{HostRecorder, HostRoundSlice, HostShardTimes, ProgressShared};
use crate::rng::Rng;
use crate::time::{Tick, Time};
use crate::trace::{TraceBuffer, TraceEvent, TraceSpec};

/// Trace collection state: the spec plus the ring it fills.
#[derive(Debug)]
pub(crate) struct TraceState {
    pub(crate) spec: TraceSpec,
    pub(crate) buffer: TraceBuffer,
}

/// The single-threaded discrete event engine: owns the components, the
/// global event queue, and the executor loop.
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct SequentialEngine<E> {
    pub(crate) components: Vec<Option<Box<dyn Component<E>>>>,
    /// Per-component random streams, derived from `(seed, index)`.
    pub(crate) rngs: Vec<Rng>,
    /// Per-component send counters (event stamp sources).
    pub(crate) seqs: Vec<u64>,
    pub(crate) queue: EventQueue<Stamped<E>>,
    /// Scratch buffer for batch draining, reused across `run` calls.
    batch: Vec<EventEntry<Stamped<E>>>,
    /// Scratch buffer for per-generation trace records.
    trace_scratch: Vec<TaggedTrace>,
    pub(crate) now: Time,
    pub(crate) seed: u64,
    /// Send counter for external ([`SequentialEngine::schedule`]) events.
    pub(crate) ext_seq: u64,
    pub(crate) trace: Option<TraceState>,
    /// No-progress watchdog window in ticks; 0 = disarmed.
    pub(crate) watchdog: Tick,
    /// Sampling window width in ticks; 0 = disarmed.
    pub(crate) sample_interval: Tick,
    /// Tick of the last [`Context::progress`] report.
    pub(crate) last_progress: Tick,
    events_executed: u64,
    batches: u64,
    batch_counts: [u64; BATCH_BUCKETS],
    /// Out-of-band host-time profiler (disabled by default).
    host: HostRecorder,
    /// Out-of-band live-progress board, written after each batch.
    progress_board: Option<Arc<ProgressShared>>,
}

/// The historical name of the sequential engine. Existing models,
/// examples, and tests keep using `Simulator`; code that selects a
/// backend at run time uses the [`Engine`] trait instead.
pub type Simulator<E> = SequentialEngine<E>;

impl<E: 'static> SequentialEngine<E> {
    /// Creates an engine whose random streams are derived from `seed`.
    pub fn new(seed: u64) -> Self {
        SequentialEngine {
            components: Vec::new(),
            rngs: Vec::new(),
            seqs: Vec::new(),
            queue: EventQueue::new(),
            batch: Vec::new(),
            trace_scratch: Vec::new(),
            now: Time::ZERO,
            seed,
            ext_seq: 0,
            trace: None,
            watchdog: 0,
            sample_interval: 0,
            last_progress: 0,
            events_executed: 0,
            batches: 0,
            batch_counts: [0; BATCH_BUCKETS],
            host: HostRecorder::new(),
            progress_board: None,
        }
    }

    /// Registers a component and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the component count would exceed the 32-bit id space.
    pub fn add_component(&mut self, component: Box<dyn Component<E>>) -> ComponentId {
        let id = ComponentId::try_from_index(self.components.len())
            .expect("component count exceeds the 32-bit id space");
        self.rngs.push(Rng::stream(self.seed, id.0 as u64));
        self.seqs.push(0);
        self.components.push(Some(component));
        id
    }

    /// Number of registered components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Current simulation time (time of the most recent event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Enqueues an initial event from outside any component.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current simulation time.
    pub fn schedule(&mut self, target: ComponentId, time: Time, payload: E) {
        assert!(time >= self.now, "cannot schedule into the past");
        let stamp = EventStamp {
            src: EXTERNAL_SRC,
            seq: self.ext_seq,
        };
        self.ext_seq += 1;
        self.queue.push(target, time, Stamped { stamp, payload });
    }

    /// Borrows a component by id.
    ///
    /// Returns `None` for an unknown id.
    pub fn component(&self, id: ComponentId) -> Option<&dyn Component<E>> {
        self.components.get(id.index()).and_then(|c| c.as_deref())
    }

    /// Downcasts a component to its concrete type for post-run inspection.
    pub fn component_as<T: 'static>(&self, id: ComponentId) -> Option<&T> {
        self.component(id)
            .and_then(|c| c.as_any().downcast_ref::<T>())
    }

    /// Mutable variant of [`SequentialEngine::component_as`].
    pub fn component_as_mut<T: 'static>(&mut self, id: ComponentId) -> Option<&mut T> {
        self.components
            .get_mut(id.index())
            .and_then(|c| c.as_deref_mut())
            .and_then(|c| c.as_any_mut().downcast_mut::<T>())
    }

    /// Arms the no-progress watchdog (see [`Engine::set_watchdog`]).
    pub fn set_watchdog(&mut self, window: Tick) {
        self.watchdog = window;
    }

    /// Arms the windowed sampler (see [`Engine::set_sampler`]).
    pub fn set_sampler(&mut self, interval: Tick) {
        self.sample_interval = interval;
    }

    /// Enables trace collection (see [`Engine::set_trace`]).
    pub fn set_trace(&mut self, spec: TraceSpec, capacity: usize) {
        self.trace = Some(TraceState {
            spec,
            buffer: TraceBuffer::with_capacity(capacity),
        });
    }

    /// Folds one finished (or aborted) batch into the engine counters.
    #[inline]
    fn record_batch(&mut self, done: u64) {
        if done == 0 {
            return;
        }
        self.events_executed += done;
        self.batches += 1;
        self.batch_counts[log2_bucket(done)] += 1;
    }

    /// Engine self-metrics accumulated since construction.
    pub fn metrics(&self) -> EngineMetrics {
        EngineMetrics {
            events_executed: self.events_executed,
            batches: self.batches,
            batch_counts: self.batch_counts,
            queue_len: self.queue.len(),
            queue_high_water: self.queue.high_water_mark(),
            total_enqueued: self.queue.total_enqueued(),
            horizon: self.queue.horizon(),
            horizon_resizes: self.queue.horizon_resizes(),
            overflow_spills: self.queue.overflow_spills(),
            overflow_len: self.queue.overflow_len(),
        }
    }

    /// Runs until the event queue drains, a component stops or fails.
    pub fn run(&mut self) -> RunStats {
        self.run_until(Tick::MAX)
    }

    /// Runs until the queue drains, a component stops or fails, or the next
    /// event would execute at a tick strictly greater than `tick_limit`.
    ///
    /// The executor drains the queue in same-`(tick, epsilon)` generations
    /// sorted by [`EventStamp`]: every event in a generation is known to be
    /// ready, so the hot loop dispatches the whole slice without
    /// re-examining the queue between events. If a component stops or fails
    /// mid-generation, the unexecuted remainder is requeued ahead of
    /// anything scheduled during the generation, so resuming the run
    /// observes the exact canonical order.
    pub fn run_until(&mut self, tick_limit: Tick) -> RunStats {
        let start = Instant::now();
        let start_events = self.events_executed;
        let mut stop_requested = false;
        let mut failure: Option<String> = None;
        let mut progress = false;
        let mut batch = std::mem::take(&mut self.batch);
        let mut scratch = std::mem::take(&mut self.trace_scratch);
        let trace_spec = self.trace.as_ref().map(|t| t.spec);
        // The next window edge is a pure function of (now, interval), so a
        // paused-and-resumed run samples exactly the edges a continuous run
        // would: every edge up to `now` was crossed before `now` advanced.
        let mut next_edge = (self.sample_interval > 0)
            .then(|| next_edge_after(self.now.tick(), self.sample_interval));
        let outcome = 'run: loop {
            // No-progress watchdog: trips when the next runnable event
            // lies more than `watchdog` ticks past the last progress
            // report. Checked before the batch is taken, so the pending
            // queue survives intact for diagnostics.
            if self.watchdog > 0 {
                if let Some(next) = self.queue.peek_time() {
                    if next.tick() <= tick_limit
                        && next.tick().saturating_sub(self.last_progress) > self.watchdog
                    {
                        break RunOutcome::Watchdog {
                            last_progress: self.last_progress,
                        };
                    }
                }
            }
            // Host-time probes are strictly out-of-band: wall clocks are
            // read around phases but never influence which events run or
            // in what order, so profiling cannot perturb determinism.
            let profiling = self.host.enabled();
            let t_drain = profiling.then(Instant::now);
            let took = self.queue.take_batch_until(tick_limit, &mut batch);
            if let Some(t0) = t_drain {
                self.host.times.drain_ns += t0.elapsed().as_nanos() as u64;
            }
            let Some(next_time) = took else {
                break if self.queue.is_empty() {
                    RunOutcome::Drained
                } else {
                    RunOutcome::TickLimit
                };
            };
            debug_assert!(next_time >= self.now, "event queue went backwards");
            // Window edges crossed by this generation close before any of
            // its events run: everything below the edge has executed,
            // nothing at or past it has (see `Engine::set_sampler`).
            if next_edge.is_some_and(|e| e <= next_time.tick()) {
                let t_edge = profiling.then(Instant::now);
                while let Some(edge) = next_edge.filter(|&e| e <= next_time.tick()) {
                    for slot in self.components.iter_mut() {
                        if let Some(c) = slot.as_deref_mut() {
                            c.sample(edge);
                        }
                    }
                    next_edge = edge.checked_add(self.sample_interval);
                }
                if let Some(t0) = t_edge {
                    self.host.times.sample_edge_ns += t0.elapsed().as_nanos() as u64;
                }
            }
            self.now = next_time;
            if batch.len() > 1 {
                // Canonical generation order (see the engine module docs):
                // unique stamps make this a deterministic total order.
                batch.sort_unstable_by_key(|e| e.payload.stamp);
            }

            // Engine stats update once per generation, not per event:
            // `done` counts executed events in a register and folds into
            // the engine's counters when the generation ends (normally or
            // via an abort path), keeping the per-event loop free of stats
            // writes.
            let mut done = 0u64;
            // One batch in `sample` additionally gets per-event
            // component-class attribution.
            let sampled = profiling && self.host.batch_sampled();
            let exec_start_ns = profiling.then(|| self.host.now_ns());
            let t_exec = profiling.then(Instant::now);
            scratch.clear();
            let mut pending = batch.drain(..);
            while let Some(entry) = pending.next() {
                let idx = entry.target.index();
                let slot = match self.components.get_mut(idx) {
                    Some(slot) => slot,
                    None => {
                        let target = entry.target;
                        self.record_batch(done + 1);
                        self.queue.requeue_front(pending);
                        break 'run RunOutcome::Failed(format!(
                            "event targeted unregistered {target}"
                        ));
                    }
                };
                let mut component = slot.take().expect("component re-entered while active");
                let mut ctx = Context {
                    now: self.now,
                    self_id: entry.target,
                    sink: SinkRef::Local(&mut self.queue),
                    seq: &mut self.seqs[idx],
                    rng: &mut self.rngs[idx],
                    stop_requested: &mut stop_requested,
                    failure: &mut failure,
                    progress: &mut progress,
                    trace: trace_spec.map(|spec| TraceSink {
                        spec,
                        stamp: entry.payload.stamp,
                        recno: 0,
                        out: &mut scratch,
                    }),
                };
                if sampled {
                    let t_ev = Instant::now();
                    component.handle(&mut ctx, entry.payload.payload);
                    let ev_ns = t_ev.elapsed().as_nanos() as u64;
                    let class = component.host_class();
                    self.components[idx] = Some(component);
                    self.host.times.add_class(class, ev_ns, 1);
                    self.host.times.sampled_events += 1;
                } else {
                    component.handle(&mut ctx, entry.payload.payload);
                    self.components[idx] = Some(component);
                }
                done += 1;

                if let Some(msg) = failure.take() {
                    self.record_batch(done);
                    self.queue.requeue_front(pending);
                    break 'run RunOutcome::Failed(msg);
                }
                if stop_requested {
                    self.record_batch(done);
                    self.queue.requeue_front(pending);
                    break 'run RunOutcome::Stopped;
                }
            }
            self.record_batch(done);
            if let Some(t0) = t_exec {
                let exec_ns = t0.elapsed().as_nanos() as u64;
                self.host.times.execute_ns += exec_ns;
                if sampled {
                    self.host.times.push_slice(HostRoundSlice {
                        start_ns: exec_start_ns.unwrap_or(0),
                        tick: self.now.tick(),
                        events: done,
                        execute_ns: exec_ns,
                        fold_ns: 0,
                        exchange_ns: 0,
                    });
                }
            }
            if let Some(board) = &self.progress_board {
                board.record_events(0, self.events_executed);
                board.record_tick(self.now.tick());
                board.add_round();
            }
            if progress {
                self.last_progress = self.now.tick();
                progress = false;
            }
            if let Some(t) = &mut self.trace {
                flush_trace(&mut t.buffer, &mut scratch);
            }
        };
        // Records made by events that did execute survive an abort.
        if let Some(t) = &mut self.trace {
            flush_trace(&mut t.buffer, &mut scratch);
        }
        self.batch = batch;
        self.trace_scratch = scratch;
        RunStats {
            events_executed: self.events_executed - start_events,
            end_time: self.now,
            queue_high_water: self.queue.high_water_mark(),
            total_enqueued: self.queue.total_enqueued(),
            wall: start.elapsed(),
            outcome,
        }
    }
}

impl<E: 'static> Engine<E> for SequentialEngine<E> {
    fn schedule(&mut self, target: ComponentId, time: Time, payload: E) {
        SequentialEngine::schedule(self, target, time, payload);
    }

    fn run_until(&mut self, tick_limit: Tick) -> RunStats {
        SequentialEngine::run_until(self, tick_limit)
    }

    fn now(&self) -> Time {
        self.now
    }

    fn num_components(&self) -> usize {
        self.components.len()
    }

    fn num_shards(&self) -> usize {
        1
    }

    fn component(&self, id: ComponentId) -> Option<&dyn Component<E>> {
        SequentialEngine::component(self, id)
    }

    fn component_dyn_mut(&mut self, id: ComponentId) -> Option<&mut dyn Component<E>> {
        self.components
            .get_mut(id.index())
            .and_then(|c| c.as_deref_mut())
    }

    fn shard_metrics(&self) -> Vec<EngineMetrics> {
        vec![self.metrics()]
    }

    fn events_executed(&self) -> u64 {
        self.events_executed
    }

    fn total_enqueued(&self) -> u64 {
        self.queue.total_enqueued()
    }

    fn set_watchdog(&mut self, window: Tick) {
        SequentialEngine::set_watchdog(self, window);
    }

    fn set_sampler(&mut self, interval: Tick) {
        SequentialEngine::set_sampler(self, interval);
    }

    fn set_trace(&mut self, spec: TraceSpec, capacity: usize) {
        SequentialEngine::set_trace(self, spec, capacity);
    }

    fn set_host_profiling(&mut self, sample: u32) {
        self.host.set_sample(sample);
        self.host.reset_epoch();
    }

    fn host_times(&self) -> Vec<HostShardTimes> {
        if self.host.enabled() {
            vec![self.host.times.clone()]
        } else {
            Vec::new()
        }
    }

    fn set_progress(&mut self, progress: Arc<ProgressShared>) {
        self.progress_board = Some(progress);
    }

    fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    fn trace_records(&self) -> Vec<TraceEvent> {
        self.trace
            .as_ref()
            .map(|t| t.buffer.records())
            .unwrap_or_default()
    }

    fn save_state(&self, out: &mut Vec<u8>) -> bool
    where
        E: crate::wire::WireCodec,
    {
        crate::snapshot::put_trace(out, self.trace.as_ref().map(|t| &t.buffer));
        crate::wire::put_varint(out, 1);
        let mut blob = Vec::new();
        crate::snapshot::save_shard(
            &mut blob,
            self.now,
            self.ext_seq,
            self.last_progress,
            self.events_executed,
            self.batches,
            &self.batch_counts,
            &self.queue,
            &self.components,
            &self.rngs,
            &self.seqs,
        );
        crate::wire::put_bytes(out, &blob);
        true
    }

    fn load_state(&mut self, buf: &mut &[u8]) -> bool
    where
        E: crate::wire::WireCodec,
    {
        let mut inner = || -> Option<()> {
            crate::snapshot::get_trace(buf, self.trace.as_mut().map(|t| &mut t.buffer))?;
            if crate::wire::get_varint(buf)? != 1 {
                return None; // shard-count mismatch: not a sequential state
            }
            let mut blob = crate::wire::get_bytes(buf)?;
            let s = crate::snapshot::load_shard(
                &mut blob,
                &mut self.queue,
                &mut self.components,
                &mut self.rngs,
                &mut self.seqs,
            )?;
            if !blob.is_empty() {
                return None;
            }
            self.now = s.now;
            self.ext_seq = s.ext_seq;
            self.last_progress = s.last_progress;
            self.events_executed = s.events_executed;
            self.batches = s.batches;
            self.batch_counts = s.batch_counts;
            Some(())
        };
        inner().is_some()
    }
}

impl<E> fmt::Debug for SequentialEngine<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SequentialEngine")
            .field("components", &self.components.len())
            .field("pending_events", &self.queue.len())
            .field("now", &self.now)
            .field("events_executed", &self.events_executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    #[derive(Debug, Clone, PartialEq)]
    enum Ev {
        Ping(u32),
        Stop,
        Fail,
    }

    struct Echo {
        peer: Option<ComponentId>,
        received: Vec<u32>,
        limit: u32,
    }

    impl Component<Ev> for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
            match event {
                Ev::Ping(n) => {
                    self.received.push(n);
                    if n < self.limit {
                        if let Some(peer) = self.peer {
                            ctx.schedule(peer, ctx.now().plus_ticks(2), Ev::Ping(n + 1));
                        }
                    }
                }
                Ev::Stop => ctx.stop(),
                Ev::Fail => ctx.fail("synthetic failure"),
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn echo_pair(limit: u32) -> (Simulator<Ev>, ComponentId, ComponentId) {
        let mut sim = Simulator::new(1);
        let a = sim.add_component(Box::new(Echo {
            peer: None,
            received: vec![],
            limit,
        }));
        let b = sim.add_component(Box::new(Echo {
            peer: Some(a),
            received: vec![],
            limit,
        }));
        sim.component_as_mut::<Echo>(a).unwrap().peer = Some(b);
        (sim, a, b)
    }

    #[test]
    fn ping_pong_until_drained() {
        let (mut sim, a, b) = echo_pair(5);
        sim.schedule(a, Time::at(0), Ev::Ping(0));
        let stats = sim.run();
        assert_eq!(stats.outcome, RunOutcome::Drained);
        assert_eq!(stats.events_executed, 6);
        assert_eq!(sim.component_as::<Echo>(a).unwrap().received, vec![0, 2, 4]);
        assert_eq!(sim.component_as::<Echo>(b).unwrap().received, vec![1, 3, 5]);
        assert_eq!(sim.now(), Time::at(10));
    }

    #[test]
    fn stop_leaves_queue_pending() {
        let (mut sim, a, _) = echo_pair(100);
        sim.schedule(a, Time::at(0), Ev::Ping(0));
        sim.schedule(a, Time::at(3), Ev::Stop);
        let stats = sim.run();
        assert_eq!(stats.outcome, RunOutcome::Stopped);
        // The in-flight ping to the peer is still pending.
        let resumed = sim.run();
        assert_eq!(resumed.outcome, RunOutcome::Drained);
    }

    #[test]
    fn failure_is_surfaced() {
        let (mut sim, a, _) = echo_pair(1);
        sim.schedule(a, Time::at(0), Ev::Fail);
        let stats = sim.run();
        assert_eq!(
            stats.outcome,
            RunOutcome::Failed("synthetic failure".into())
        );
    }

    #[test]
    fn tick_limit_pauses_and_resumes() {
        let (mut sim, a, b) = echo_pair(50);
        sim.schedule(a, Time::at(0), Ev::Ping(0));
        let stats = sim.run_until(10);
        assert_eq!(stats.outcome, RunOutcome::TickLimit);
        assert!(sim.now().tick() <= 10);
        let stats = sim.run();
        assert_eq!(stats.outcome, RunOutcome::Drained);
        let total = sim.component_as::<Echo>(a).unwrap().received.len()
            + sim.component_as::<Echo>(b).unwrap().received.len();
        assert_eq!(total, 51);
    }

    #[test]
    fn unknown_target_fails() {
        let mut sim: Simulator<Ev> = Simulator::new(0);
        sim.schedule(ComponentId::from_index(9), Time::at(0), Ev::Stop);
        let stats = sim.run();
        assert!(matches!(stats.outcome, RunOutcome::Failed(_)));
    }

    /// A component that records one draw from its private stream.
    struct Drawer {
        drawn: Vec<u64>,
    }

    impl Component<Ev> for Drawer {
        fn name(&self) -> &str {
            "drawer"
        }
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, _event: Ev) {
            let v = ctx.rng().gen_u64();
            self.drawn.push(v);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn per_component_rng_streams_are_deterministic() {
        let run = |seed: u64| {
            let mut sim = Simulator::<Ev>::new(seed);
            let a = sim.add_component(Box::new(Drawer { drawn: vec![] }));
            let b = sim.add_component(Box::new(Drawer { drawn: vec![] }));
            // b runs before a: execution order must not affect streams.
            sim.schedule(b, Time::at(0), Ev::Ping(0));
            sim.schedule(a, Time::at(1), Ev::Ping(0));
            sim.run();
            (
                sim.component_as::<Drawer>(a).unwrap().drawn.clone(),
                sim.component_as::<Drawer>(b).unwrap().drawn.clone(),
            )
        };
        let (a1, b1) = run(42);
        let (a2, b2) = run(42);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_ne!(a1, b1, "components must own unrelated streams");
        // The stream is a pure function of (seed, index), matching
        // Rng::stream directly.
        assert_eq!(a1[0], Rng::stream(42, 0).gen_u64());
        assert_eq!(b1[0], Rng::stream(42, 1).gen_u64());
        let (a3, _) = run(43);
        assert_ne!(a1, a3, "stream ignored the seed");
    }

    #[test]
    fn batch_metrics_account_every_event_once() {
        let (mut sim, a, _) = echo_pair(9);
        sim.schedule(a, Time::at(0), Ev::Ping(0));
        let stats = sim.run();
        assert_eq!(stats.outcome, RunOutcome::Drained);
        let m = sim.metrics();
        assert_eq!(m.events_executed, stats.events_executed);
        assert_eq!(m.batch_counts.iter().sum::<u64>(), m.batches);
        // Ping-pong runs one event per (tick, epsilon): all batches size 1.
        assert_eq!(m.batches, m.events_executed);
        assert_eq!(m.batch_counts[1], m.batches, "size-1 batches fill bucket 1");
        assert_eq!(m.total_enqueued, stats.total_enqueued);
        assert_eq!(m.queue_len, 0);
    }

    #[test]
    fn aborted_batch_still_counts_executed_events() {
        let mut sim = Simulator::new(7);
        let a = sim.add_component(Box::new(Echo {
            peer: None,
            received: vec![],
            limit: 0,
        }));
        // Three same-time events; the second stops the run mid-batch.
        sim.schedule(a, Time::at(1), Ev::Ping(0));
        sim.schedule(a, Time::at(1), Ev::Stop);
        sim.schedule(a, Time::at(1), Ev::Ping(1));
        let stats = sim.run();
        assert_eq!(stats.outcome, RunOutcome::Stopped);
        assert_eq!(stats.events_executed, 2);
        let m = sim.metrics();
        assert_eq!(m.events_executed, 2);
        assert_eq!(m.batches, 1);
        assert_eq!(m.batch_counts[2], 1, "partial batch of 2 lands in bucket 2");
        assert_eq!(m.queue_len, 1, "unexecuted remainder stays pending");
    }

    #[test]
    fn stats_report_throughput() {
        let (mut sim, a, _) = echo_pair(3);
        sim.schedule(a, Time::at(0), Ev::Ping(0));
        let stats = sim.run();
        assert!(stats.events_per_second() >= 0.0);
        assert_eq!(stats.total_enqueued, 4);
        assert!(stats.queue_high_water >= 1);
    }

    /// A component that traces every event it handles.
    struct TracerComp;

    impl Component<Ev> for TracerComp {
        fn name(&self) -> &str {
            "tracer"
        }
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
            if let Ev::Ping(n) = event {
                ctx.trace(0, ctx.self_id().index() as u32, n as u64, 0);
                ctx.trace(1, ctx.self_id().index() as u32, n as u64, 1);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn context_trace_collects_through_spec() {
        let mut sim = Simulator::new(0);
        let a = sim.add_component(Box::new(TracerComp));
        sim.set_trace(
            TraceSpec {
                kinds: 0b01, // kind 0 only
                ..TraceSpec::default()
            },
            16,
        );
        sim.schedule(a, Time::at(1), Ev::Ping(7));
        sim.schedule(a, Time::at(2), Ev::Ping(8));
        sim.run();
        let recs = Engine::trace_records(&sim);
        assert_eq!(recs.len(), 2, "kind-1 records filtered out");
        assert_eq!(recs[0].id, 7);
        assert_eq!(recs[1].id, 8);
        assert_eq!(recs[0].kind, 0);
        assert_eq!(recs[0].time, Time::at(1));
    }

    /// Self-schedules every `step` ticks for `count` rounds, reporting
    /// progress only when `productive`.
    struct Stepper {
        step: Tick,
        count: u32,
        productive: bool,
    }

    impl Component<Ev> for Stepper {
        fn name(&self) -> &str {
            "stepper"
        }
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, _event: Ev) {
            if self.productive {
                ctx.progress();
            }
            if self.count > 0 {
                self.count -= 1;
                ctx.schedule_self(ctx.now().plus_ticks(self.step), Ev::Ping(0));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn watchdog_trips_on_unproductive_churn() {
        let mut sim = Simulator::new(0);
        let a = sim.add_component(Box::new(Stepper {
            step: 5,
            count: 1000,
            productive: false,
        }));
        sim.set_watchdog(20);
        sim.schedule(a, Time::at(0), Ev::Ping(0));
        let stats = sim.run();
        assert_eq!(stats.outcome, RunOutcome::Watchdog { last_progress: 0 });
        assert!(!stats.outcome.is_ok());
        // The pending queue survives for diagnostics.
        assert!(sim.metrics().queue_len > 0);
        // The trip is prompt: the first event past the window breaks.
        assert!(sim.now().tick() <= 25);
    }

    #[test]
    fn watchdog_resets_on_progress() {
        let mut sim = Simulator::new(0);
        let a = sim.add_component(Box::new(Stepper {
            step: 5,
            count: 50,
            productive: true,
        }));
        sim.set_watchdog(20);
        sim.schedule(a, Time::at(0), Ev::Ping(0));
        let stats = sim.run();
        assert_eq!(stats.outcome, RunOutcome::Drained);
    }

    #[test]
    fn disarmed_watchdog_never_fires() {
        let mut sim = Simulator::new(0);
        let a = sim.add_component(Box::new(Stepper {
            step: 50,
            count: 10,
            productive: false,
        }));
        sim.schedule(a, Time::at(0), Ev::Ping(0));
        assert_eq!(sim.run().outcome, RunOutcome::Drained);
    }

    #[test]
    fn watchdog_defers_to_tick_limit() {
        // Events beyond the tick limit must not trip the watchdog: the
        // run pauses as TickLimit exactly as without one.
        let mut sim = Simulator::new(0);
        let a = sim.add_component(Box::new(Stepper {
            step: 100,
            count: 5,
            productive: false,
        }));
        sim.set_watchdog(30);
        sim.schedule(a, Time::at(0), Ev::Ping(0));
        let stats = sim.run_until(50);
        assert_eq!(stats.outcome, RunOutcome::TickLimit);
    }

    #[test]
    fn engine_trait_object_runs_and_downcasts() {
        let (sim, a, _) = echo_pair(5);
        let mut engine: Box<dyn Engine<Ev>> = Box::new(sim);
        engine.schedule(a, Time::at(0), Ev::Ping(0));
        let stats = engine.run();
        assert_eq!(stats.outcome, RunOutcome::Drained);
        assert_eq!(engine.num_shards(), 1);
        assert_eq!(engine.events_executed(), 6);
        let echo = engine
            .as_ref()
            .component_as::<Echo>(a)
            .expect("downcast through dyn Engine");
        assert_eq!(echo.received, vec![0, 2, 4]);
    }
}
