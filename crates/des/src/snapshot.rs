//! Shard-state snapshot encoding shared by every engine backend.
//!
//! A *shard blob* is the complete dynamic state of one executor shard at
//! a quiescent point (paused between generations): its clock, pending
//! events, per-component RNG streams and send counters, per-component
//! model snapshots, and the lifetime counters that feed the engine
//! metrics plane. The sequential engine is one shard; the thread-sharded
//! engine writes one blob per shard; each worker process writes the blob
//! for the shard it owns. Keeping the layout identical across backends
//! means a checkpoint file always reads as "N shards paused at tick T"
//! regardless of which transport produced it.
//!
//! Encoding uses the LEB128 wire plane ([`crate::wire`]) and is a pure
//! function of the state; decoding is total (`None` on malformed input,
//! never a panic) and *strict* — every nested section must be consumed
//! exactly, so drift between a component's `snapshot` and `restore` is
//! caught at decode time instead of corrupting the resumed run.

use crate::component::Component;
use crate::engine::{EventStamp, Stamped, BATCH_BUCKETS};
use crate::event::EventQueue;
use crate::rng::Rng;
use crate::time::{Tick, Time};
use crate::wire::{self, WireCodec};

/// The scalar half of a shard blob, returned by [`load_shard`] for the
/// caller to fold into its own fields.
pub(crate) struct ShardScalars {
    pub now: Time,
    pub ext_seq: u64,
    pub last_progress: Tick,
    pub events_executed: u64,
    pub batches: u64,
    pub batch_counts: [u64; BATCH_BUCKETS],
}

/// Serializes one shard's dynamic state into `out`.
///
/// `components` is the full-length component table; exactly the `Some`
/// entries (the ones this shard owns) are captured, keyed by component
/// index, together with their RNG stream and send counter.
#[allow(clippy::too_many_arguments)]
pub(crate) fn save_shard<E: WireCodec + 'static>(
    out: &mut Vec<u8>,
    now: Time,
    ext_seq: u64,
    last_progress: Tick,
    events_executed: u64,
    batches: u64,
    batch_counts: &[u64; BATCH_BUCKETS],
    queue: &EventQueue<Stamped<E>>,
    components: &[Option<Box<dyn Component<E>>>],
    rngs: &[Rng],
    seqs: &[u64],
) {
    now.encode(out);
    wire::put_varint(out, ext_seq);
    wire::put_varint(out, last_progress);
    wire::put_varint(out, events_executed);
    wire::put_varint(out, batches);
    for &c in batch_counts {
        wire::put_varint(out, c);
    }
    let mut qbuf = Vec::new();
    queue.save(&mut qbuf, |s, o| {
        s.stamp.encode(o);
        s.payload.encode(o);
    });
    wire::put_bytes(out, &qbuf);
    let owned = components.iter().filter(|c| c.is_some()).count();
    wire::put_varint(out, owned as u64);
    let mut cbuf = Vec::new();
    for (i, slot) in components.iter().enumerate() {
        let Some(c) = slot.as_deref() else { continue };
        wire::put_varint(out, i as u64);
        rngs[i].encode(out);
        wire::put_varint(out, seqs[i]);
        cbuf.clear();
        c.snapshot(&mut cbuf);
        wire::put_bytes(out, &cbuf);
    }
}

/// Overlays a shard blob onto a freshly built shard: replaces the queue,
/// restores every captured component (which must be owned here too), and
/// returns the scalar state for the caller to apply. Total and strict —
/// `None` on malformed input, unknown component indices, ownership
/// mismatches, or any nested section not consumed exactly.
pub(crate) fn load_shard<E: WireCodec + 'static>(
    buf: &mut &[u8],
    queue: &mut EventQueue<Stamped<E>>,
    components: &mut [Option<Box<dyn Component<E>>>],
    rngs: &mut [Rng],
    seqs: &mut [u64],
) -> Option<ShardScalars> {
    let now = Time::decode(buf)?;
    let ext_seq = wire::get_varint(buf)?;
    let last_progress = wire::get_varint(buf)?;
    let events_executed = wire::get_varint(buf)?;
    let batches = wire::get_varint(buf)?;
    let mut batch_counts = [0u64; BATCH_BUCKETS];
    for c in &mut batch_counts {
        *c = wire::get_varint(buf)?;
    }
    let mut qbytes = wire::get_bytes(buf)?;
    *queue = EventQueue::load(&mut qbytes, |b| {
        let stamp = EventStamp::decode(b)?;
        let payload = E::decode(b)?;
        Some(Stamped { stamp, payload })
    })?;
    if !qbytes.is_empty() {
        return None;
    }
    let owned = usize::try_from(wire::get_varint(buf)?).ok()?;
    if owned > components.len() {
        return None;
    }
    for _ in 0..owned {
        let i = usize::try_from(wire::get_varint(buf)?).ok()?;
        let rng = Rng::decode(buf)?;
        let seq = wire::get_varint(buf)?;
        let mut cbytes = wire::get_bytes(buf)?;
        let c = components.get_mut(i)?.as_deref_mut()?;
        c.restore(&mut cbytes)?;
        if !cbytes.is_empty() {
            return None;
        }
        *rngs.get_mut(i)? = rng;
        *seqs.get_mut(i)? = seq;
    }
    Some(ShardScalars {
        now,
        ext_seq,
        last_progress,
        events_executed,
        batches,
        batch_counts,
    })
}

/// Serializes the engine-level wrapper around shard blobs: the optional
/// trace ring followed by the shard count and each shard's blob. Every
/// backend's [`Engine::save_state`](crate::Engine::save_state) writes
/// this layout, so a checkpoint file parses identically whichever
/// transport produced it.
pub(crate) fn put_trace(out: &mut Vec<u8>, buffer: Option<&crate::trace::TraceBuffer>) {
    match buffer {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            let mut tb = Vec::new();
            b.save(&mut tb);
            wire::put_bytes(out, &tb);
        }
    }
}

/// Restores the optional trace ring written by [`put_trace`] into a
/// rebuilt engine's buffer. The armed/disarmed state must match the
/// snapshot (both come from the same configuration).
pub(crate) fn get_trace(
    buf: &mut &[u8],
    buffer: Option<&mut crate::trace::TraceBuffer>,
) -> Option<()> {
    match (wire::get_u8(buf)?, buffer) {
        (0, None) => Some(()),
        (1, Some(b)) => {
            let mut tb = wire::get_bytes(buf)?;
            b.load(&mut tb)?;
            if !tb.is_empty() {
                return None;
            }
            Some(())
        }
        _ => None,
    }
}
