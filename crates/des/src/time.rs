//! Hierarchical simulation time: ticks and epsilons (paper §III-B).
//!
//! *Ticks* represent real time; the user decides what one tick means (e.g.
//! 1 ns, 457 ps, or one clock cycle). *Epsilons* order operations performed
//! within a single tick and do **not** represent real time. Ordering compares
//! the tick first; epsilons only break ties between events at the same tick.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Absolute simulation time in ticks.
pub type Tick = u64;

/// Intra-tick ordering value.
pub type Epsilon = u8;

/// A point in simulation time: a `(tick, epsilon)` pair.
///
/// `Time` is totally ordered: lower ticks always come first regardless of
/// epsilon; equal ticks are ordered by epsilon.
///
/// # Example
///
/// ```
/// use supersim_des::Time;
///
/// let a = Time::new(10, 2);
/// let b = Time::new(11, 0);
/// assert!(a < b); // tick dominates epsilon
/// assert!(Time::new(10, 0) < a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time {
    tick: Tick,
    epsilon: Epsilon,
}

impl Time {
    /// The zero of time: tick 0, epsilon 0.
    pub const ZERO: Time = Time {
        tick: 0,
        epsilon: 0,
    };

    /// Creates a time at the given tick and epsilon.
    #[inline]
    pub const fn new(tick: Tick, epsilon: Epsilon) -> Self {
        Time { tick, epsilon }
    }

    /// Creates a time at the given tick with epsilon 0.
    #[inline]
    pub const fn at(tick: Tick) -> Self {
        Time { tick, epsilon: 0 }
    }

    /// The tick component of this time.
    #[inline]
    pub const fn tick(self) -> Tick {
        self.tick
    }

    /// The epsilon component of this time.
    #[inline]
    pub const fn epsilon(self) -> Epsilon {
        self.epsilon
    }

    /// Returns this time advanced by `ticks` ticks, with epsilon reset to 0.
    ///
    /// Epsilons are meaningful only within one tick, so moving to a new tick
    /// restarts intra-tick ordering.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on tick overflow.
    #[inline]
    pub fn plus_ticks(self, ticks: Tick) -> Self {
        Time {
            tick: self.tick + ticks,
            epsilon: 0,
        }
    }

    /// Returns this time with the epsilon advanced by one.
    ///
    /// # Panics
    ///
    /// Panics if the epsilon would exceed [`Epsilon::MAX`]; an epsilon chain
    /// that long indicates a runaway intra-tick loop in a component model.
    #[inline]
    pub fn next_epsilon(self) -> Self {
        Time {
            tick: self.tick,
            epsilon: self
                .epsilon
                .checked_add(1)
                .expect("epsilon overflow: runaway intra-tick event chain"),
        }
    }

    /// Returns this time with the given epsilon.
    #[inline]
    pub fn with_epsilon(self, epsilon: Epsilon) -> Self {
        Time {
            tick: self.tick,
            epsilon,
        }
    }
}

impl From<Tick> for Time {
    fn from(tick: Tick) -> Self {
        Time::at(tick)
    }
}

impl Add<Tick> for Time {
    type Output = Time;

    fn add(self, rhs: Tick) -> Time {
        self.plus_ticks(rhs)
    }
}

impl AddAssign<Tick> for Time {
    fn add_assign(&mut self, rhs: Tick) {
        *self = self.plus_ticks(rhs);
    }
}

impl Sub<Time> for Time {
    type Output = Tick;

    /// Whole-tick distance between two times. Epsilons are ignored because
    /// they do not represent real time.
    fn sub(self, rhs: Time) -> Tick {
        self.tick - rhs.tick
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.tick, self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_tick_dominates() {
        assert!(Time::new(1, 200) < Time::new(2, 0));
        assert!(Time::new(2, 0) < Time::new(2, 1));
        assert_eq!(Time::new(3, 3), Time::new(3, 3));
    }

    #[test]
    fn plus_ticks_resets_epsilon() {
        let t = Time::new(5, 7).plus_ticks(3);
        assert_eq!(t.tick(), 8);
        assert_eq!(t.epsilon(), 0);
    }

    #[test]
    fn next_epsilon_keeps_tick() {
        let t = Time::new(5, 7).next_epsilon();
        assert_eq!(t, Time::new(5, 8));
    }

    #[test]
    #[should_panic(expected = "epsilon overflow")]
    fn epsilon_overflow_panics() {
        let _ = Time::new(0, Epsilon::MAX).next_epsilon();
    }

    #[test]
    fn display_format() {
        assert_eq!(Time::new(42, 3).to_string(), "42.3");
    }

    #[test]
    fn arithmetic_ops() {
        let mut t = Time::at(10);
        t += 5;
        assert_eq!(t.tick(), 15);
        assert_eq!(t - Time::at(4), 11);
        assert_eq!(Time::at(7) + 3, Time::at(10));
    }

    #[test]
    fn from_tick() {
        let t: Time = 9u64.into();
        assert_eq!(t, Time::new(9, 0));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Time::default(), Time::ZERO);
    }
}
