//! Shard transports: how generation-lockstep shards synchronize.
//!
//! The round protocol itself (peek → fold → execute → exchange) lives in
//! [`protocol`](crate::protocol) and is written once against the
//! crate-internal `ShardTransport` trait defined here. A transport only
//! answers two questions per round:
//!
//! * **fold** — given every shard's queue-head time and last-progress
//!   tick, what are the global minimum head `m` and the global maximum
//!   progress? Every shard receives the identical answer, which makes
//!   all halt decisions (drained / tick limit / watchdog) unanimous
//!   without a coordinator vote.
//! * **exchange** — ship this round's cross-shard events, trace records,
//!   and stop/failure flags; deliver the inboxes from every other shard
//!   **in sender order**; report the globally agreed stop/failure state.
//!
//! Two backends implement this:
//!
//! * [`ThreadTransport`] — the original in-process backend: shards are
//!   threads sharing spin barriers and mutex-guarded outboxes. Zero
//!   copies beyond the event values themselves.
//! * [`ProcessTransport`] — each shard is its own OS process (a
//!   *worker*), connected over a Unix socket to a parent [`Hub`] that
//!   performs the fold and relays outbox bytes. Payloads cross the wire
//!   in the [`wire`](crate::wire) format; the hub never decodes event
//!   payloads, only the framing, the trace records it must merge, and
//!   the end-of-run summary.
//!
//! Both backends preserve the determinism contract: the fold values and
//! the sender-ordered delivery are identical, so a run is byte-identical
//! across backends and shard counts.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::component::ComponentId;
use crate::engine::{flush_trace, EventStamp, Stamped, TaggedTrace};
use crate::time::{Tick, Time};
use crate::trace::TraceBuffer;

#[cfg(unix)]
pub use process::{Hub, HubHostStats, HubResult, ProcessTransport, WorkerLink, WorkerSetup};

/// Why a transport operation failed. Only the process backend can fail;
/// the in-process backend panics on programming errors instead.
#[derive(Debug)]
pub enum TransportError {
    /// The underlying socket failed (peer died, timed out, or the
    /// connection broke).
    Io(std::io::Error),
    /// The peer sent a frame that violates the round protocol.
    Protocol(String),
    /// The hub aborted the run (another worker failed).
    Aborted,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport i/o: {e}"),
            TransportError::Protocol(msg) => write!(f, "transport protocol violation: {msg}"),
            TransportError::Aborted => write!(f, "run aborted by the hub"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// The identical fold result every shard observes for one round.
pub(crate) struct RoundFold {
    /// Global minimum queue-head time; `None` when every queue is empty.
    pub m: Option<Time>,
    /// Global maximum last-progress tick.
    pub global_progress: Tick,
}

/// The globally agreed end-of-round state.
pub(crate) struct RoundEnd {
    /// Some shard requested an orderly stop this round.
    pub stopped: bool,
    /// The smallest-stamp failure reported this round, if any.
    pub failure: Option<String>,
}

/// What one shard ships at the end of a round.
pub(crate) struct RoundOut<'a, E> {
    /// Per-destination-shard events scheduled this round. Drained by the
    /// transport; capacity is retained for reuse.
    pub outboxes: &'a mut [Vec<(ComponentId, Time, Stamped<E>)>],
    /// Trace records made this round, stamp-tagged for the merge.
    pub traces: &'a mut Vec<TaggedTrace>,
    /// This shard requested an orderly stop.
    pub stop: bool,
    /// This shard's smallest-stamp failure this round.
    pub failure: Option<(EventStamp, String)>,
    /// Events executed locally this round. Strictly informational: the
    /// process transport trails it on the EXCH frame so the hub can feed
    /// the live-progress heartbeat; it never influences what the
    /// transport delivers back. The thread transport ignores it.
    pub events: u64,
}

/// One synchronization backend for the generation-lockstep protocol. See
/// the [module docs](self) for the contract.
pub(crate) trait ShardTransport<E> {
    /// Publishes this shard's queue head and progress tick; returns the
    /// global fold. Blocks until every shard has contributed.
    fn fold(&mut self, peek: Option<Time>, progress: Tick) -> Result<RoundFold, TransportError>;

    /// Ships `out`, then delivers every inbound event (sender order:
    /// shard 0's events first, then shard 1's, …) through `deliver`, and
    /// returns the agreed halt flags. Blocks until the round completes.
    fn exchange(
        &mut self,
        out: RoundOut<'_, E>,
        deliver: &mut dyn FnMut(ComponentId, Time, Stamped<E>),
    ) -> Result<RoundEnd, TransportError>;
}

// ---------------------------------------------------------------------------
// In-process (thread) backend
// ---------------------------------------------------------------------------

/// A sense-reversing spin barrier.
///
/// Rounds are as fine-grained as one generation (often a handful of
/// events), so parking threads on a mutex/condvar barrier would dominate
/// the run time. Threads spin briefly, then yield. The atomics form the
/// usual release/acquire chain, so writes made before a `wait` are
/// visible to every thread after it.
struct SpinBarrier {
    count: AtomicUsize,
    sense: AtomicBool,
    n: usize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier {
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            n,
        }
    }

    /// Blocks until all `n` threads arrive. `local_sense` is each
    /// thread's private phase flag. Panics (poisoning every waiter) if
    /// `poisoned` is raised — see [`PanicFence`].
    fn wait(&self, local_sense: &mut bool, poisoned: &AtomicBool) {
        *local_sense = !*local_sense;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Release);
            self.sense.store(*local_sense, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != *local_sense {
                if poisoned.load(Ordering::Acquire) {
                    panic!("a sibling shard thread panicked");
                }
                spins = spins.wrapping_add(1);
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Raises the poison flag if dropped during a panic, so sibling threads
/// spinning at a barrier abort instead of waiting forever.
pub(crate) struct PanicFence<'a> {
    poisoned: &'a AtomicBool,
    armed: bool,
}

impl<'a> PanicFence<'a> {
    /// Arms a fence against the shared poison flag.
    pub(crate) fn arm(poisoned: &'a AtomicBool) -> Self {
        PanicFence {
            poisoned,
            armed: true,
        }
    }

    /// Disarms on the clean exit path.
    pub(crate) fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for PanicFence<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.poisoned.store(true, Ordering::Release);
        }
    }
}

/// One pending cross-shard event: target, delivery time, stamped payload.
type OutboxEntry<E> = (ComponentId, Time, Stamped<E>);

/// State shared by every [`ThreadTransport`] endpoint of one run.
pub(crate) struct ThreadShared<E> {
    barrier: SpinBarrier,
    pub(crate) poisoned: AtomicBool,
    /// Per-shard published (queue head, last-progress tick).
    peeks: Vec<Mutex<(Option<Time>, Tick)>>,
    /// `outboxes[dst][src]`: receivers drain in sender order.
    outboxes: Vec<Vec<Mutex<Vec<OutboxEntry<E>>>>>,
    round_traces: Vec<Mutex<Vec<TaggedTrace>>>,
    stop_flag: AtomicBool,
    failure: Mutex<Option<(EventStamp, String)>>,
}

impl<E> ThreadShared<E> {
    pub(crate) fn new(n: usize, start_progress: Tick) -> Self {
        ThreadShared {
            barrier: SpinBarrier::new(n),
            poisoned: AtomicBool::new(false),
            peeks: (0..n).map(|_| Mutex::new((None, start_progress))).collect(),
            outboxes: (0..n)
                .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            round_traces: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            stop_flag: AtomicBool::new(false),
            failure: Mutex::new(None),
        }
    }
}

/// One shard thread's endpoint of the in-process backend.
pub(crate) struct ThreadTransport<'a, E> {
    shared: &'a ThreadShared<E>,
    s: usize,
    local_sense: bool,
    /// Only the first shard holds the trace ring and performs the merge.
    buffer: Option<&'a mut TraceBuffer>,
    merge_scratch: Vec<TaggedTrace>,
}

impl<'a, E> ThreadTransport<'a, E> {
    pub(crate) fn new(
        shared: &'a ThreadShared<E>,
        s: usize,
        buffer: Option<&'a mut TraceBuffer>,
    ) -> Self {
        ThreadTransport {
            shared,
            s,
            local_sense: false,
            buffer,
            merge_scratch: Vec::new(),
        }
    }
}

impl<E> ShardTransport<E> for ThreadTransport<'_, E> {
    fn fold(&mut self, peek: Option<Time>, progress: Tick) -> Result<RoundFold, TransportError> {
        let sh = self.shared;
        // Publish the local head time and the tick of this shard's last
        // productive generation, then wait for every sibling.
        *sh.peeks[self.s].lock().unwrap() = (peek, progress);
        sh.barrier.wait(&mut self.local_sense, &sh.poisoned);
        // Identical global-minimum (and global max-progress) computation
        // on every shard: same inputs, same result, no coordinator.
        let mut m: Option<Time> = None;
        let mut global_progress = progress;
        for p in &sh.peeks {
            let (v, lp) = *p.lock().unwrap();
            m = match (m, v) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            global_progress = global_progress.max(lp);
        }
        Ok(RoundFold { m, global_progress })
    }

    fn exchange(
        &mut self,
        out: RoundOut<'_, E>,
        deliver: &mut dyn FnMut(ComponentId, Time, Stamped<E>),
    ) -> Result<RoundEnd, TransportError> {
        let sh = self.shared;
        let s = self.s;
        // Smallest-stamp failure wins: the one the sequential engine
        // would have hit first.
        if let Some((stamp, msg)) = out.failure {
            let mut slot = sh.failure.lock().unwrap();
            if slot.as_ref().is_none_or(|(st, _)| stamp < *st) {
                *slot = Some((stamp, msg));
            }
        }
        if out.stop {
            sh.stop_flag.store(true, Ordering::Release);
        }
        // Ship remote events and this round's traces.
        for (dst, o) in out.outboxes.iter_mut().enumerate() {
            if !o.is_empty() {
                sh.outboxes[dst][s].lock().unwrap().append(o);
            }
        }
        if !out.traces.is_empty() {
            sh.round_traces[s].lock().unwrap().append(out.traces);
        }
        sh.barrier.wait(&mut self.local_sense, &sh.poisoned);

        // Merge traces (shard 0), deliver inboxes, observe halt flags —
        // all consistent because the flags were raised before the
        // barrier.
        if let Some(buffer) = self.buffer.as_deref_mut() {
            for rt in &sh.round_traces {
                self.merge_scratch.append(&mut rt.lock().unwrap());
            }
            self.merge_scratch
                .sort_unstable_by_key(|t| (t.stamp, t.recno));
            flush_trace(buffer, &mut self.merge_scratch);
        }
        for src in sh.outboxes[s].iter() {
            let mut v = std::mem::take(&mut *src.lock().unwrap());
            for (target, time, stamped) in v.drain(..) {
                deliver(target, time, stamped);
            }
            // Return the drained vector so its capacity is reused next
            // round instead of reallocated by the sender; safe because
            // the sender's next append is on the far side of the next
            // fold barrier.
            *src.lock().unwrap() = v;
        }
        let failure = sh
            .failure
            .lock()
            .unwrap()
            .as_ref()
            .map(|(_, msg)| msg.clone());
        let stopped = sh.stop_flag.load(Ordering::Acquire);
        Ok(RoundEnd { stopped, failure })
    }
}

// ---------------------------------------------------------------------------
// Multi-process (Unix socket) backend
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod process {
    use std::cell::RefCell;
    use std::io::{self, BufReader, BufWriter};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::rc::Rc;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use super::{RoundEnd, RoundFold, RoundOut, ShardTransport, TransportError};
    use crate::component::ComponentId;
    use crate::engine::{flush_trace, EngineMetrics, EventStamp, RunOutcome, Stamped, TaggedTrace};
    use crate::host::{HostShardTimes, ProgressShared};
    use crate::time::{Tick, Time};
    use crate::trace::TraceBuffer;
    use crate::wire::{
        get_bytes, get_str, get_u8, get_varint, put_bytes, put_str, put_varint, read_frame,
        write_frame, WireCodec,
    };

    /// Frame tags of the worker ↔ hub protocol, in handshake order.
    pub(crate) mod tag {
        pub const HELLO: u8 = 1;
        pub const SETUP: u8 = 2;
        pub const FOLD: u8 = 3;
        pub const FOLD_R: u8 = 4;
        pub const EXCH: u8 = 5;
        pub const EXCH_R: u8 = 6;
        pub const DONE: u8 = 7;
        pub const PARTIAL: u8 = 8;
        pub const ABORT: u8 = 9;
        pub const CKPT: u8 = 10;
    }

    fn proto_err<T>(msg: impl Into<String>) -> Result<T, TransportError> {
        Err(TransportError::Protocol(msg.into()))
    }

    /// Deliberate mid-run worker misbehavior for robustness tests,
    /// driven by the `SUPERSIM_TEST_WORKER_FAIL` environment variable:
    /// `"exit:<worker>:<round>"` makes that worker exit abruptly at that
    /// fold round, `"hang:<worker>:<round>"` makes it sleep forever.
    #[derive(Clone, Copy)]
    enum FailMode {
        Exit,
        Hang,
    }

    fn parse_fail_hook(my_index: u32) -> Option<(FailMode, u64)> {
        let spec = std::env::var("SUPERSIM_TEST_WORKER_FAIL").ok()?;
        let mut parts = spec.split(':');
        let mode = match parts.next()? {
            "exit" => FailMode::Exit,
            "hang" => FailMode::Hang,
            _ => return None,
        };
        let worker: u32 = parts.next()?.parse().ok()?;
        let round: u64 = parts.next()?.parse().ok()?;
        (worker == my_index).then_some((mode, round))
    }

    /// What the hub tells a worker right after the handshake.
    pub struct WorkerSetup {
        /// Total number of workers in the run.
        pub workers: u32,
        /// Socket read timeout both sides use, in milliseconds.
        pub timeout_ms: u64,
        /// Opaque application payload (e.g. the resolved configuration).
        pub payload: Vec<u8>,
    }

    /// A worker's endpoint of the process backend: one Unix socket to the
    /// parent [`Hub`].
    pub struct ProcessTransport {
        reader: BufReader<UnixStream>,
        writer: BufWriter<UnixStream>,
        my_index: u32,
        num_workers: u32,
        scratch: Vec<u8>,
        fail_hook: Option<(FailMode, u64)>,
        rounds: u64,
    }

    impl ProcessTransport {
        fn read_expect(&mut self, want: u8) -> Result<Vec<u8>, TransportError> {
            let (tag, body) = read_frame(&mut self.reader)?;
            if tag == tag::ABORT {
                return Err(TransportError::Aborted);
            }
            if tag != want {
                return proto_err(format!("expected frame tag {want}, got {tag}"));
            }
            Ok(body)
        }

        /// Sends the end-of-run summary: the locally decided outcome (the
        /// fold makes it identical on every worker), the final time and
        /// progress tick, this shard's executor metrics, and its host-time
        /// record (all-zero when profiling is disarmed). The DONE frame is
        /// end-of-run, so the host payload cannot influence delivery.
        pub fn finish(
            &mut self,
            outcome: &RunOutcome,
            local_now: Time,
            global_progress: Tick,
            metrics: &EngineMetrics,
            host: &HostShardTimes,
        ) -> Result<(), TransportError> {
            let mut body = Vec::new();
            outcome.encode(&mut body);
            local_now.encode(&mut body);
            put_varint(&mut body, global_progress);
            metrics.encode(&mut body);
            host.encode(&mut body);
            write_frame(&mut self.writer, tag::DONE, &body)?;
            Ok(())
        }

        /// Sends the opaque end-of-run partial (component statistics
        /// encoded by the layer above).
        pub fn send_partial(&mut self, payload: &[u8]) -> Result<(), TransportError> {
            write_frame(&mut self.writer, tag::PARTIAL, payload)?;
            Ok(())
        }

        /// Ships this shard's checkpoint blob for the boundary at `at`.
        /// Fire-and-forget: the worker resumes immediately; the hub
        /// collects one CKPT from every worker (the tick-limit pause is
        /// unanimous, so the frames arrive in lockstep) and assembles
        /// the checkpoint file.
        pub fn checkpoint(&mut self, at: Time, blob: &[u8]) -> Result<(), TransportError> {
            let mut body = Vec::new();
            at.encode(&mut body);
            put_bytes(&mut body, blob);
            write_frame(&mut self.writer, tag::CKPT, &body)?;
            Ok(())
        }

        /// Total workers in the run.
        pub fn num_workers(&self) -> u32 {
            self.num_workers
        }

        /// This worker's index.
        pub fn my_index(&self) -> u32 {
            self.my_index
        }
    }

    impl<E: WireCodec> ShardTransport<E> for ProcessTransport {
        fn fold(
            &mut self,
            peek: Option<Time>,
            progress: Tick,
        ) -> Result<RoundFold, TransportError> {
            if let Some((mode, round)) = self.fail_hook {
                if self.rounds == round {
                    match mode {
                        FailMode::Exit => std::process::exit(17),
                        FailMode::Hang => loop {
                            std::thread::sleep(Duration::from_secs(3600));
                        },
                    }
                }
            }
            self.rounds += 1;
            self.scratch.clear();
            let mut body = std::mem::take(&mut self.scratch);
            peek.encode(&mut body);
            put_varint(&mut body, progress);
            write_frame(&mut self.writer, tag::FOLD, &body)?;
            self.scratch = body;
            let reply = self.read_expect(tag::FOLD_R)?;
            let buf = &mut reply.as_slice();
            let (Some(m), Some(global_progress)) = (Option::<Time>::decode(buf), get_varint(buf))
            else {
                return proto_err("malformed FOLD_R");
            };
            Ok(RoundFold { m, global_progress })
        }

        fn exchange(
            &mut self,
            out: RoundOut<'_, E>,
            deliver: &mut dyn FnMut(ComponentId, Time, Stamped<E>),
        ) -> Result<RoundEnd, TransportError> {
            self.scratch.clear();
            let mut body = std::mem::take(&mut self.scratch);
            body.push(u8::from(out.stop));
            match &out.failure {
                None => body.push(0),
                Some((stamp, msg)) => {
                    body.push(1);
                    stamp.encode(&mut body);
                    put_str(&mut body, msg);
                }
            }
            out.traces.encode(&mut body);
            out.traces.clear();
            // One length-prefixed blob per destination shard; the blob
            // interior (count + events) is opaque to the hub, which only
            // concatenates blobs in sender order.
            let mut blob = Vec::new();
            for o in out.outboxes.iter_mut() {
                blob.clear();
                put_varint(&mut blob, o.len() as u64);
                for (target, time, stamped) in o.drain(..) {
                    put_varint(&mut blob, target.index() as u64);
                    time.encode(&mut blob);
                    stamped.stamp.encode(&mut blob);
                    stamped.payload.encode(&mut blob);
                }
                put_bytes(&mut body, &blob);
            }
            // Trailing, strictly informational: events executed this
            // round, feeding the hub's live-progress board. The hub
            // never copies it into any EXCH_R reply, so event delivery
            // is provably independent of it.
            put_varint(&mut body, out.events);
            write_frame(&mut self.writer, tag::EXCH, &body)?;
            self.scratch = body;

            let reply = self.read_expect(tag::EXCH_R)?;
            let buf = &mut reply.as_slice();
            let Some(stopped) = get_u8(buf) else {
                return proto_err("malformed EXCH_R");
            };
            let Some(failure) = Option::<String>::decode_with(buf, get_str) else {
                return proto_err("malformed EXCH_R failure");
            };
            // The inbox: one count-prefixed event list per source shard,
            // in sender order.
            for _src in 0..self.num_workers {
                let Some(count) = get_varint(buf) else {
                    return proto_err("malformed EXCH_R inbox");
                };
                for _ in 0..count {
                    let decoded = (|| {
                        let target = usize::try_from(get_varint(buf)?).ok()?;
                        let time = Time::decode(buf)?;
                        let stamp = EventStamp::decode(buf)?;
                        let payload = E::decode(buf)?;
                        Some((ComponentId::from_index(target), time, stamp, payload))
                    })();
                    let Some((target, time, stamp, payload)) = decoded else {
                        return proto_err("malformed EXCH_R event");
                    };
                    deliver(target, time, Stamped { stamp, payload });
                }
            }
            Ok(RoundEnd {
                stopped: stopped != 0,
                failure,
            })
        }
    }

    /// Helper: decode an `Option<T>` whose payload needs a custom reader.
    trait OptionDecodeExt: Sized {
        type Item;
        fn decode_with(
            buf: &mut &[u8],
            read: impl Fn(&mut &[u8]) -> Option<Self::Item>,
        ) -> Option<Self>;
    }

    impl<T> OptionDecodeExt for Option<T> {
        type Item = T;
        fn decode_with(buf: &mut &[u8], read: impl Fn(&mut &[u8]) -> Option<T>) -> Option<Self> {
            match get_u8(buf)? {
                0 => Some(None),
                1 => Some(Some(read(buf)?)),
                _ => None,
            }
        }
    }

    /// A cheaply clonable handle to a worker's [`ProcessTransport`].
    ///
    /// The engine owns the transport for the duration of a run (it drives
    /// fold/exchange rounds), but the process entry point still needs it
    /// afterwards to ship the end-of-run partial — hence the shared
    /// handle. Single-threaded by construction: one worker process, one
    /// socket.
    #[derive(Clone)]
    pub struct WorkerLink(pub(crate) Rc<RefCell<ProcessTransport>>);

    impl WorkerLink {
        /// Connects to the hub at `path`, introduces this worker by
        /// `index`, and waits for the hub's setup frame.
        pub fn connect(
            path: &str,
            index: u32,
        ) -> Result<(WorkerLink, WorkerSetup), TransportError> {
            let stream = UnixStream::connect(path)?;
            let writer = BufWriter::new(stream.try_clone()?);
            let mut transport = ProcessTransport {
                reader: BufReader::new(stream),
                writer,
                my_index: index,
                num_workers: 0,
                scratch: Vec::new(),
                fail_hook: parse_fail_hook(index),
                rounds: 0,
            };
            let mut hello = Vec::new();
            put_varint(&mut hello, u64::from(index));
            write_frame(&mut transport.writer, tag::HELLO, &hello)?;
            let body = transport.read_expect(tag::SETUP)?;
            let buf = &mut body.as_slice();
            let setup = (|| {
                let workers = u32::try_from(get_varint(buf)?).ok()?;
                let timeout_ms = get_varint(buf)?;
                let payload = get_bytes(buf)?.to_vec();
                Some(WorkerSetup {
                    workers,
                    timeout_ms,
                    payload,
                })
            })();
            let Some(setup) = setup else {
                return proto_err("malformed SETUP");
            };
            transport.num_workers = setup.workers;
            // A dead or wedged parent must not strand the worker: reads
            // time out with the same budget the hub uses.
            if setup.timeout_ms > 0 {
                transport
                    .reader
                    .get_ref()
                    .set_read_timeout(Some(Duration::from_millis(setup.timeout_ms)))?;
            }
            Ok((WorkerLink(Rc::new(RefCell::new(transport))), setup))
        }

        /// Sends the opaque end-of-run partial. Best-effort on an aborted
        /// run: the error is returned but the worker can still exit
        /// cleanly.
        pub fn send_partial(&self, payload: &[u8]) -> Result<(), TransportError> {
            self.0.borrow_mut().send_partial(payload)
        }
    }

    // -----------------------------------------------------------------
    // Hub (parent side)
    // -----------------------------------------------------------------

    struct HubConn {
        reader: BufReader<UnixStream>,
        writer: BufWriter<UnixStream>,
        alive: bool,
    }

    /// What the hub hands back when the run ends (or degrades).
    pub struct HubResult {
        /// The agreed run outcome (from the workers' DONE frames), or a
        /// synthesized failure when the run degraded.
        pub outcome: RunOutcome,
        /// Time of the last executed generation.
        pub end_time: Time,
        /// Tick of the last globally agreed progress report.
        pub last_progress: Tick,
        /// Per-worker executor metrics, in worker order. Empty when the
        /// run degraded before completion.
        pub metrics: Vec<EngineMetrics>,
        /// Per-worker host-time records from the DONE frames, in worker
        /// order (all-zero records when profiling was disarmed). Empty
        /// when the run degraded.
        pub host: Vec<HostShardTimes>,
        /// Hub-side wire and fold accounting for the run.
        pub hub_stats: HubHostStats,
        /// Per-worker opaque end-of-run partials, in worker order.
        /// `None` for workers that died before delivering one.
        pub partials: Vec<Option<Vec<u8>>>,
        /// `Some((worker, reason))` when a worker died or hung and the
        /// run was aborted; the remaining fields hold best-effort data.
        pub error: Option<(u32, String)>,
    }

    /// Hub-side host accounting: wire traffic per worker and the wall
    /// time the hub spent computing and broadcasting folds. Byte counts
    /// are always on (one add per frame); fold timing only when armed
    /// via [`Hub::set_host_profiling`].
    #[derive(Debug, Clone, Default)]
    pub struct HubHostStats {
        /// Rounds (FOLD frames) the hub relayed.
        pub rounds: u64,
        /// Wall time inside the hub's fold computation + broadcast, in
        /// nanoseconds (0 when profiling is disarmed).
        pub fold_ns: u64,
        /// Frame-body bytes received from each worker, in worker order.
        pub wire_in_bytes: Vec<u64>,
        /// Frame-body bytes sent to each worker, in worker order.
        pub wire_out_bytes: Vec<u64>,
    }

    /// A callback the parent installs to persist assembled checkpoint
    /// blobs: invoked with the boundary time and the uniform engine-state
    /// blob each time every worker ships a CKPT frame for one boundary.
    pub type CheckpointSink = Box<dyn FnMut(Time, &[u8])>;

    /// The parent-side relay of the process backend.
    ///
    /// The hub is payload-agnostic: it computes the per-round fold,
    /// concatenates outbox blobs in sender order, merges trace records,
    /// and folds stop/failure flags. It knows nothing about tick limits
    /// or watchdogs — every halt decision is taken worker-side from the
    /// identical fold values, so the workers halt unanimously and tell
    /// the hub via their DONE frames.
    pub struct Hub {
        conns: Vec<HubConn>,
        trace: Option<TraceBuffer>,
        merge_scratch: Vec<TaggedTrace>,
        checkpoint_sink: Option<CheckpointSink>,
        /// When set, the hub times its fold computation (host clock
        /// only — never feeds the protocol).
        host_profiling: bool,
        fold_ns: u64,
        rounds: u64,
        /// Frame-body bytes in/out per worker (always counted; a u64
        /// add per frame).
        wire_in: Vec<u64>,
        wire_out: Vec<u64>,
        /// Cumulative executed-event counts per worker, rebuilt from
        /// the informational deltas trailing each EXCH frame.
        events_cum: Vec<u64>,
        progress: Option<Arc<ProgressShared>>,
    }

    impl Hub {
        /// Accepts `n` worker connections on `listener`, orders them by
        /// their HELLO index, and sends each the setup frame. `timeout`
        /// bounds the whole accept phase and every later read.
        pub fn accept(
            listener: &UnixListener,
            n: u32,
            timeout: Duration,
            setup_payload: &[u8],
            trace_capacity: Option<usize>,
        ) -> Result<Hub, TransportError> {
            listener.set_nonblocking(true)?;
            let deadline = Instant::now() + timeout;
            let mut conns: Vec<Option<HubConn>> = (0..n).map(|_| None).collect();
            let mut connected = 0u32;
            while connected < n {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_read_timeout(Some(timeout))?;
                        let mut reader = BufReader::new(stream.try_clone()?);
                        let (tag, body) = read_frame(&mut reader)?;
                        if tag != tag::HELLO {
                            return proto_err(format!("expected HELLO, got tag {tag}"));
                        }
                        let Some(index) = get_varint(&mut body.as_slice()) else {
                            return proto_err("malformed HELLO");
                        };
                        let idx = usize::try_from(index)
                            .ok()
                            .filter(|&i| i < n as usize)
                            .ok_or_else(|| {
                                TransportError::Protocol(format!(
                                    "worker index {index} out of range"
                                ))
                            })?;
                        if conns[idx].is_some() {
                            return proto_err(format!("duplicate worker index {idx}"));
                        }
                        conns[idx] = Some(HubConn {
                            writer: BufWriter::new(stream),
                            reader,
                            alive: true,
                        });
                        connected += 1;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if Instant::now() >= deadline {
                            return Err(TransportError::Io(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("only {connected}/{n} workers connected"),
                            )));
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => return Err(TransportError::Io(e)),
                }
            }
            let mut conns: Vec<HubConn> = conns.into_iter().map(|c| c.unwrap()).collect();
            let mut setup = Vec::new();
            put_varint(&mut setup, u64::from(n));
            put_varint(&mut setup, timeout.as_millis() as u64);
            put_bytes(&mut setup, setup_payload);
            for c in &mut conns {
                write_frame(&mut c.writer, tag::SETUP, &setup)?;
            }
            let n = conns.len();
            Ok(Hub {
                conns,
                trace: trace_capacity.map(TraceBuffer::with_capacity),
                merge_scratch: Vec::new(),
                checkpoint_sink: None,
                host_profiling: false,
                fold_ns: 0,
                rounds: 0,
                wire_in: vec![0; n],
                wire_out: vec![0; n],
                events_cum: vec![0; n],
                progress: None,
            })
        }

        /// Arms (or disarms) hub-side fold timing. Purely host-side
        /// observability: the wire protocol and every reply the hub
        /// sends are byte-identical either way.
        pub fn set_host_profiling(&mut self, on: bool) {
            self.host_profiling = on;
        }

        /// Installs a live-progress board the hub publishes to as
        /// rounds complete: the fold tick, round count, and per-worker
        /// cumulative executed events. Out-of-band — readers only.
        pub fn set_progress(&mut self, board: Arc<ProgressShared>) {
            self.progress = Some(board);
        }

        /// Hub-side wire/fold accounting accumulated so far.
        pub fn host_stats(&self) -> HubHostStats {
            HubHostStats {
                rounds: self.rounds,
                fold_ns: self.fold_ns,
                wire_in_bytes: self.wire_in.clone(),
                wire_out_bytes: self.wire_out.clone(),
            }
        }

        /// Installs the checkpoint sink: invoked with the boundary time
        /// and the assembled engine-state blob (trace section + shard
        /// blobs, the uniform layout every backend writes) each time all
        /// workers ship a CKPT frame for the same boundary. Without a
        /// sink, CKPT frames are folded and dropped.
        pub fn set_checkpoint_sink(&mut self, sink: CheckpointSink) {
            self.checkpoint_sink = Some(sink);
        }

        /// Restores the hub-side trace ring from a checkpoint's engine
        /// blob. Only the leading trace section is consumed — the shard
        /// blobs are each worker's concern. `false` on malformed input
        /// or an armed/disarmed mismatch. Must run before [`Hub::run`]:
        /// the ring otherwise replays post-checkpoint records the
        /// resumed run will produce again.
        pub fn load_trace(&mut self, buf: &mut &[u8]) -> bool {
            crate::snapshot::get_trace(buf, self.trace.as_mut()).is_some()
        }

        /// The merged trace records collected over the run (empty when
        /// tracing was not armed).
        pub fn trace_records(&self) -> Vec<crate::trace::TraceEvent> {
            self.trace.as_ref().map(|t| t.records()).unwrap_or_default()
        }

        /// Drives rounds until every worker reports DONE, then collects
        /// the per-worker partials. Never returns `Err` for a *worker*
        /// failure — that degrades into `HubResult::error` with
        /// best-effort partials — only for hub-side invariant
        /// violations.
        pub fn run(&mut self) -> HubResult {
            match self.run_rounds() {
                Ok(result) => result,
                Err((worker, reason)) => self.degrade(worker, reason),
            }
        }

        /// One worker's next frame, or `(index, reason)` on failure.
        fn read_from(&mut self, w: usize) -> Result<(u8, Vec<u8>), (u32, String)> {
            let frame = read_frame(&mut self.conns[w].reader).map_err(|e| {
                self.conns[w].alive = false;
                let reason = match e.kind() {
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                        "no frame within the timeout budget (worker hung?)".to_string()
                    }
                    io::ErrorKind::UnexpectedEof => "connection closed (worker died?)".to_string(),
                    _ => e.to_string(),
                };
                (w as u32, reason)
            })?;
            self.wire_in[w] += frame.1.len() as u64;
            Ok(frame)
        }

        fn send_to(&mut self, w: usize, tag: u8, body: &[u8]) -> Result<(), (u32, String)> {
            self.wire_out[w] += body.len() as u64;
            write_frame(&mut self.conns[w].writer, tag, body).map_err(|e| {
                self.conns[w].alive = false;
                (w as u32, e.to_string())
            })
        }

        fn run_rounds(&mut self) -> Result<HubResult, (u32, String)> {
            let n = self.conns.len();
            loop {
                // Workers act in lockstep: each round every worker sends
                // the same next tag, so frames can be read in worker
                // order without a poll loop.
                let mut frames = Vec::with_capacity(n);
                for w in 0..n {
                    frames.push(self.read_from(w)?);
                }
                let round_tag = frames[0].0;
                if let Some(w) = frames.iter().position(|(t, _)| *t != round_tag) {
                    return Err((
                        w as u32,
                        format!(
                            "protocol desync: expected tag {round_tag}, got {}",
                            frames[w].0
                        ),
                    ));
                }
                match round_tag {
                    tag::FOLD => self.round_fold(&frames)?,
                    tag::EXCH => self.round_exchange(frames)?,
                    tag::CKPT => self.round_checkpoint(&frames)?,
                    tag::DONE => return self.collect_done(frames),
                    other => {
                        return Err((0, format!("unexpected frame tag {other} mid-run")));
                    }
                }
            }
        }

        fn round_fold(&mut self, frames: &[(u8, Vec<u8>)]) -> Result<(), (u32, String)> {
            let t_fold = self.host_profiling.then(Instant::now);
            let mut m: Option<Time> = None;
            let mut global_progress: Tick = 0;
            for (w, (_, body)) in frames.iter().enumerate() {
                let buf = &mut body.as_slice();
                let (Some(peek), Some(progress)) = (Option::<Time>::decode(buf), get_varint(buf))
                else {
                    return Err((w as u32, "malformed FOLD".into()));
                };
                m = match (m, peek) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                global_progress = global_progress.max(progress);
            }
            let mut reply = Vec::new();
            m.encode(&mut reply);
            put_varint(&mut reply, global_progress);
            for w in 0..self.conns.len() {
                self.send_to(w, tag::FOLD_R, &reply)?;
            }
            self.rounds += 1;
            if let Some(t0) = t_fold {
                self.fold_ns += t0.elapsed().as_nanos() as u64;
            }
            if let Some(board) = &self.progress {
                if let Some(m) = m {
                    board.record_tick(m.tick());
                }
                board.add_round();
            }
            Ok(())
        }

        fn round_exchange(&mut self, frames: Vec<(u8, Vec<u8>)>) -> Result<(), (u32, String)> {
            let n = self.conns.len();
            let mut stopped = false;
            let mut failure: Option<(EventStamp, String)> = None;
            // blobs[src][dst]: the opaque (count + events) byte runs.
            let mut blobs: Vec<Vec<&[u8]>> = Vec::with_capacity(n);
            for (w, (_, body)) in frames.iter().enumerate() {
                let buf = &mut body.as_slice();
                let parsed = (|| {
                    let stop = get_u8(buf)?;
                    let fail = Option::<(EventStamp, String)>::decode_with(buf, |b| {
                        let stamp = EventStamp::decode(b)?;
                        let msg = get_str(b)?;
                        Some((stamp, msg))
                    })?;
                    let traces = Vec::<TaggedTrace>::decode(buf)?;
                    let mut dsts = Vec::with_capacity(n);
                    for _ in 0..n {
                        dsts.push(get_bytes(buf)?);
                    }
                    // Informational per-round executed-event delta,
                    // trailing so older payload parsers stay valid. It
                    // feeds the progress board only — never any reply.
                    let events = get_varint(buf).unwrap_or(0);
                    Some((stop, fail, traces, dsts, events))
                })();
                let Some((stop, fail, mut traces, dsts, events)) = parsed else {
                    return Err((w as u32, "malformed EXCH".into()));
                };
                self.events_cum[w] += events;
                if let Some(board) = &self.progress {
                    board.record_events(w, self.events_cum[w]);
                }
                stopped |= stop != 0;
                if let Some((stamp, msg)) = fail {
                    if failure.as_ref().is_none_or(|(st, _)| stamp < *st) {
                        failure = Some((stamp, msg));
                    }
                }
                self.merge_scratch.append(&mut traces);
                blobs.push(dsts);
            }
            // The same stamp-sorted per-round merge the thread backend's
            // first shard performs.
            if let Some(buffer) = self.trace.as_mut() {
                self.merge_scratch
                    .sort_unstable_by_key(|t| (t.stamp, t.recno));
                flush_trace(buffer, &mut self.merge_scratch);
            } else {
                self.merge_scratch.clear();
            }
            let failure_msg = failure.map(|(_, msg)| msg);
            let mut replies: Vec<Vec<u8>> = Vec::with_capacity(n);
            for dst in 0..n {
                let mut reply = Vec::new();
                reply.push(u8::from(stopped));
                match &failure_msg {
                    None => reply.push(0),
                    Some(msg) => {
                        reply.push(1);
                        put_str(&mut reply, msg);
                    }
                }
                for src_blobs in &blobs {
                    reply.extend_from_slice(src_blobs[dst]);
                }
                replies.push(reply);
            }
            for (w, reply) in replies.iter().enumerate() {
                self.send_to(w, tag::EXCH_R, reply)?;
            }
            Ok(())
        }

        /// Every worker paused at the same checkpoint boundary and
        /// shipped its shard blob. Assemble the uniform engine blob
        /// (hub-side trace ring + shard blobs in worker order) and hand
        /// it to the sink. No reply: workers resumed already.
        fn round_checkpoint(&mut self, frames: &[(u8, Vec<u8>)]) -> Result<(), (u32, String)> {
            let mut at: Option<Time> = None;
            let mut shard_blobs: Vec<&[u8]> = Vec::with_capacity(frames.len());
            for (w, (_, body)) in frames.iter().enumerate() {
                let buf = &mut body.as_slice();
                let parsed = (|| {
                    let t = Time::decode(buf)?;
                    let blob = get_bytes(buf)?;
                    Some((t, blob))
                })();
                let Some((t, blob)) = parsed else {
                    return Err((w as u32, "malformed CKPT".into()));
                };
                if *at.get_or_insert(t) != t {
                    return Err((w as u32, "workers disagreed on the checkpoint tick".into()));
                }
                shard_blobs.push(blob);
            }
            let Some(at) = at else { return Ok(()) };
            if let Some(sink) = self.checkpoint_sink.as_mut() {
                let mut engine = Vec::new();
                crate::snapshot::put_trace(&mut engine, self.trace.as_ref());
                put_varint(&mut engine, shard_blobs.len() as u64);
                for blob in shard_blobs {
                    put_bytes(&mut engine, blob);
                }
                sink(at, &engine);
            }
            Ok(())
        }

        fn collect_done(&mut self, frames: Vec<(u8, Vec<u8>)>) -> Result<HubResult, (u32, String)> {
            let mut outcome: Option<RunOutcome> = None;
            let mut end_time = Time::ZERO;
            let mut last_progress: Tick = 0;
            let mut metrics = Vec::with_capacity(frames.len());
            let mut host = Vec::with_capacity(frames.len());
            for (w, (_, body)) in frames.iter().enumerate() {
                let buf = &mut body.as_slice();
                let parsed = (|| {
                    let outcome = RunOutcome::decode(buf)?;
                    let now = Time::decode(buf)?;
                    let progress = get_varint(buf)?;
                    let m = EngineMetrics::decode(buf)?;
                    let h = HostShardTimes::decode(buf)?;
                    Some((outcome, now, progress, m, h))
                })();
                let Some((o, now, progress, m, h)) = parsed else {
                    return Err((w as u32, "malformed DONE".into()));
                };
                debug_assert!(
                    outcome.as_ref().is_none_or(|prev| *prev == o),
                    "workers disagreed on the run outcome"
                );
                outcome.get_or_insert(o);
                end_time = now;
                last_progress = progress;
                metrics.push(m);
                host.push(h);
            }
            let mut partials = Vec::with_capacity(self.conns.len());
            let mut error = None;
            for w in 0..self.conns.len() {
                match self.read_from(w) {
                    Ok((tag::PARTIAL, body)) => partials.push(Some(body)),
                    Ok((t, _)) => {
                        partials.push(None);
                        error.get_or_insert((w as u32, format!("expected PARTIAL, got tag {t}")));
                    }
                    Err((w, reason)) => {
                        partials.push(None);
                        error.get_or_insert((w, reason));
                    }
                }
            }
            Ok(HubResult {
                outcome: outcome.unwrap_or(RunOutcome::Drained),
                end_time,
                last_progress,
                metrics,
                host,
                hub_stats: self.host_stats(),
                partials,
                error,
            })
        }

        /// A worker died or hung: abort the survivors and collect
        /// whatever partials they can still deliver.
        fn degrade(&mut self, worker: u32, reason: String) -> HubResult {
            let n = self.conns.len();
            for w in 0..n {
                if self.conns[w].alive {
                    let _ = self.send_to(w, tag::ABORT, &[]);
                }
            }
            let mut partials: Vec<Option<Vec<u8>>> = Vec::with_capacity(n);
            for w in 0..n {
                if !self.conns[w].alive {
                    partials.push(None);
                    continue;
                }
                // The worker may still have pre-abort frames in flight
                // (its last FOLD/EXCH, or a DONE); skip to its PARTIAL.
                let mut found = None;
                for _ in 0..64 {
                    match self.read_from(w) {
                        Ok((tag::PARTIAL, body)) => {
                            found = Some(body);
                            break;
                        }
                        Ok(_) => continue,
                        Err(_) => break,
                    }
                }
                partials.push(found);
            }
            HubResult {
                outcome: RunOutcome::Failed(format!("worker {worker}: {reason}")),
                end_time: Time::ZERO,
                last_progress: 0,
                metrics: Vec::new(),
                host: Vec::new(),
                hub_stats: self.host_stats(),
                partials,
                error: Some((worker, reason)),
            }
        }
    }
}
