//! Compact in-tree wire format for the multi-process shard transport.
//!
//! The process backend of [`ShardTransport`](crate::transport) moves
//! per-round outboxes, trace records, and end-of-run metric partials
//! between worker processes and the parent hub over Unix sockets. This
//! module defines the three layers of that format, all hand-rolled so the
//! workspace stays free of registry dependencies:
//!
//! * **Varints** — unsigned LEB128 (7 bits per byte, high bit = continue).
//!   Every integer on the wire goes through [`put_varint`]/[`get_varint`]
//!   unless it is a fixed single byte.
//! * **Framing** — each message is `len: u32 LE` (length of everything
//!   after the length field) followed by `tag: u8` and an opaque body.
//!   [`write_frame`]/[`read_frame`] implement this over any
//!   `Write`/`Read`.
//! * **[`WireCodec`]** — a value-level encode/decode trait implemented for
//!   the engine's own vocabulary here and for the network event payload in
//!   `supersim-netbase`. Decoding is total: malformed input yields `None`,
//!   never a panic, so a corrupt or truncated peer cannot crash the hub.
//!
//! Determinism note: encoding is a pure function of the value (no maps,
//! no pointers, no padding), so identical values always produce identical
//! bytes — a prerequisite for the byte-identity tests that compare the
//! process transport against the sequential engine.

use std::io::{self, Read, Write};

use crate::engine::{EngineMetrics, EventStamp, RunOutcome, TaggedTrace, BATCH_BUCKETS};
use crate::time::Time;
use crate::trace::TraceEvent;

/// Upper bound on a single frame body, as a guard against a corrupt
/// length prefix allocating unbounded memory (64 MiB is far above any
/// legitimate round payload).
pub const MAX_FRAME_LEN: u32 = 64 << 20;

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

/// Appends `v` as an unsigned LEB128 varint.
#[inline]
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint, advancing `buf` past it. Returns
/// `None` on truncation or a value wider than 64 bits.
#[inline]
pub fn get_varint(buf: &mut &[u8]) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = buf.split_first()?;
        *buf = rest;
        if shift == 63 && byte > 1 {
            return None; // overflow past 64 bits
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Reads one byte, advancing `buf`.
#[inline]
pub fn get_u8(buf: &mut &[u8]) -> Option<u8> {
    let (&byte, rest) = buf.split_first()?;
    *buf = rest;
    Some(byte)
}

/// Appends a length-prefixed byte slice.
#[inline]
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Reads a length-prefixed byte slice, advancing `buf` past it.
#[inline]
pub fn get_bytes<'a>(buf: &mut &'a [u8]) -> Option<&'a [u8]> {
    let len = usize::try_from(get_varint(buf)?).ok()?;
    if buf.len() < len {
        return None;
    }
    let (head, rest) = buf.split_at(len);
    *buf = rest;
    Some(head)
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut &[u8]) -> Option<String> {
    let bytes = get_bytes(buf)?;
    String::from_utf8(bytes.to_vec()).ok()
}

/// Appends an `f64` as its raw IEEE-754 bit pattern (8 bytes LE). Bit
/// patterns round-trip exactly, so snapshotting float state preserves
/// byte-identity of anything later derived from it.
#[inline]
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Reads an `f64` written by [`put_f64`], advancing `buf` past it.
#[inline]
pub fn get_f64(buf: &mut &[u8]) -> Option<f64> {
    if buf.len() < 8 {
        return None;
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    Some(f64::from_bits(u64::from_le_bytes(head.try_into().ok()?)))
}

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3 polynomial, reflected) lookup table, built at
/// compile time so the checksum stays dependency-free.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE polynomial, the same checksum gzip uses).
/// Footers every checkpoint file so torn or bit-flipped recovery points
/// are rejected instead of silently resuming corrupt state.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one `len(u32 LE) | tag(u8) | body` frame and flushes.
pub fn write_frame<W: Write>(w: &mut W, tag: u8, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len() + 1)
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[tag])?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame, returning its tag and body. Fails with
/// `InvalidData` on a zero or oversized length prefix.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<(u8, Vec<u8>)> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let tag = body[0];
    body.remove(0);
    Ok((tag, body))
}

// ---------------------------------------------------------------------------
// WireCodec
// ---------------------------------------------------------------------------

/// Value-level wire encoding. Implementations must be pure functions of
/// the value so identical values encode to identical bytes, and `decode`
/// must reject malformed input with `None` rather than panicking.
pub trait WireCodec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value, advancing `buf` past it. `None` on malformed
    /// or truncated input.
    fn decode(buf: &mut &[u8]) -> Option<Self>;
}

impl WireCodec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, *self);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        get_varint(buf)
    }
}

impl WireCodec for Time {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.tick());
        out.push(self.epsilon());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let tick = get_varint(buf)?;
        let epsilon = get_u8(buf)?;
        Some(Time::new(tick, epsilon))
    }
}

impl WireCodec for EventStamp {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(self.src));
        put_varint(out, self.seq);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let src = u32::try_from(get_varint(buf)?).ok()?;
        let seq = get_varint(buf)?;
        Some(EventStamp { src, seq })
    }
}

impl WireCodec for TraceEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        self.time.encode(out);
        put_varint(out, u64::from(self.src));
        out.push(self.kind);
        put_varint(out, self.id);
        put_varint(out, u64::from(self.sub));
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let time = Time::decode(buf)?;
        let src = u32::try_from(get_varint(buf)?).ok()?;
        let kind = get_u8(buf)?;
        let id = get_varint(buf)?;
        let sub = u32::try_from(get_varint(buf)?).ok()?;
        Some(TraceEvent {
            time,
            src,
            kind,
            id,
            sub,
        })
    }
}

impl WireCodec for TaggedTrace {
    fn encode(&self, out: &mut Vec<u8>) {
        self.stamp.encode(out);
        put_varint(out, u64::from(self.recno));
        self.ev.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let stamp = EventStamp::decode(buf)?;
        let recno = u32::try_from(get_varint(buf)?).ok()?;
        let ev = TraceEvent::decode(buf)?;
        Some(TaggedTrace { stamp, recno, ev })
    }
}

impl WireCodec for EngineMetrics {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.events_executed);
        put_varint(out, self.batches);
        for &c in &self.batch_counts {
            put_varint(out, c);
        }
        put_varint(out, self.queue_len as u64);
        put_varint(out, self.queue_high_water as u64);
        put_varint(out, self.total_enqueued);
        put_varint(out, self.horizon as u64);
        put_varint(out, self.horizon_resizes);
        put_varint(out, self.overflow_spills);
        put_varint(out, self.overflow_len as u64);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let events_executed = get_varint(buf)?;
        let batches = get_varint(buf)?;
        let mut batch_counts = [0u64; BATCH_BUCKETS];
        for c in &mut batch_counts {
            *c = get_varint(buf)?;
        }
        let queue_len = usize::try_from(get_varint(buf)?).ok()?;
        let queue_high_water = usize::try_from(get_varint(buf)?).ok()?;
        let total_enqueued = get_varint(buf)?;
        let horizon = usize::try_from(get_varint(buf)?).ok()?;
        let horizon_resizes = get_varint(buf)?;
        let overflow_spills = get_varint(buf)?;
        let overflow_len = usize::try_from(get_varint(buf)?).ok()?;
        Some(EngineMetrics {
            events_executed,
            batches,
            batch_counts,
            queue_len,
            queue_high_water,
            total_enqueued,
            horizon,
            horizon_resizes,
            overflow_spills,
            overflow_len,
        })
    }
}

/// `RunOutcome` splits into a fixed discriminant plus optional detail;
/// the message of `Failed` and the tick of `Watchdog` ride along.
impl WireCodec for RunOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RunOutcome::Drained => out.push(0),
            RunOutcome::Stopped => out.push(1),
            RunOutcome::TickLimit => out.push(2),
            RunOutcome::Failed(msg) => {
                out.push(3);
                put_str(out, msg);
            }
            RunOutcome::Watchdog { last_progress } => {
                out.push(4);
                put_varint(out, *last_progress);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match get_u8(buf)? {
            0 => Some(RunOutcome::Drained),
            1 => Some(RunOutcome::Stopped),
            2 => Some(RunOutcome::TickLimit),
            3 => Some(RunOutcome::Failed(get_str(buf)?)),
            4 => Some(RunOutcome::Watchdog {
                last_progress: get_varint(buf)?,
            }),
            _ => None,
        }
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match get_u8(buf)? {
            0 => Some(None),
            1 => Some(Some(T::decode(buf)?)),
            _ => None,
        }
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = usize::try_from(get_varint(buf)?).ok()?;
        // Guard: each element costs at least one byte, so a hostile
        // length prefix cannot force a huge allocation.
        if len > buf.len() {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(get_varint(&mut slice), Some(v));
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut slice: &[u8] = &[0x80];
        assert_eq!(get_varint(&mut slice), None, "truncated continuation");
        // 11 continuation bytes: wider than 64 bits.
        let wide = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut slice: &[u8] = &wide;
        assert_eq!(get_varint(&mut slice), None, "65-bit value");
    }

    #[test]
    fn frame_round_trips_over_a_pipe_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 7, b"hello").unwrap();
        write_frame(&mut wire, 9, b"").unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap(), (7, b"hello".to_vec()));
        assert_eq!(read_frame(&mut cursor).unwrap(), (9, Vec::new()));
    }

    #[test]
    fn frame_rejects_bad_length() {
        let mut cursor = std::io::Cursor::new(vec![0, 0, 0, 0]);
        assert!(read_frame(&mut cursor).is_err(), "zero length");
        let mut huge = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        huge.push(0);
        let mut cursor = std::io::Cursor::new(huge);
        assert!(read_frame(&mut cursor).is_err(), "oversized length");
    }

    fn round_trip<T: WireCodec + PartialEq + std::fmt::Debug>(v: &T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut slice = buf.as_slice();
        let back = T::decode(&mut slice).expect("decode");
        assert_eq!(&back, v);
        assert!(slice.is_empty(), "decode must consume the encoding");
    }

    #[test]
    fn des_types_round_trip() {
        round_trip(&Time::new(123_456_789, 250));
        round_trip(&EventStamp {
            src: u32::MAX,
            seq: u64::MAX,
        });
        round_trip(&TraceEvent {
            time: Time::new(42, 3),
            src: 17,
            kind: 7,
            id: u64::MAX,
            sub: u32::MAX,
        });
        round_trip(&RunOutcome::Drained);
        round_trip(&RunOutcome::Failed("component 3 exploded".into()));
        round_trip(&RunOutcome::Watchdog {
            last_progress: 9_999,
        });
        round_trip(&Some(77u64));
        round_trip(&Option::<u64>::None);
        round_trip(&vec![1u64, 2, u64::MAX]);
    }

    #[test]
    fn engine_metrics_round_trip_randomized() {
        let mut rng = Rng::new(0xA11CE);
        for _ in 0..50 {
            let mut batch_counts = [0u64; BATCH_BUCKETS];
            for c in &mut batch_counts {
                *c = rng.gen_u64() >> (rng.gen_u64() % 64);
            }
            let m = EngineMetrics {
                events_executed: rng.gen_u64(),
                batches: rng.gen_u64(),
                batch_counts,
                queue_len: rng.gen_u64() as usize >> 16,
                queue_high_water: rng.gen_u64() as usize >> 16,
                total_enqueued: rng.gen_u64(),
                horizon: rng.gen_u64() as usize >> 40,
                horizon_resizes: rng.gen_u64() >> 32,
                overflow_spills: rng.gen_u64() >> 32,
                overflow_len: rng.gen_u64() as usize >> 40,
            };
            let mut buf = Vec::new();
            m.encode(&mut buf);
            let mut slice = buf.as_slice();
            let back = EngineMetrics::decode(&mut slice).unwrap();
            assert_eq!(back.events_executed, m.events_executed);
            assert_eq!(back.batch_counts, m.batch_counts);
            assert_eq!(back.queue_high_water, m.queue_high_water);
            assert_eq!(back.overflow_len, m.overflow_len);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn vec_decode_rejects_hostile_length() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        let mut slice = buf.as_slice();
        assert_eq!(Vec::<u64>::decode(&mut slice), None);
    }

    #[test]
    fn decode_is_total_on_random_garbage() {
        let mut rng = Rng::new(0xBADF00D);
        for _ in 0..200 {
            let len = (rng.gen_u64() % 24) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen_u64() as u8).collect();
            // None of these may panic; Some or None are both fine.
            let _ = Time::decode(&mut bytes.as_slice());
            let _ = EventStamp::decode(&mut bytes.as_slice());
            let _ = TraceEvent::decode(&mut bytes.as_slice());
            let _ = RunOutcome::decode(&mut bytes.as_slice());
            let _ = EngineMetrics::decode(&mut bytes.as_slice());
            let _ = Vec::<u64>::decode(&mut bytes.as_slice());
        }
    }
}
