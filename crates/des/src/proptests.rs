//! Property-based tests of the engine's ordering contract.

use std::any::Any;

use proptest::prelude::*;

use crate::{Component, ComponentId, Context, Simulator, Time};

/// Records every delivery it sees, in execution order.
struct Recorder {
    seen: Vec<(Time, u64)>,
}

impl Component<u64> for Recorder {
    fn name(&self) -> &str {
        "recorder"
    }
    fn handle(&mut self, ctx: &mut Context<'_, u64>, event: u64) {
        self.seen.push((ctx.now(), event));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A component that fans out a chain of future events on first contact.
struct Spawner {
    targets: Vec<ComponentId>,
    gaps: Vec<u64>,
}

impl Component<u64> for Spawner {
    fn name(&self) -> &str {
        "spawner"
    }
    fn handle(&mut self, ctx: &mut Context<'_, u64>, event: u64) {
        if event == 0 {
            for (i, (&t, &gap)) in self.targets.iter().zip(&self.gaps).enumerate() {
                ctx.schedule(t, ctx.now().plus_ticks(gap), 1000 + i as u64);
            }
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

proptest! {
    /// Deliveries are observed in non-decreasing (tick, epsilon) order and
    /// nothing is lost, regardless of the schedule.
    #[test]
    fn events_execute_in_time_order(
        times in prop::collection::vec((0u64..1000, 0u8..4), 1..200),
    ) {
        let mut sim: Simulator<u64> = Simulator::new(1);
        let rec = sim.add_component(Box::new(Recorder { seen: Vec::new() }));
        for (i, &(tick, eps)) in times.iter().enumerate() {
            sim.schedule(rec, Time::new(tick, eps), i as u64);
        }
        let stats = sim.run();
        prop_assert!(stats.outcome.is_ok());
        prop_assert_eq!(stats.events_executed, times.len() as u64);
        let seen = &sim.component_as::<Recorder>(rec).expect("recorder").seen;
        prop_assert_eq!(seen.len(), times.len());
        prop_assert!(seen.windows(2).all(|w| w[0].0 <= w[1].0), "out of order");
        // Events with identical times retain FIFO (insertion) order.
        for w in seen.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at {:?}", w[0].0);
            }
        }
    }

    /// Dynamically scheduled events interleave correctly with static ones.
    #[test]
    fn spawned_events_respect_order(
        gaps in prop::collection::vec(1u64..50, 1..20),
        static_times in prop::collection::vec(0u64..100, 0..20),
    ) {
        let mut sim: Simulator<u64> = Simulator::new(2);
        let rec = sim.add_component(Box::new(Recorder { seen: Vec::new() }));
        let spawner = sim.add_component(Box::new(Spawner {
            targets: vec![rec; gaps.len()],
            gaps: gaps.clone(),
        }));
        sim.schedule(spawner, Time::at(10), 0);
        for &t in &static_times {
            sim.schedule(rec, Time::at(t), 1);
        }
        let stats = sim.run();
        prop_assert!(stats.outcome.is_ok());
        let seen = &sim.component_as::<Recorder>(rec).expect("recorder").seen;
        prop_assert_eq!(seen.len(), gaps.len() + static_times.len());
        prop_assert!(seen.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
