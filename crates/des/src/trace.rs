//! Engine-owned event tracing: the collection half of the observability
//! trace plane.
//!
//! Earlier revisions had components share an `Rc<RefCell<..>>` tracer,
//! which pinned the whole simulation to one thread. Collection now lives
//! in the engine: a component records through its
//! [`Context`](crate::Context) (`ctx.trace(..)`), the engine buffers the
//! records, and higher layers render them. The `des` crate knows nothing
//! about flits — a record is five integers ([`TraceEvent`]): time, source
//! component, a small `kind` tag, a 64-bit `id`, and a 32-bit `sub`
//! discriminator. The network layer maps these onto its own vocabulary
//! (kind → flit event name, id → packet, sub → flit index).
//!
//! Both engines produce the **same byte-for-byte record sequence** for a
//! given `(configuration, seed)`: the sequential engine appends records in
//! execution order, and the sharded engine tags each record with the
//! triggering event's stamp and merges per-shard buffers back into that
//! exact order at every synchronization round.

use crate::time::Time;

/// One collected trace record. Interpretation of `kind`, `id`, and `sub`
/// belongs to the layer that recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the record was made (the time of the triggering event).
    pub time: Time,
    /// Model-level source index (e.g. terminal or router number) — chosen
    /// by the recording component, not necessarily its component id.
    pub src: u32,
    /// Small record-type tag, `< 8` so it fits a [`TraceSpec::kinds`]
    /// bitmask.
    pub kind: u8,
    /// Primary record identity (e.g. a packet id).
    pub id: u64,
    /// Secondary discriminator (e.g. a flit index within the packet).
    pub sub: u32,
}

/// What the engine collects. The default spec accepts everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpec {
    /// Bitmask of accepted kinds: bit `k` accepts records of kind `k`.
    pub kinds: u8,
    /// Only records from this source index, when set.
    pub src: Option<u32>,
    /// Inclusive id range.
    pub id_lo: u64,
    /// Inclusive id range.
    pub id_hi: u64,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            kinds: u8::MAX,
            src: None,
            id_lo: 0,
            id_hi: u64::MAX,
        }
    }
}

impl TraceSpec {
    /// Whether a record with these fields is collected.
    #[inline]
    pub fn accepts(&self, kind: u8, src: u32, id: u64) -> bool {
        self.kinds & (1u8 << (kind & 7)) != 0
            && self.src.is_none_or(|s| s == src)
            && (self.id_lo..=self.id_hi).contains(&id)
    }
}

/// A fixed-capacity ring buffer of [`TraceEvent`]s keeping the most
/// recent `capacity` accepted records.
#[derive(Debug)]
pub struct TraceBuffer {
    capacity: usize,
    ring: Vec<TraceEvent>,
    /// Next write position once the ring is full (wrap cursor).
    next: usize,
    /// Records accepted over the buffer's lifetime (kept + overwritten).
    recorded: u64,
}

impl TraceBuffer {
    /// A buffer keeping the most recent `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be non-zero");
        TraceBuffer {
            capacity,
            ring: Vec::new(),
            next: 0,
            recorded: 0,
        }
    }

    /// Appends one record, overwriting the oldest once full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        self.recorded += 1;
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.next] = ev;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Records kept (at most the capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing was kept.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records accepted over the buffer's lifetime, including those the
    /// ring has since overwritten.
    pub fn total_recorded(&self) -> u64 {
        self.recorded
    }

    /// The kept records in collection order (unwrapping the ring).
    pub fn records(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.next..]);
        out.extend_from_slice(&self.ring[..self.next]);
        out
    }

    /// Serializes the kept records (in collection order) plus the
    /// lifetime counter, for a checkpoint.
    pub fn save(&self, out: &mut Vec<u8>) {
        use crate::wire::WireCodec;
        self.records().encode(out);
        crate::wire::put_varint(out, self.recorded);
    }

    /// Overlays state captured by [`TraceBuffer::save`] onto this buffer
    /// (which must have been created with the same capacity — rebuilt
    /// from the same configuration). Re-pushing the unwrapped records
    /// reproduces FIFO-eviction behavior exactly. Total: `None` on
    /// malformed input.
    pub fn load(&mut self, buf: &mut &[u8]) -> Option<()> {
        use crate::wire::WireCodec;
        let records = Vec::<TraceEvent>::decode(buf)?;
        if records.len() > self.capacity {
            return None;
        }
        self.ring.clear();
        self.next = 0;
        self.recorded = 0;
        for ev in records {
            self.push(ev);
        }
        self.recorded = crate::wire::get_varint(buf)?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64) -> TraceEvent {
        TraceEvent {
            time: Time::at(id),
            src: 0,
            kind: 0,
            id,
            sub: 0,
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut buf = TraceBuffer::with_capacity(3);
        for i in 0..5 {
            buf.push(ev(i));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.total_recorded(), 5);
        let ids: Vec<u64> = buf.records().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![2, 3, 4], "collection order, oldest overwritten");
    }

    #[test]
    fn spec_filters_kind_src_and_id() {
        let spec = TraceSpec {
            kinds: 0b10,
            src: Some(7),
            id_lo: 10,
            id_hi: 20,
        };
        assert!(spec.accepts(1, 7, 15));
        assert!(!spec.accepts(0, 7, 15), "kind bit off");
        assert!(!spec.accepts(1, 6, 15), "wrong src");
        assert!(!spec.accepts(1, 7, 9), "id below range");
        assert!(!spec.accepts(1, 7, 21), "id above range");
        assert!(TraceSpec::default().accepts(3, 0, u64::MAX));
    }
}
