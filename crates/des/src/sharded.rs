//! The sharded engine: components partitioned across worker threads,
//! advancing in conservatively synchronized generations.
//!
//! # Synchronization protocol
//!
//! The sequential executor already runs the simulation as a sequence of
//! *generations* — all events at the earliest pending `(tick, epsilon)`,
//! dispatched in canonical stamp order (see the [`engine`](crate::engine)
//! module). The sharded engine executes the same sequence of generations,
//! one barrier round per generation:
//!
//! 1. **Publish.** Each shard publishes the head time of its local queue,
//!    then waits on a barrier.
//! 2. **Execute.** Every shard independently computes the global minimum
//!    `m` of the published peeks (identical inputs → identical result,
//!    so no coordinator is needed). If no shard has events, the run is
//!    drained; if `m` exceeds the tick limit, the run pauses — both
//!    decisions are unanimous. Otherwise each shard whose head equals `m`
//!    drains that generation, sorts it by stamp, and executes it.
//!    Events for local components go straight into the local queue;
//!    events for remote components accumulate in per-destination
//!    outboxes. A second barrier ends the round.
//! 3. **Deliver.** Each shard drains its inboxes into its local queue,
//!    and the first shard merges the round's trace records (sorted by
//!    stamp) into the shared ring. Stop/failure flags raised during the
//!    round are observed here, consistently by all shards.
//!
//! Because cross-shard events are delivered at the end of the round, an
//! event scheduled *during* generation `m` at time `m` joins the *next*
//! generation — exactly the sequential batch semantics, so zero-latency
//! messages need no lookahead special case.
//!
//! # Divergence from the sequential engine
//!
//! For runs that end by draining the queue, the sharded engine is
//! bit-identical to the sequential engine (events, random draws, trace
//! bytes, component state). Two halt paths are looser: `stop`/`fail`
//! complete the current generation before halting (the sequential engine
//! aborts mid-generation), and when several components fail in one
//! generation, the failure with the smallest event stamp is reported —
//! which is the same failure the sequential engine would have hit first.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use crate::component::{Component, ComponentId};
use crate::engine::Stamped;
use crate::engine::{Engine, EngineMetrics, EventStamp, RunOutcome, RunStats, EXTERNAL_SRC};
use crate::event::EventQueue;
use crate::host::{HostRecorder, HostShardTimes, ProgressShared};
use crate::protocol::{run_shard_rounds, ProtocolParams, Shard};
use crate::simulator::{SequentialEngine, TraceState};
use crate::time::{Tick, Time};
use crate::trace::{TraceEvent, TraceSpec};
use crate::transport::{PanicFence, ThreadShared, ThreadTransport};

/// The multi-threaded engine: a [`SequentialEngine`]'s components
/// partitioned across shards, one worker thread per shard.
///
/// Built with [`SequentialEngine::into_sharded`]. Runs are bit-identical
/// to the sequential engine for the same `(configuration, seed)` — see
/// the [module docs](self) for the protocol and the halt-path caveats.
pub struct ShardedEngine<E> {
    shards: Vec<Shard<E>>,
    /// Component index → owning shard.
    shard_of: Vec<u32>,
    now: Time,
    ext_seq: u64,
    trace: Option<TraceState>,
    /// No-progress watchdog window in ticks; 0 = disarmed.
    watchdog: Tick,
    /// Sampling window width in ticks; 0 = disarmed.
    sample_interval: Tick,
    /// Tick of the last globally agreed progress report.
    last_progress: Tick,
    /// Host-profiling sampling stride; 0 = disarmed.
    host_sample: u32,
    /// Accumulated per-shard host-time records across runs.
    host_times: Vec<HostShardTimes>,
    /// Out-of-band live-progress board shared with the heartbeat.
    progress_board: Option<Arc<ProgressShared>>,
}

impl<E: Send + 'static> SequentialEngine<E> {
    /// Converts this engine into a [`ShardedEngine`] with `num_shards`
    /// worker shards, assigning each component `c` to shard
    /// `shard_of[c]`. Pending events move to their target's shard;
    /// simulation time, trace state, and per-component random streams are
    /// preserved, so a run may even be split across engines at a pause.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero, `shard_of` is not exactly one
    /// entry per registered component, or any entry is out of range.
    pub fn into_sharded(mut self, num_shards: usize, shard_of: Vec<u32>) -> ShardedEngine<E> {
        assert!(num_shards > 0, "need at least one shard");
        assert_eq!(
            shard_of.len(),
            self.components.len(),
            "shard map must cover every component"
        );
        assert!(
            shard_of.iter().all(|&s| (s as usize) < num_shards),
            "shard map entry out of range"
        );
        let n = self.components.len();
        let mut shards: Vec<Shard<E>> = (0..num_shards)
            .map(|_| Shard {
                components: Vec::with_capacity(n),
                rngs: self.rngs.clone(),
                seqs: self.seqs.clone(),
                queue: EventQueue::new(),
                batch: Vec::new(),
                events_executed: 0,
                batches: 0,
                batch_counts: [0; crate::engine::BATCH_BUCKETS],
            })
            .collect();
        // Executor counters carry over to shard 0 so lifetime totals
        // (events executed so far) survive the conversion.
        shards[0].events_executed = Engine::events_executed(&self);
        for shard in shards.iter_mut() {
            shard.components.resize_with(n, || None);
        }
        for (idx, slot) in self.components.drain(..).enumerate() {
            shards[shard_of[idx] as usize].components[idx] = slot;
        }
        // Per-component send counters and random streams live with the
        // owning shard; the full-length copies in other shards are inert.
        let mut pending = Vec::new();
        while self.queue.take_batch(&mut pending) > 0 {
            for e in pending.drain(..) {
                let owner = shard_of.get(e.target.index()).copied().unwrap_or(0) as usize;
                shards[owner].queue.push(e.target, e.time, e.payload);
            }
        }
        ShardedEngine {
            shards,
            shard_of,
            now: self.now,
            ext_seq: self.ext_seq,
            trace: self.trace.take(),
            watchdog: self.watchdog,
            sample_interval: self.sample_interval,
            last_progress: self.last_progress,
            host_sample: 0,
            host_times: Vec::new(),
            progress_board: None,
        }
    }
}

impl<E: Send + 'static> ShardedEngine<E> {
    /// Enqueues an initial event from outside any component.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current simulation time.
    pub fn schedule(&mut self, target: ComponentId, time: Time, payload: E) {
        assert!(time >= self.now, "cannot schedule into the past");
        let stamp = EventStamp {
            src: EXTERNAL_SRC,
            seq: self.ext_seq,
        };
        self.ext_seq += 1;
        let owner = self.shard_of.get(target.index()).copied().unwrap_or(0) as usize;
        self.shards[owner]
            .queue
            .push(target, time, Stamped { stamp, payload });
    }

    /// Runs until every queue drains, a component stops or fails, or the
    /// next generation would execute at a tick strictly greater than
    /// `tick_limit`. See the [module docs](self) for the round protocol.
    pub fn run_until(&mut self, tick_limit: Tick) -> RunStats {
        let start = Instant::now();
        let start_events: u64 = self.shards.iter().map(|s| s.events_executed).sum();
        let n = self.shards.len();
        let shared: ThreadShared<E> = ThreadShared::new(n, self.last_progress);
        let watchdog = self.watchdog;
        let sample_interval = self.sample_interval;
        let start_progress = self.last_progress;
        let trace_spec = self.trace.as_ref().map(|t| t.spec);
        let shard_of: &[u32] = &self.shard_of;
        let start_now = self.now;
        let host_sample = self.host_sample;
        let board = self.progress_board.clone();

        let mut trace_state = self.trace.as_mut();
        let (outcome, end_now, end_progress, host_times) = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (s, shard) in self.shards.iter_mut().enumerate() {
                let buffer = if s == 0 {
                    trace_state.take().map(|t| &mut t.buffer)
                } else {
                    None
                };
                let shared = &shared;
                let board = board.clone();
                handles.push(scope.spawn(move || {
                    let mut fence = PanicFence::arm(&shared.poisoned);
                    let mut transport = ThreadTransport::new(shared, s, buffer);
                    let params = ProtocolParams {
                        my_shard: s as u32,
                        num_shards: n,
                        tick_limit,
                        watchdog,
                        sample_interval,
                        start_now,
                        start_progress,
                        trace_spec,
                        shard_of,
                        progress_board: board.as_deref(),
                    };
                    let mut host = HostRecorder::with_sample(host_sample);
                    let r = run_shard_rounds(shard, &params, &mut transport, &mut host)
                        .expect("the in-process transport is infallible");
                    fence.disarm();
                    (r, host.times)
                }));
            }
            let mut agreed: Option<(RunOutcome, Time, Tick)> = None;
            let mut host_times = Vec::with_capacity(n);
            for h in handles {
                let (r, times) = h.join().expect("shard thread panicked");
                debug_assert!(
                    agreed.as_ref().is_none_or(|a| *a == r),
                    "shards disagreed on the run outcome"
                );
                agreed = Some(r);
                host_times.push(times);
            }
            let (outcome, end_now, end_progress) = agreed.expect("at least one shard");
            (outcome, end_now, end_progress, host_times)
        });
        if self.host_sample != 0 {
            self.host_times.resize(n, HostShardTimes::default());
            for (acc, times) in self.host_times.iter_mut().zip(&host_times) {
                acc.merge(times);
            }
        }
        // `end_now` is the time of the last *executed* generation (a
        // tick-limit pause stops before advancing), matching the
        // sequential engine.
        self.now = end_now;
        self.last_progress = end_progress;
        let events_executed: u64 =
            self.shards.iter().map(|s| s.events_executed).sum::<u64>() - start_events;
        RunStats {
            events_executed,
            end_time: self.now,
            queue_high_water: self.shards.iter().map(|s| s.queue.high_water_mark()).sum(),
            total_enqueued: self.shards.iter().map(|s| s.queue.total_enqueued()).sum(),
            wall: start.elapsed(),
            outcome,
        }
    }

    /// Runs until every queue drains, a component stops or fails.
    pub fn run(&mut self) -> RunStats {
        self.run_until(Tick::MAX)
    }

    /// Arms the no-progress watchdog: if the gap between the next
    /// generation's tick and the last tick at which any component
    /// reported progress exceeds `window`, the run halts with
    /// [`RunOutcome::Watchdog`]. `0` disarms. The decision is unanimous
    /// across shards, so it fires at the identical point on every shard
    /// count.
    pub fn set_watchdog(&mut self, window: Tick) {
        self.watchdog = window;
    }

    /// Arms the windowed sampler (see [`Engine::set_sampler`]). Each
    /// shard samples its own components when the barrier round covering
    /// a window edge begins, so the union across shards is exactly the
    /// sequential engine's pre-generation sweep.
    pub fn set_sampler(&mut self, interval: Tick) {
        self.sample_interval = interval;
    }

    fn owner_of(&self, id: ComponentId) -> Option<usize> {
        self.shard_of.get(id.index()).map(|&s| s as usize)
    }
}

impl<E: Send + 'static> Engine<E> for ShardedEngine<E> {
    fn schedule(&mut self, target: ComponentId, time: Time, payload: E) {
        ShardedEngine::schedule(self, target, time, payload);
    }

    fn run_until(&mut self, tick_limit: Tick) -> RunStats {
        ShardedEngine::run_until(self, tick_limit)
    }

    fn now(&self) -> Time {
        self.now
    }

    fn num_components(&self) -> usize {
        self.shard_of.len()
    }

    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn component(&self, id: ComponentId) -> Option<&dyn Component<E>> {
        let owner = self.owner_of(id)?;
        self.shards[owner]
            .components
            .get(id.index())
            .and_then(|c| c.as_deref())
    }

    fn component_dyn_mut(&mut self, id: ComponentId) -> Option<&mut dyn Component<E>> {
        let owner = self.owner_of(id)?;
        self.shards[owner]
            .components
            .get_mut(id.index())
            .and_then(|c| c.as_deref_mut())
    }

    fn shard_metrics(&self) -> Vec<EngineMetrics> {
        self.shards.iter().map(|s| s.metrics()).collect()
    }

    fn events_executed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_executed).sum()
    }

    fn total_enqueued(&self) -> u64 {
        self.shards.iter().map(|s| s.queue.total_enqueued()).sum()
    }

    fn set_watchdog(&mut self, window: Tick) {
        ShardedEngine::set_watchdog(self, window);
    }

    fn set_sampler(&mut self, interval: Tick) {
        ShardedEngine::set_sampler(self, interval);
    }

    fn set_host_profiling(&mut self, sample: u32) {
        self.host_sample = sample;
    }

    fn host_times(&self) -> Vec<HostShardTimes> {
        self.host_times.clone()
    }

    fn set_progress(&mut self, progress: Arc<ProgressShared>) {
        self.progress_board = Some(progress);
    }

    fn set_trace(&mut self, spec: TraceSpec, capacity: usize) {
        self.trace = Some(TraceState {
            spec,
            buffer: crate::trace::TraceBuffer::with_capacity(capacity),
        });
    }

    fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    fn trace_records(&self) -> Vec<TraceEvent> {
        self.trace
            .as_ref()
            .map(|t| t.buffer.records())
            .unwrap_or_default()
    }

    /// Writes the uniform engine blob: trace section, shard count, then
    /// one canonical shard blob per shard (engine-global scalars repeated
    /// in each — see [`crate::snapshot`]).
    fn save_state(&self, out: &mut Vec<u8>) -> bool
    where
        E: crate::wire::WireCodec,
    {
        crate::snapshot::put_trace(out, self.trace.as_ref().map(|t| &t.buffer));
        crate::wire::put_varint(out, self.shards.len() as u64);
        let mut blob = Vec::new();
        for shard in &self.shards {
            blob.clear();
            shard.save_state(self.now, self.ext_seq, self.last_progress, &mut blob);
            crate::wire::put_bytes(out, &blob);
        }
        true
    }

    fn load_state(&mut self, buf: &mut &[u8]) -> bool
    where
        E: crate::wire::WireCodec,
    {
        let mut inner = || -> Option<()> {
            crate::snapshot::get_trace(buf, self.trace.as_mut().map(|t| &mut t.buffer))?;
            let shards = crate::wire::get_varint(buf)?;
            if shards != self.shards.len() as u64 {
                return None;
            }
            let mut scalars = None;
            for shard in self.shards.iter_mut() {
                let mut blob = crate::wire::get_bytes(buf)?;
                let s = shard.load_state(&mut blob)?;
                if !blob.is_empty() {
                    return None;
                }
                scalars = Some(s);
            }
            let s = scalars?;
            self.now = s.now;
            self.ext_seq = s.ext_seq;
            self.last_progress = s.last_progress;
            Some(())
        };
        inner().is_some()
    }
}

impl<E> fmt::Debug for ShardedEngine<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.shards.len())
            .field("components", &self.shard_of.len())
            .field(
                "pending_events",
                &self.shards.iter().map(|s| s.queue.len()).sum::<usize>(),
            )
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, Simulator, TraceSpec};
    use std::any::Any;

    #[derive(Debug, Clone)]
    enum Ev {
        Ping(u32),
        Stop,
        Fail,
    }

    /// A ring relay: forwards a token to the next component, drawing one
    /// random value and tracing each hop.
    struct Relay {
        next: ComponentId,
        hops_left: u32,
        seen: Vec<u32>,
        draws: Vec<u64>,
        productive: bool,
    }

    impl Component<Ev> for Relay {
        fn name(&self) -> &str {
            "relay"
        }
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
            match event {
                Ev::Ping(n) => {
                    self.seen.push(n);
                    self.draws.push(ctx.rng().gen_u64());
                    if self.productive {
                        ctx.progress();
                    }
                    ctx.trace(0, ctx.self_id().index() as u32, n as u64, 0);
                    if self.hops_left > 0 {
                        self.hops_left -= 1;
                        ctx.schedule(self.next, ctx.now().plus_ticks(1), Ev::Ping(n + 1));
                    }
                }
                Ev::Stop => ctx.stop(),
                Ev::Fail => ctx.fail("sharded failure"),
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Builds a ring of `size` relays with `tokens` tokens injected at
    /// evenly spaced components, each forwarded `hops` times.
    fn build_ring(seed: u64, size: usize, tokens: usize, hops: u32) -> Simulator<Ev> {
        build_ring_with(seed, size, tokens, hops, false)
    }

    fn build_ring_with(
        seed: u64,
        size: usize,
        tokens: usize,
        hops: u32,
        productive: bool,
    ) -> Simulator<Ev> {
        let mut sim = Simulator::new(seed);
        let ids: Vec<ComponentId> = (0..size)
            .map(|i| {
                sim.add_component(Box::new(Relay {
                    next: ComponentId::from_index((i + 1) % size),
                    hops_left: hops,
                    seen: vec![],
                    draws: vec![],
                    productive,
                }))
            })
            .collect();
        for t in 0..tokens {
            let at = ids[(t * size) / tokens];
            sim.schedule(at, Time::at(0), Ev::Ping(0));
        }
        sim
    }

    /// Round-robin component → shard map.
    fn striped(n: usize, shards: u32) -> Vec<u32> {
        (0..n).map(|i| (i as u32) % shards).collect()
    }

    fn state_of(engine: &dyn Engine<Ev>) -> Vec<(Vec<u32>, Vec<u64>)> {
        (0..engine.num_components())
            .map(|i| {
                let r = engine
                    .component_as::<Relay>(ComponentId::from_index(i))
                    .unwrap();
                (r.seen.clone(), r.draws.clone())
            })
            .collect()
    }

    #[test]
    fn sharded_matches_sequential_bit_for_bit() {
        for shards in [1u32, 2, 3, 4] {
            let mut seq = build_ring(9, 8, 3, 40);
            seq.set_trace(TraceSpec::default(), 4096);
            let seq_stats = seq.run();
            assert_eq!(seq_stats.outcome, RunOutcome::Drained);

            let mut sharded = build_ring(9, 8, 3, 40);
            sharded.set_trace(TraceSpec::default(), 4096);
            let mut sharded = sharded.into_sharded(shards as usize, striped(8, shards));
            let stats = sharded.run();
            assert_eq!(stats.outcome, RunOutcome::Drained);

            assert_eq!(stats.events_executed, seq_stats.events_executed);
            assert_eq!(stats.total_enqueued, seq_stats.total_enqueued);
            assert_eq!(Engine::now(&sharded), Engine::now(&seq), "end time");
            assert_eq!(
                state_of(&sharded),
                state_of(&seq),
                "component state diverged at {shards} shards"
            );
            assert_eq!(
                Engine::trace_records(&sharded),
                Engine::trace_records(&seq),
                "trace diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn cross_shard_ping_pong_drains() {
        // Both components on different shards: every hop crosses.
        let sim = build_ring(1, 2, 1, 10);
        let mut sharded = sim.into_sharded(2, striped(2, 2));
        // Each relay has a budget of 10 forwards: 20 hops + 1 injection.
        let stats = sharded.run();
        assert_eq!(stats.outcome, RunOutcome::Drained);
        assert_eq!(stats.events_executed, 21);
        assert_eq!(Engine::now(&sharded), Time::at(20));
    }

    #[test]
    fn stop_halts_at_round_boundary_and_resumes() {
        let mut sim = build_ring(3, 4, 1, 50);
        sim.schedule(ComponentId::from_index(2), Time::at(5), Ev::Stop);
        let mut sharded = sim.into_sharded(2, striped(4, 2));
        let stats = sharded.run();
        assert_eq!(stats.outcome, RunOutcome::Stopped);
        let resumed = sharded.run();
        assert_eq!(resumed.outcome, RunOutcome::Drained);
        // 4 relays × 50 forwards + 1 injection + 1 stop event.
        assert_eq!(stats.events_executed + resumed.events_executed, 202);
    }

    #[test]
    fn failure_is_surfaced_with_message() {
        let mut sim = build_ring(5, 4, 1, 50);
        sim.schedule(ComponentId::from_index(1), Time::at(3), Ev::Fail);
        let mut sharded = sim.into_sharded(4, striped(4, 4));
        let stats = sharded.run();
        assert_eq!(stats.outcome, RunOutcome::Failed("sharded failure".into()));
    }

    #[test]
    fn unknown_target_fails() {
        let mut sim = build_ring(7, 2, 0, 0);
        sim.schedule(ComponentId::from_index(99), Time::at(0), Ev::Ping(0));
        let mut sharded = sim.into_sharded(2, striped(2, 2));
        let stats = sharded.run();
        assert!(
            matches!(&stats.outcome, RunOutcome::Failed(m) if m.contains("component#99")),
            "got {:?}",
            stats.outcome
        );
    }

    #[test]
    fn watchdog_trips_identically_across_shard_counts() {
        // Nobody reports progress, so last_progress stays 0 and the
        // watchdog must trip at the identical point on every backend.
        let mut seq = build_ring(13, 6, 2, 60);
        Engine::set_watchdog(&mut seq, 10);
        let seq_stats = seq.run();
        assert_eq!(
            seq_stats.outcome,
            RunOutcome::Watchdog { last_progress: 0 },
            "sequential"
        );
        for shards in [1u32, 2, 4] {
            let sim = build_ring(13, 6, 2, 60);
            let mut sharded = sim.into_sharded(shards as usize, striped(6, shards));
            Engine::set_watchdog(&mut sharded, 10);
            let stats = sharded.run();
            assert_eq!(stats.outcome, seq_stats.outcome, "{shards} shards");
            assert_eq!(
                Engine::now(&sharded),
                Engine::now(&seq),
                "trip time at {shards} shards"
            );
            assert_eq!(
                stats.events_executed, seq_stats.events_executed,
                "events at {shards} shards"
            );
            // Pending events survive for diagnostics, not torn down.
            assert!(Engine::total_enqueued(&sharded) > Engine::events_executed(&sharded));
        }
    }

    #[test]
    fn watchdog_spares_productive_runs() {
        // Every hop reports progress, so even a tiny window never fires.
        let sim = build_ring_with(13, 6, 2, 60, true);
        let mut sharded = sim.into_sharded(3, striped(6, 3));
        Engine::set_watchdog(&mut sharded, 2);
        let stats = sharded.run();
        assert_eq!(stats.outcome, RunOutcome::Drained);
    }

    #[test]
    fn tick_limit_pauses_and_resumes() {
        let sim = build_ring(11, 4, 2, 30);
        let mut sharded = sim.into_sharded(2, striped(4, 2));
        let stats = sharded.run_until(10);
        assert_eq!(stats.outcome, RunOutcome::TickLimit);
        assert!(Engine::now(&sharded).tick() <= 10);
        let stats = sharded.run();
        assert_eq!(stats.outcome, RunOutcome::Drained);
        let total: u64 = stats.events_executed;
        assert!(total > 0);
        let all: u64 = Engine::events_executed(&sharded);
        assert_eq!(all, 122, "4 relays × 30 forwards + 2 injections");
    }

    #[test]
    fn shard_metrics_account_every_event_once() {
        let sim = build_ring(13, 6, 2, 20);
        let mut sharded = sim.into_sharded(3, striped(6, 3));
        let stats = sharded.run();
        assert_eq!(stats.outcome, RunOutcome::Drained);
        let per_shard = Engine::shard_metrics(&sharded);
        assert_eq!(per_shard.len(), 3);
        let total: u64 = per_shard.iter().map(|m| m.events_executed).sum();
        assert_eq!(total, Engine::events_executed(&sharded));
        assert_eq!(total, stats.events_executed);
        for m in &per_shard {
            assert_eq!(m.batch_counts.iter().sum::<u64>(), m.batches);
            assert_eq!(m.queue_len, 0, "drained shard still has events");
        }
    }
}
