//! The generation-lockstep round protocol, written once against
//! [`ShardTransport`] and shared by the in-process
//! [`ShardedEngine`](crate::ShardedEngine) and the multi-process
//! [`WorkerEngine`].
//!
//! Each loop iteration is one barrier round covering one generation:
//!
//! 1. **Fold.** Publish the local queue head and last-progress tick; the
//!    transport returns the global minimum head `m` and maximum progress.
//!    Halt decisions (drained / tick limit / watchdog) are taken here
//!    from the fold values — identical on every shard, so unanimous.
//! 2. **Sample + execute.** Close any sampling-window edges up to `m`
//!    over the shard's own components, then execute the local slice of
//!    generation `m` in canonical stamp order. Events for local
//!    components go straight into the local queue; remote events
//!    accumulate in per-destination outboxes.
//! 3. **Exchange.** Ship outboxes, trace records, and stop/failure
//!    flags; deliver inbound events in sender order; halt on the agreed
//!    stop/failure state.
//!
//! Because cross-shard events are delivered at the end of the round, an
//! event scheduled *during* generation `m` at time `m` joins the *next*
//! generation — exactly the sequential batch semantics.

use crate::component::{Component, ComponentId};
use crate::engine::{
    next_edge_after, Context, Engine, EngineMetrics, EventStamp, RunOutcome, RunStats, SinkRef,
    Stamped, TaggedTrace, TraceSink, EXTERNAL_SRC,
};
use crate::event::{EventEntry, EventQueue};
use crate::host::{HostRecorder, HostRoundSlice, ProgressShared};
use crate::rng::Rng;
use crate::time::{Tick, Time};
use crate::trace::{TraceEvent, TraceSpec};
use crate::transport::{RoundOut, ShardTransport, TransportError};

/// One shard: a slice of the component space plus its own event queue and
/// executor counters. `components` is full-length (indexed by component
/// id) with `None` in the slots other shards own, so dispatch needs no id
/// translation.
pub(crate) struct Shard<E> {
    pub(crate) components: Vec<Option<Box<dyn Component<E>>>>,
    pub(crate) rngs: Vec<Rng>,
    pub(crate) seqs: Vec<u64>,
    pub(crate) queue: EventQueue<Stamped<E>>,
    pub(crate) batch: Vec<EventEntry<Stamped<E>>>,
    pub(crate) events_executed: u64,
    pub(crate) batches: u64,
    pub(crate) batch_counts: [u64; crate::engine::BATCH_BUCKETS],
}

impl<E> Shard<E> {
    pub(crate) fn record_batch(&mut self, done: u64) {
        if done == 0 {
            return;
        }
        self.events_executed += done;
        self.batches += 1;
        self.batch_counts[crate::engine::log2_bucket(done)] += 1;
    }

    pub(crate) fn metrics(&self) -> EngineMetrics {
        EngineMetrics {
            events_executed: self.events_executed,
            batches: self.batches,
            batch_counts: self.batch_counts,
            queue_len: self.queue.len(),
            queue_high_water: self.queue.high_water_mark(),
            total_enqueued: self.queue.total_enqueued(),
            horizon: self.queue.horizon(),
            horizon_resizes: self.queue.horizon_resizes(),
            overflow_spills: self.queue.overflow_spills(),
            overflow_len: self.queue.overflow_len(),
        }
    }
}

impl<E: crate::wire::WireCodec + 'static> Shard<E> {
    /// Serializes this shard as one canonical shard blob (see
    /// [`crate::snapshot`]). The engine-global scalars ride inside each
    /// blob so a worker process can restore from its own blob alone.
    pub(crate) fn save_state(
        &self,
        now: Time,
        ext_seq: u64,
        last_progress: Tick,
        out: &mut Vec<u8>,
    ) {
        crate::snapshot::save_shard(
            out,
            now,
            ext_seq,
            last_progress,
            self.events_executed,
            self.batches,
            &self.batch_counts,
            &self.queue,
            &self.components,
            &self.rngs,
            &self.seqs,
        );
    }

    /// Overlays a shard blob onto this freshly built shard, returning
    /// the engine-global scalars for the caller to apply. `None` on
    /// malformed or mismatched state.
    pub(crate) fn load_state(&mut self, buf: &mut &[u8]) -> Option<crate::snapshot::ShardScalars> {
        let s = crate::snapshot::load_shard(
            buf,
            &mut self.queue,
            &mut self.components,
            &mut self.rngs,
            &mut self.seqs,
        )?;
        self.events_executed = s.events_executed;
        self.batches = s.batches;
        self.batch_counts = s.batch_counts;
        Some(s)
    }
}

/// The run parameters every shard agrees on before the loop starts.
pub(crate) struct ProtocolParams<'a> {
    pub my_shard: u32,
    pub num_shards: usize,
    pub tick_limit: Tick,
    /// No-progress watchdog window in ticks; 0 = disarmed.
    pub watchdog: Tick,
    /// Sampling window width in ticks; 0 = disarmed.
    pub sample_interval: Tick,
    pub start_now: Time,
    pub start_progress: Tick,
    pub trace_spec: Option<TraceSpec>,
    /// Component index → owning shard.
    pub shard_of: &'a [u32],
    /// Out-of-band live-progress board (shard 0 additionally publishes
    /// the tick and round count); `None` when no heartbeat is armed.
    pub progress_board: Option<&'a ProgressShared>,
}

/// Runs barrier rounds over `transport` until a halt decision. Returns
/// the outcome, the time of the last executed generation, and the final
/// globally agreed progress tick.
///
/// `host` collects out-of-band wall-time attribution (phase totals every
/// round, per-event component classes on sampled rounds); disabled
/// recorders cost one branch per round. Host clocks never influence
/// which events run or in what order.
pub(crate) fn run_shard_rounds<E: 'static, T: ShardTransport<E>>(
    shard: &mut Shard<E>,
    p: &ProtocolParams<'_>,
    transport: &mut T,
    host: &mut HostRecorder,
) -> Result<(RunOutcome, Time, Tick), TransportError> {
    let mut local_now = p.start_now;
    let mut local_out: Vec<Vec<(ComponentId, Time, Stamped<E>)>> =
        (0..p.num_shards).map(|_| Vec::new()).collect();
    let mut round_trace: Vec<TaggedTrace> = Vec::new();
    let mut batch = std::mem::take(&mut shard.batch);
    let mut local_progress = p.start_progress;
    // Every shard advances its edge cursor from the same global `m`
    // sequence, so all cursors stay in lockstep and together the shards
    // sample exactly the component set the sequential engine would.
    let mut next_edge =
        (p.sample_interval > 0).then(|| next_edge_after(p.start_now.tick(), p.sample_interval));
    // Assigned by the fold before every loop exit.
    let mut global_progress;
    let outcome = loop {
        let profiling = host.enabled();
        // Phase marks share boundaries: consecutive `now_ns` reads bound
        // fold / sample-edge / drain / execute / exchange with at most
        // six clock reads per round.
        let m0 = if profiling { host.now_ns() } else { 0 };
        let fold = transport.fold(shard.queue.peek_time(), local_progress)?;
        let m1 = if profiling { host.now_ns() } else { 0 };
        let round_fold_ns = m1 - m0;
        if profiling {
            host.times.fold_ns += round_fold_ns;
        }
        global_progress = fold.global_progress;
        // All halt decisions are unanimous: every shard computed them
        // from the identical fold values.
        let Some(m) = fold.m else {
            break RunOutcome::Drained;
        };
        if m.tick() > p.tick_limit {
            break RunOutcome::TickLimit;
        }
        if p.watchdog > 0 && m.tick().saturating_sub(global_progress) > p.watchdog {
            break RunOutcome::Watchdog {
                last_progress: global_progress,
            };
        }
        // This round covers any window edges up to `m`: every event
        // below the edge executed in an earlier round, so each shard
        // closes the window over its own components before generation
        // `m` runs — the per-shard half of the sequential engine's
        // pre-generation sweep.
        if next_edge.is_some_and(|e| e <= m.tick()) {
            while let Some(edge) = next_edge.filter(|&e| e <= m.tick()) {
                for slot in shard.components.iter_mut() {
                    if let Some(c) = slot.as_deref_mut() {
                        c.sample(edge);
                    }
                }
                next_edge = edge.checked_add(p.sample_interval);
            }
            if profiling {
                host.times.sample_edge_ns += host.now_ns() - m1;
            }
        }
        local_now = m;

        let mut stop_local = false;
        let sampled = profiling && host.batch_sampled();
        let mut round_events = 0u64;
        let mut round_exec_ns = 0u64;
        // The batch executes in stamp order, so the first failure seen
        // is this shard's smallest-stamp failure; the transport folds
        // the cross-shard minimum (the failure the sequential engine
        // would have hit first).
        let mut failure_local: Option<(EventStamp, String)> = None;
        if shard.queue.peek_time() == Some(m) {
            let m2 = if profiling { host.now_ns() } else { 0 };
            let t = shard.queue.take_batch_until(p.tick_limit, &mut batch);
            debug_assert_eq!(t, Some(m));
            if batch.len() > 1 {
                batch.sort_unstable_by_key(|e| e.payload.stamp);
            }
            let m3 = if profiling { host.now_ns() } else { 0 };
            if profiling {
                host.times.drain_ns += m3 - m2;
            }
            let mut done = 0u64;
            let mut progress_local = false;
            // On sampled rounds, consecutive marks attribute each
            // event's wall time to its component's class.
            let mut ev_mark = m3;
            for entry in batch.drain(..) {
                let idx = entry.target.index();
                let mut fail_local: Option<String> = None;
                let taken = shard.components.get_mut(idx).and_then(|slot| slot.take());
                match taken {
                    Some(mut component) => {
                        let mut ctx = Context {
                            now: m,
                            self_id: entry.target,
                            sink: SinkRef::Sharded {
                                queue: &mut shard.queue,
                                shard_of: p.shard_of,
                                my_shard: p.my_shard,
                                outboxes: &mut local_out,
                            },
                            seq: &mut shard.seqs[idx],
                            rng: &mut shard.rngs[idx],
                            stop_requested: &mut stop_local,
                            progress: &mut progress_local,
                            failure: &mut fail_local,
                            trace: p.trace_spec.map(|spec| TraceSink {
                                spec,
                                stamp: entry.payload.stamp,
                                recno: 0,
                                out: &mut round_trace,
                            }),
                        };
                        component.handle(&mut ctx, entry.payload.payload);
                        if sampled {
                            let ev_end = host.now_ns();
                            host.times
                                .add_class(component.host_class(), ev_end - ev_mark, 1);
                            host.times.sampled_events += 1;
                            ev_mark = ev_end;
                        }
                        shard.components[idx] = Some(component);
                        done += 1;
                    }
                    None => {
                        fail_local = Some(format!("event targeted unregistered {}", entry.target));
                    }
                }
                if let Some(msg) = fail_local {
                    if failure_local.is_none() {
                        failure_local = Some((entry.payload.stamp, msg));
                    }
                }
            }
            shard.record_batch(done);
            if profiling {
                round_exec_ns = host.now_ns() - m3;
                host.times.execute_ns += round_exec_ns;
            }
            round_events = done;
            if progress_local {
                local_progress = m.tick();
            }
        }

        let m4 = if profiling { host.now_ns() } else { 0 };
        let end = transport.exchange(
            RoundOut {
                outboxes: &mut local_out,
                traces: &mut round_trace,
                stop: stop_local,
                failure: failure_local,
                events: round_events,
            },
            &mut |target, time, stamped| shard.queue.push(target, time, stamped),
        )?;
        if profiling {
            let round_exch_ns = host.now_ns() - m4;
            host.times.exchange_ns += round_exch_ns;
            if sampled {
                host.times.push_slice(HostRoundSlice {
                    start_ns: m0,
                    tick: m.tick(),
                    events: round_events,
                    execute_ns: round_exec_ns,
                    fold_ns: round_fold_ns,
                    exchange_ns: round_exch_ns,
                });
            }
        }
        if let Some(board) = p.progress_board {
            board.record_events(p.my_shard as usize, shard.events_executed);
            if p.my_shard == 0 {
                board.record_tick(m.tick());
                board.add_round();
            }
        }
        if let Some(msg) = end.failure {
            break RunOutcome::Failed(msg);
        }
        if end.stopped {
            break RunOutcome::Stopped;
        }
    };
    shard.batch = batch;
    Ok((outcome, local_now, global_progress))
}

// ---------------------------------------------------------------------------
// Multi-process worker engine
// ---------------------------------------------------------------------------

#[cfg(unix)]
pub use worker::WorkerEngine;

#[cfg(unix)]
mod worker {
    use super::*;
    use crate::simulator::SequentialEngine;
    use crate::transport::{ProcessTransport, WorkerLink};
    use crate::wire::WireCodec;
    use std::time::Instant;

    /// One shard of a simulation running in its own OS process, driven
    /// over a [`WorkerLink`] by the parent hub.
    ///
    /// Built with [`SequentialEngine::into_worker`] from a *fully
    /// constructed* engine (every component registered, initial events
    /// scheduled) that is identical in every worker — same
    /// configuration, same seed. The conversion keeps only the
    /// components this shard owns and the pending events targeting
    /// them; foreign slots become `None` and foreign events are
    /// dropped, because the owning worker holds its own identically
    /// stamped copies. Per-component RNG streams and send counters stay
    /// full-length, so stamps and draws line up bit-for-bit with the
    /// other backends.
    ///
    /// Differences from the in-process engines, by construction:
    /// trace records ship to the hub every round (so
    /// [`Engine::trace_records`] is empty here — the hub merges them),
    /// and [`Engine::shard_metrics`] reports only this shard (the hub
    /// collects the full set from every worker's DONE frame).
    pub struct WorkerEngine<E> {
        shard: Shard<E>,
        shard_of: Vec<u32>,
        my_shard: u32,
        num_shards: usize,
        now: Time,
        ext_seq: u64,
        trace_spec: Option<TraceSpec>,
        watchdog: Tick,
        sample_interval: Tick,
        checkpoint_interval: Tick,
        last_progress: Tick,
        link: WorkerLink,
        host: HostRecorder,
    }

    impl<E: WireCodec + Send + 'static> SequentialEngine<E> {
        /// Converts this fully built engine into the `my_shard`-th of
        /// `num_shards` worker shards, communicating through `link`.
        ///
        /// # Panics
        ///
        /// Panics if `num_shards` is zero, `my_shard` is out of range,
        /// or `shard_of` is not exactly one entry per component.
        pub fn into_worker(
            mut self,
            my_shard: u32,
            num_shards: usize,
            shard_of: Vec<u32>,
            link: WorkerLink,
        ) -> WorkerEngine<E> {
            assert!(num_shards > 0, "need at least one shard");
            assert!(
                (my_shard as usize) < num_shards,
                "worker index out of range"
            );
            assert_eq!(
                shard_of.len(),
                self.components.len(),
                "shard map must cover every component"
            );
            assert!(
                shard_of.iter().all(|&s| (s as usize) < num_shards),
                "shard map entry out of range"
            );
            let n = self.components.len();
            let mut shard = Shard {
                components: Vec::with_capacity(n),
                rngs: self.rngs.clone(),
                seqs: self.seqs.clone(),
                queue: EventQueue::new(),
                batch: Vec::new(),
                // Lifetime totals carry to shard 0, mirroring
                // `into_sharded`, so summed counters agree.
                events_executed: if my_shard == 0 {
                    Engine::events_executed(&self)
                } else {
                    0
                },
                batches: 0,
                batch_counts: [0; crate::engine::BATCH_BUCKETS],
            };
            shard.components.resize_with(n, || None);
            for (idx, slot) in self.components.drain(..).enumerate() {
                if shard_of[idx] == my_shard {
                    shard.components[idx] = slot;
                }
            }
            // Keep only locally targeted pending events; every worker
            // scheduled the same initial events with the same stamps, so
            // each foreign event exists — identically stamped — in its
            // owning worker's queue.
            let mut pending = Vec::new();
            while self.queue.take_batch(&mut pending) > 0 {
                for e in pending.drain(..) {
                    if shard_of.get(e.target.index()).copied() == Some(my_shard) {
                        shard.queue.push(e.target, e.time, e.payload);
                    }
                }
            }
            WorkerEngine {
                shard,
                shard_of,
                my_shard,
                num_shards,
                now: self.now,
                ext_seq: self.ext_seq,
                trace_spec: self.trace.as_ref().map(|t| t.spec),
                watchdog: self.watchdog,
                sample_interval: self.sample_interval,
                checkpoint_interval: 0,
                last_progress: self.last_progress,
                link,
                host: HostRecorder::new(),
            }
        }
    }

    impl<E: WireCodec + Send + 'static> WorkerEngine<E> {
        fn owned(&self, id: ComponentId) -> bool {
            self.shard_of.get(id.index()).copied() == Some(self.my_shard)
        }
    }

    impl<E: WireCodec + Send + 'static> Engine<E> for WorkerEngine<E> {
        /// External schedules must advance `ext_seq` on **every** worker
        /// to keep stamps aligned, but only the owning worker enqueues
        /// the event.
        fn schedule(&mut self, target: ComponentId, time: Time, payload: E) {
            assert!(time >= self.now, "cannot schedule into the past");
            let stamp = EventStamp {
                src: EXTERNAL_SRC,
                seq: self.ext_seq,
            };
            self.ext_seq += 1;
            if self.owned(target) {
                self.shard
                    .queue
                    .push(target, time, Stamped { stamp, payload });
            }
        }

        fn run_until(&mut self, tick_limit: Tick) -> RunStats {
            let start = Instant::now();
            let start_events = self.shard.events_executed;
            let link = self.link.clone();
            let mut transport = link.0.borrow_mut();
            // Track checkpoint boundaries by multiples of the interval,
            // not by `now`: after a pause the clock sits at the last
            // executed generation, which may be short of the boundary,
            // and recomputing from it would revisit the same edge
            // forever.
            let mut next_ckpt = (self.checkpoint_interval > 0)
                .then(|| next_edge_after(self.now.tick(), self.checkpoint_interval));
            let outcome = loop {
                let bound = next_ckpt.map_or(tick_limit, |c| c.min(tick_limit));
                let params = ProtocolParams {
                    my_shard: self.my_shard,
                    num_shards: self.num_shards,
                    tick_limit: bound,
                    watchdog: self.watchdog,
                    sample_interval: self.sample_interval,
                    start_now: self.now,
                    start_progress: self.last_progress,
                    trace_spec: self.trace_spec,
                    shard_of: &self.shard_of,
                    // The hub tracks live progress parent-side from the
                    // per-round event deltas; workers publish nothing.
                    progress_board: None,
                };
                let result = run_shard_rounds::<E, ProcessTransport>(
                    &mut self.shard,
                    &params,
                    &mut *transport,
                    &mut self.host,
                );
                match result {
                    Ok((outcome, end_now, end_progress)) => {
                        self.now = end_now;
                        self.last_progress = end_progress;
                        if outcome == RunOutcome::TickLimit && bound < tick_limit {
                            // Paused at a checkpoint boundary, unanimously
                            // across workers (the halt came from the folded
                            // global head). Ship this shard's blob; the hub
                            // collects one from every worker and writes the
                            // checkpoint file.
                            let profiling = self.host.enabled();
                            let t_ckpt = profiling.then(Instant::now);
                            let mut blob = Vec::new();
                            self.shard.save_state(
                                self.now,
                                self.ext_seq,
                                self.last_progress,
                                &mut blob,
                            );
                            if let Some(t0) = t_ckpt {
                                self.host.times.checkpoint_ns += t0.elapsed().as_nanos() as u64;
                                self.host.times.checkpoint_writes += 1;
                                self.host.times.checkpoint_bytes += blob.len() as u64;
                            }
                            if let Err(e) = transport.checkpoint(Time::at(bound), &blob) {
                                break RunOutcome::Failed(format!("transport: {e}"));
                            }
                            next_ckpt =
                                next_ckpt.and_then(|c| c.checked_add(self.checkpoint_interval));
                            continue;
                        }
                        // Tell the hub how the run ended; a send failure here
                        // degrades like any other transport error.
                        match transport.finish(
                            &outcome,
                            end_now,
                            end_progress,
                            &self.shard.metrics(),
                            &self.host.times,
                        ) {
                            Ok(()) => break outcome,
                            Err(e) => break RunOutcome::Failed(format!("transport: {e}")),
                        }
                    }
                    Err(e) => break RunOutcome::Failed(format!("transport: {e}")),
                }
            };
            RunStats {
                events_executed: self.shard.events_executed - start_events,
                end_time: self.now,
                queue_high_water: self.shard.queue.high_water_mark(),
                total_enqueued: self.shard.queue.total_enqueued(),
                wall: start.elapsed(),
                outcome,
            }
        }

        fn now(&self) -> Time {
            self.now
        }

        fn num_components(&self) -> usize {
            self.shard_of.len()
        }

        fn num_shards(&self) -> usize {
            self.num_shards
        }

        fn component(&self, id: ComponentId) -> Option<&dyn Component<E>> {
            if !self.owned(id) {
                return None;
            }
            self.shard
                .components
                .get(id.index())
                .and_then(|c| c.as_deref())
        }

        fn component_dyn_mut(&mut self, id: ComponentId) -> Option<&mut dyn Component<E>> {
            if !self.owned(id) {
                return None;
            }
            self.shard
                .components
                .get_mut(id.index())
                .and_then(|c| c.as_deref_mut())
        }

        /// Only this worker's shard; the hub collects the full set.
        fn shard_metrics(&self) -> Vec<EngineMetrics> {
            vec![self.shard.metrics()]
        }

        fn events_executed(&self) -> u64 {
            self.shard.events_executed
        }

        fn total_enqueued(&self) -> u64 {
            self.shard.queue.total_enqueued()
        }

        fn set_watchdog(&mut self, window: Tick) {
            self.watchdog = window;
        }

        fn set_sampler(&mut self, interval: Tick) {
            self.sample_interval = interval;
        }

        fn set_checkpoint_interval(&mut self, interval: Tick) {
            self.checkpoint_interval = interval;
        }

        fn set_host_profiling(&mut self, sample: u32) {
            self.host.set_sample(sample);
            self.host.reset_epoch();
        }

        /// Only this worker's shard; the hub collects the full set from
        /// the DONE frames.
        fn host_times(&self) -> Vec<crate::host::HostShardTimes> {
            if self.host.enabled() {
                vec![self.host.times.clone()]
            } else {
                Vec::new()
            }
        }

        /// Restores this worker's shard from the uniform engine blob of a
        /// checkpoint file. The trace section is skipped (the ring lives
        /// hub-side); the shard count must match, and only this worker's
        /// own blob is decoded.
        fn load_state(&mut self, buf: &mut &[u8]) -> bool
        where
            E: crate::wire::WireCodec,
        {
            let mut inner = || -> Option<()> {
                match crate::wire::get_u8(buf)? {
                    0 => {}
                    1 => {
                        crate::wire::get_bytes(buf)?;
                    }
                    _ => return None,
                }
                let shards = crate::wire::get_varint(buf)?;
                if shards != self.num_shards as u64 {
                    return None;
                }
                let mut scalars = None;
                for w in 0..self.num_shards {
                    let mut blob = crate::wire::get_bytes(buf)?;
                    if w == self.my_shard as usize {
                        let s = self.shard.load_state(&mut blob)?;
                        if !blob.is_empty() {
                            return None;
                        }
                        scalars = Some(s);
                    }
                }
                let s = scalars?;
                self.now = s.now;
                self.ext_seq = s.ext_seq;
                self.last_progress = s.last_progress;
                Some(())
            };
            inner().is_some()
        }

        /// Arms record collection. The ring `capacity` is ignored here:
        /// the buffer lives hub-side, where the per-round merge happens.
        fn set_trace(&mut self, spec: TraceSpec, _capacity: usize) {
            self.trace_spec = Some(spec);
        }

        fn trace_enabled(&self) -> bool {
            self.trace_spec.is_some()
        }

        /// Always empty: records ship to the hub every round.
        fn trace_records(&self) -> Vec<TraceEvent> {
            Vec::new()
        }
    }

    impl<E> std::fmt::Debug for WorkerEngine<E> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("WorkerEngine")
                .field("shard", &self.my_shard)
                .field("num_shards", &self.num_shards)
                .field("components", &self.shard_of.len())
                .field("pending_events", &self.shard.queue.len())
                .field("now", &self.now)
                .finish()
        }
    }
}
