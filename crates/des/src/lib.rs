#![warn(missing_docs)]

//! Discrete-event simulation core for SuperSim-rs.
//!
//! This crate is the foundation of the simulator described in §III of the
//! SuperSim paper (ISPASS 2018): a discrete event simulation (DES) engine in
//! which *components* create *events*, events are ordered by a hierarchical
//! time value of (*tick*, *epsilon*), and an executor drains a priority queue
//! until it runs empty.
//!
//! The crate is deliberately generic over the event payload type `E` so that
//! the engine can be tested (and reused) independently of the network
//! simulator built on top of it.
//!
//! # Example
//!
//! ```
//! use supersim_des::{Component, Context, Simulator, Time};
//!
//! struct Counter {
//!     fires: u64,
//! }
//!
//! impl Component<u64> for Counter {
//!     fn name(&self) -> &str {
//!         "counter"
//!     }
//!     fn handle(&mut self, ctx: &mut Context<'_, u64>, event: u64) {
//!         self.fires += 1;
//!         if event < 3 {
//!             // Re-schedule ourselves one tick later.
//!             ctx.schedule_self(ctx.now().plus_ticks(1), event + 1);
//!         }
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any {
//!         self
//!     }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
//!         self
//!     }
//! }
//!
//! let mut sim = Simulator::new(0xC0FFEE);
//! let id = sim.add_component(Box::new(Counter { fires: 0 }));
//! sim.schedule(id, Time::at(0), 0u64);
//! let stats = sim.run();
//! assert_eq!(stats.events_executed, 4);
//! assert_eq!(sim.component_as::<Counter>(id).unwrap().fires, 4);
//! ```

mod clock;
mod component;
mod engine;
mod event;
mod host;
#[cfg(all(test, feature = "proptest"))]
mod proptests;
mod protocol;
mod rng;
mod sharded;
mod simulator;
mod snapshot;
mod time;
mod trace;
mod transport;
pub mod wire;

pub use clock::Clock;
pub use component::{Component, ComponentId};
pub use engine::{
    Context, Engine, EngineMetrics, EventStamp, RunOutcome, RunStats, BATCH_BUCKETS, EXTERNAL_SRC,
};
pub use event::{EventEntry, EventQueue};
pub use host::{HostRecorder, HostRoundSlice, HostShardTimes, ProgressShared, MAX_ROUND_SLICES};
#[cfg(unix)]
pub use protocol::WorkerEngine;
pub use rng::{Rng, SampleRange};
pub use sharded::ShardedEngine;
pub use simulator::{SequentialEngine, Simulator};
pub use time::{Epsilon, Tick, Time};
pub use trace::{TraceBuffer, TraceEvent, TraceSpec};
pub use transport::TransportError;
#[cfg(unix)]
pub use transport::{Hub, HubHostStats, HubResult, ProcessTransport, WorkerLink, WorkerSetup};
