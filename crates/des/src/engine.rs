//! The engine abstraction: what it means to execute a simulation.
//!
//! The executor is split from the component model so that one simulation
//! can run on either backend:
//!
//! - [`SequentialEngine`](crate::SequentialEngine) — the single-threaded
//!   calendar-queue executor (the original `Simulator`, which remains as a
//!   type alias),
//! - [`ShardedEngine`](crate::ShardedEngine) — components partitioned
//!   across worker threads advancing in conservatively synchronized
//!   rounds.
//!
//! # The determinism contract
//!
//! Both engines produce **bit-identical** simulations for the same
//! `(configuration, seed)`: the same events in the same canonical order,
//! the same per-component random draws, and the same trace byte stream.
//! Three mechanisms make that possible:
//!
//! 1. **Event stamps.** Every scheduled event carries an [`EventStamp`]:
//!    the scheduling component's id and that component's monotone send
//!    counter (external schedules use [`EXTERNAL_SRC`] and an engine-level
//!    counter). Stamps are unique and depend only on each component's own
//!    execution history — not on how components interleave.
//! 2. **Canonical batch order.** All events at the earliest pending
//!    `(tick, epsilon)` form one *generation*; both engines sort each
//!    generation by stamp before dispatch. By induction, identical
//!    generations produce identical per-component histories, hence
//!    identical stamps, hence identical future generations.
//! 3. **Per-component random streams.** Each component draws from its own
//!    [`Rng::stream`](crate::Rng::stream) generator derived from
//!    `(seed, component index)`, so no draw depends on global ordering.
//!
//! Events scheduled *during* a generation at the same `(tick, epsilon)`
//! join the **next** generation — this was already the sequential batch
//! semantics, and it is exactly what a barrier-synchronized engine can
//! guarantee for cross-shard events, so zero-latency messages (e.g. the
//! workload monitor's same-tick command broadcast) need no special case.

use std::fmt;
use std::time::Duration;

use crate::component::{Component, ComponentId};
use crate::event::EventQueue;
use crate::rng::Rng;
use crate::time::{Tick, Time};
use crate::trace::{TraceBuffer, TraceEvent, TraceSpec};

/// Stamp `src` for events scheduled from outside any component
/// ([`Engine::schedule`]).
pub const EXTERNAL_SRC: u32 = u32::MAX;

/// The canonical identity of a scheduled event: who scheduled it and at
/// which position in the scheduler's own send history.
///
/// Stamps order each generation identically on every engine: unique
/// (per-source counters never repeat), and dependent only on the sending
/// component's execution history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventStamp {
    /// Component id of the scheduler, or [`EXTERNAL_SRC`].
    pub src: u32,
    /// The scheduler's send counter at the time of scheduling.
    pub seq: u64,
}

/// An event payload wrapped with its canonical stamp — what engines
/// actually store in their queues.
#[derive(Debug, Clone)]
pub(crate) struct Stamped<E> {
    pub stamp: EventStamp,
    pub payload: E,
}

/// A trace record tagged for deterministic merging: the stamp of the
/// event whose handler recorded it, plus the record's index within that
/// handler invocation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TaggedTrace {
    pub stamp: EventStamp,
    pub recno: u32,
    pub ev: TraceEvent,
}

/// Why a run call returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue ran empty: the simulation is over.
    Drained,
    /// A component requested an orderly stop via [`Context::stop`].
    Stopped,
    /// The tick limit given to [`Engine::run_until`] was reached.
    TickLimit,
    /// A component reported a fatal modeling error via [`Context::fail`].
    Failed(String),
    /// The no-progress watchdog fired: events kept executing (or were
    /// pending) but no component reported progress via
    /// [`Context::progress`] for longer than the configured window —
    /// livelock, or a deadlock still burning idle events.
    Watchdog {
        /// The last tick at which progress was reported (0 if never).
        last_progress: Tick,
    },
}

impl RunOutcome {
    /// Whether the run ended without a component-reported error or a
    /// watchdog trip.
    pub fn is_ok(&self) -> bool {
        !matches!(self, RunOutcome::Failed(_) | RunOutcome::Watchdog { .. })
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Drained => write!(f, "event queue drained"),
            RunOutcome::Stopped => write!(f, "stopped by component request"),
            RunOutcome::TickLimit => write!(f, "tick limit reached"),
            RunOutcome::Failed(msg) => write!(f, "failed: {msg}"),
            RunOutcome::Watchdog { last_progress } => write!(
                f,
                "watchdog: no progress since tick {last_progress} (deadlock or livelock)"
            ),
        }
    }
}

/// Engine statistics for one run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Events executed during the run.
    pub events_executed: u64,
    /// Simulation time of the last executed event.
    pub end_time: Time,
    /// Largest number of simultaneously pending events. On the sharded
    /// engine this is the sum of per-shard high-water marks (an upper
    /// bound of the global value) — a capacity diagnostic, not part of
    /// the cross-engine determinism contract.
    pub queue_high_water: usize,
    /// Total events enqueued over the lifetime of the engine.
    pub total_enqueued: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// How the run ended.
    pub outcome: RunOutcome,
}

impl RunStats {
    /// Events executed per wall-clock second, or 0 for an empty run.
    pub fn events_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events_executed as f64 / secs
        } else {
            0.0
        }
    }
}

/// Number of log₂ batch-size buckets: bucket 0 is unused (a batch has at
/// least one event), bucket `i` covers sizes in `[2^(i-1), 2^i)`.
pub const BATCH_BUCKETS: usize = 65;

/// Per-shard engine self-metrics accumulated over the engine's lifetime.
/// The sequential engine reports exactly one shard.
///
/// The `des` crate sits below the stats crate in the dependency order, so
/// the batch-size distribution is exposed as a raw log₂-bucketed count
/// array; higher layers convert it into their histogram type.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Events executed on this shard since construction.
    pub events_executed: u64,
    /// Same-`(tick, epsilon)` batches this shard dispatched.
    pub batches: u64,
    /// Log₂-bucketed distribution of executed batch sizes: bucket `i > 0`
    /// counts batches of `[2^(i-1), 2^i)` events. Sums to `batches`; the
    /// weighted sum of sizes is `events_executed`.
    pub batch_counts: [u64; BATCH_BUCKETS],
    /// Events pending right now in this shard's queue.
    pub queue_len: usize,
    /// Largest number of simultaneously pending events ever observed.
    pub queue_high_water: usize,
    /// Events ever enqueued into this shard's queue.
    pub total_enqueued: u64,
    /// Current ring horizon in ticks.
    pub horizon: usize,
    /// Adaptive horizon doublings performed.
    pub horizon_resizes: u64,
    /// Pushes that landed in the overflow heap instead of the ring.
    pub overflow_spills: u64,
    /// Events currently parked in the overflow heap.
    pub overflow_len: usize,
}

/// The first sampling-window edge strictly after `now`: edges lie at
/// `k * interval` for `k = 1, 2, …` (saturating, so an absurdly large
/// interval simply never fires).
#[inline]
pub(crate) fn next_edge_after(now: Tick, interval: Tick) -> Tick {
    debug_assert!(interval > 0, "sampler must be armed");
    (now / interval).saturating_add(1).saturating_mul(interval)
}

/// Log₂ bucket index shared with the stats crate's histogram: 0 → 0,
/// otherwise `64 - leading_zeros(v)`.
#[inline]
pub(crate) fn log2_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Where a [`Context`] delivers scheduled events.
pub(crate) enum SinkRef<'a, E> {
    /// Single queue (sequential engine, or shard-local fast path).
    Local(&'a mut EventQueue<Stamped<E>>),
    /// Sharded routing: local targets go to this shard's queue, remote
    /// targets to the per-destination outbox flushed at the next barrier.
    Sharded {
        queue: &'a mut EventQueue<Stamped<E>>,
        /// Component index → owning shard. Unknown targets route to
        /// shard 0, which reports the usual unregistered-target failure.
        shard_of: &'a [u32],
        my_shard: u32,
        outboxes: &'a mut [Vec<(ComponentId, Time, Stamped<E>)>],
    },
}

/// Trace collection state for one handler invocation.
pub(crate) struct TraceSink<'a> {
    pub spec: TraceSpec,
    pub stamp: EventStamp,
    pub recno: u32,
    pub out: &'a mut Vec<TaggedTrace>,
}

/// The execution context handed to a component while it processes an
/// event.
///
/// Through the context a component can read the current time, schedule new
/// events (for itself or any other component), draw deterministic random
/// numbers, record trace events, and signal stop or failure.
pub struct Context<'a, E> {
    pub(crate) now: Time,
    pub(crate) self_id: ComponentId,
    pub(crate) sink: SinkRef<'a, E>,
    /// This component's monotone send counter (stamp source).
    pub(crate) seq: &'a mut u64,
    /// This component's private random stream.
    pub(crate) rng: &'a mut Rng,
    pub(crate) stop_requested: &'a mut bool,
    pub(crate) failure: &'a mut Option<String>,
    /// Set by [`Context::progress`]; the engine folds it into its
    /// no-progress watchdog after each generation.
    pub(crate) progress: &'a mut bool,
    /// `None` while tracing is disabled — the off path is one branch.
    pub(crate) trace: Option<TraceSink<'a>>,
}

impl<E> Context<'_, E> {
    /// The time of the event currently being processed.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the component currently processing an event.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Schedules `payload` for `target` at `time`.
    ///
    /// `time` must not be in the past. Scheduling at exactly the current
    /// `(tick, epsilon)` is allowed and runs in the next generation (after
    /// every event of the current one); use [`Time::next_epsilon`] to make
    /// intra-tick ordering explicit.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`Context::now`] — scheduling into
    /// the past is always a bug in a component model.
    #[inline]
    pub fn schedule(&mut self, target: ComponentId, time: Time, payload: E) {
        assert!(
            time >= self.now,
            "component {} scheduled an event into the past ({} < {})",
            self.self_id,
            time,
            self.now
        );
        let stamp = EventStamp {
            src: self.self_id.0,
            seq: *self.seq,
        };
        *self.seq += 1;
        let stamped = Stamped { stamp, payload };
        match &mut self.sink {
            SinkRef::Local(queue) => queue.push(target, time, stamped),
            SinkRef::Sharded {
                queue,
                shard_of,
                my_shard,
                outboxes,
            } => {
                let dest = shard_of.get(target.index()).copied().unwrap_or(0);
                if dest == *my_shard {
                    queue.push(target, time, stamped);
                } else {
                    outboxes[dest as usize].push((target, time, stamped));
                }
            }
        }
    }

    /// Schedules `payload` for this component itself at `time`.
    #[inline]
    pub fn schedule_self(&mut self, time: Time, payload: E) {
        self.schedule(self.self_id, time, payload);
    }

    /// This component's deterministic random number generator.
    ///
    /// Every component owns an independent stream derived from
    /// `(seed, component index)`, so draws are reproducible regardless of
    /// execution interleaving — see [`Rng::stream`].
    #[inline]
    pub fn rng(&mut self) -> &mut Rng {
        self.rng
    }

    /// Whether trace collection is active (and worth preparing records
    /// for).
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Records a trace event if tracing is enabled and the record passes
    /// the engine's [`TraceSpec`]. `kind` must be `< 8`.
    #[inline]
    pub fn trace(&mut self, kind: u8, src: u32, id: u64, sub: u32) {
        let Some(sink) = &mut self.trace else {
            return;
        };
        if !sink.spec.accepts(kind, src, id) {
            return;
        }
        sink.out.push(TaggedTrace {
            stamp: sink.stamp,
            recno: sink.recno,
            ev: TraceEvent {
                time: self.now,
                src,
                kind,
                id,
                sub,
            },
        });
        sink.recno += 1;
    }

    /// Requests an orderly stop, leaving remaining events pending. The
    /// sequential engine returns after the current event completes; the
    /// sharded engine completes the current generation first (stop is a
    /// cooperative signal, not an abort, so both are valid stop points).
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }

    /// Reports a fatal modeling error (paper §IV-D error detection). The
    /// engine halts and surfaces the message in [`RunOutcome::Failed`].
    pub fn fail(&mut self, message: impl Into<String>) {
        if self.failure.is_none() {
            *self.failure = Some(message.into());
        }
    }

    /// Reports forward progress to the no-progress watchdog. Models call
    /// this on externally meaningful work (the network interfaces call it
    /// per delivered flit); mere event churn does not count, so livelock
    /// — events executing forever without delivering anything — trips the
    /// watchdog just like deadlock. Free when no watchdog is armed (the
    /// engine only reads the flag).
    #[inline]
    pub fn progress(&mut self) {
        *self.progress = true;
    }
}

/// An execution backend: owns registered components and pending events,
/// and advances the simulation.
///
/// Object-safe so callers can hold a `Box<dyn Engine<E>>` chosen at
/// configuration time. Construction is backend-specific (components are
/// registered on a [`SequentialEngine`](crate::SequentialEngine), which
/// can then be [sharded](crate::SequentialEngine::into_sharded)).
pub trait Engine<E: 'static>: fmt::Debug {
    /// Enqueues an initial event from outside any component.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current simulation time.
    fn schedule(&mut self, target: ComponentId, time: Time, payload: E);

    /// Runs until the queue drains, a component stops or fails, or the
    /// next event would execute at a tick strictly greater than
    /// `tick_limit`.
    fn run_until(&mut self, tick_limit: Tick) -> RunStats;

    /// Runs until the event queue drains, a component stops or fails.
    fn run(&mut self) -> RunStats {
        self.run_until(Tick::MAX)
    }

    /// Current simulation time (time of the most recent event).
    fn now(&self) -> Time;

    /// Number of registered components.
    fn num_components(&self) -> usize;

    /// Number of shards executing this simulation (1 for sequential).
    fn num_shards(&self) -> usize;

    /// Borrows a component by id. `None` for an unknown id.
    fn component(&self, id: ComponentId) -> Option<&dyn Component<E>>;

    /// Mutably borrows a component by id. `None` for an unknown id.
    fn component_dyn_mut(&mut self, id: ComponentId) -> Option<&mut dyn Component<E>>;

    /// Per-shard self-metrics, in shard order (one entry for sequential).
    fn shard_metrics(&self) -> Vec<EngineMetrics>;

    /// Events executed since construction, across all shards.
    fn events_executed(&self) -> u64;

    /// Events ever enqueued, across all shards.
    fn total_enqueued(&self) -> u64;

    /// Arms the no-progress watchdog: a run breaks with
    /// [`RunOutcome::Watchdog`] when the next pending event lies more
    /// than `window` ticks after the last reported progress
    /// ([`Context::progress`]). `window = 0` disarms it. The check is a
    /// pure function of the deterministic event stream, so the trip tick
    /// is identical on every backend and shard count.
    fn set_watchdog(&mut self, window: Tick);

    /// Arms the windowed sampler: before executing the first generation
    /// at or past each window edge `k * interval` (`k = 1, 2, …`), the
    /// engine calls [`Component::sample`] with that edge on every
    /// component. Edges are crossed in order and each exactly once, even
    /// when a single generation jumps several windows; a run that ends
    /// mid-window never closes the trailing partial window. The edge
    /// sequence is a pure function of the global generation sequence, so
    /// sampling is identical on every backend and shard count (each shard
    /// samples its own components at the barrier round covering the
    /// edge). `interval = 0` disarms the sampler; the disabled path costs
    /// one branch per generation.
    fn set_sampler(&mut self, interval: Tick);

    /// Enables trace collection into a ring of `capacity` records
    /// matching `spec`. Replaces any previous trace state.
    fn set_trace(&mut self, spec: TraceSpec, capacity: usize);

    /// Whether trace collection is enabled.
    fn trace_enabled(&self) -> bool;

    /// The collected trace records in canonical order, empty when
    /// tracing is disabled.
    fn trace_records(&self) -> Vec<TraceEvent>;

    /// Serializes the engine's complete dynamic state — clock, pending
    /// events, per-component RNG streams and send counters, component
    /// snapshots, trace ring, and lifetime counters — into `out`, so a
    /// later [`Engine::load_state`] on an identically *built* engine
    /// resumes the run with byte-identical results.
    ///
    /// Only meaningful at a quiescent point: between [`Engine::run_until`]
    /// calls (the engine paused at a tick limit) or before the first run.
    /// Returns `false` when the backend does not support checkpointing
    /// (the default).
    fn save_state(&self, out: &mut Vec<u8>) -> bool
    where
        E: crate::wire::WireCodec,
    {
        let _ = out;
        false
    }

    /// Overlays dynamic state captured by [`Engine::save_state`] onto
    /// this engine, which must have been freshly built from the same
    /// configuration (same components, same shard layout). Total:
    /// malformed or mismatched state yields `false` and the engine must
    /// not be used afterwards.
    fn load_state(&mut self, buf: &mut &[u8]) -> bool
    where
        E: crate::wire::WireCodec,
    {
        let _ = buf;
        false
    }

    /// Arms transport-driven checkpointing (multi-process workers only):
    /// the engine emits its state to the hub whenever the run crosses a
    /// `k * interval` tick boundary. A no-op on backends whose caller
    /// drives checkpointing by segmenting [`Engine::run_until`].
    fn set_checkpoint_interval(&mut self, interval: Tick) {
        let _ = interval;
    }

    /// Arms host-time profiling: phase wall-times are measured every
    /// batch and per-event component-class attribution runs on one batch
    /// in `sample`. `sample = 0` (the default) disarms profiling — the
    /// disabled path costs one branch per batch. Host clocks are
    /// strictly out-of-band: they never influence event ordering,
    /// delivery, or any deterministic output.
    fn set_host_profiling(&mut self, sample: u32) {
        let _ = sample;
    }

    /// The host-time records collected so far, one per shard in shard
    /// order. Empty when profiling is disarmed or unsupported.
    fn host_times(&self) -> Vec<crate::host::HostShardTimes> {
        Vec::new()
    }

    /// Installs a live-progress board the engine publishes to after each
    /// batch (cumulative events, current tick). Relaxed atomic stores
    /// only — the board is read by an out-of-band heartbeat emitter and
    /// never feeds back into the simulation.
    fn set_progress(&mut self, progress: std::sync::Arc<crate::host::ProgressShared>) {
        let _ = progress;
    }
}

impl<E: 'static> dyn Engine<E> + '_ {
    /// Downcasts a component to its concrete type for post-run
    /// inspection.
    pub fn component_as<T: 'static>(&self, id: ComponentId) -> Option<&T> {
        self.component(id)
            .and_then(|c| c.as_any().downcast_ref::<T>())
    }

    /// Mutable variant of [`component_as`](Self::component_as).
    pub fn component_as_mut<T: 'static>(&mut self, id: ComponentId) -> Option<&mut T> {
        self.component_dyn_mut(id)
            .and_then(|c| c.as_any_mut().downcast_mut::<T>())
    }
}

/// Moves one finished generation's trace records into the ring.
///
/// `round` must already be in canonical order — naturally true for the
/// sequential engine, established by a stamp sort for the sharded merge.
pub(crate) fn flush_trace(buffer: &mut TraceBuffer, round: &mut Vec<TaggedTrace>) {
    for t in round.drain(..) {
        buffer.push(t.ev);
    }
}
