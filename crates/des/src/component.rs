//! The component model (paper §III-A).
//!
//! A simulation is natively built of components which are able to create
//! events. Components interact exclusively by scheduling events for each
//! other through the [`Context`](crate::Context) handed to
//! [`Component::handle`]; same-tick interactions use the next epsilon to
//! preserve intra-tick ordering (see [`Time`](crate::Time)).

use std::any::Any;
use std::fmt;

use crate::engine::Context;
use crate::time::Tick;

/// Identifier of a component registered with a
/// [`Simulator`](crate::Simulator).
///
/// Ids are dense indices assigned in registration order, which makes them
/// cheap to store inside events and wiring tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// The raw index of this component.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index.
    ///
    /// Intended for wiring tables that store component indices compactly;
    /// scheduling an event at an id that was never registered is reported as
    /// a simulation error by the executor.
    ///
    /// # Panics
    ///
    /// Debug builds panic when `index` does not fit the compact `u32`
    /// representation; release builds must use
    /// [`ComponentId::try_from_index`] when the index is not known to be
    /// in range, since silent truncation would alias two components.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(
            index <= u32::MAX as usize,
            "component index {index} exceeds the u32 id space"
        );
        ComponentId(index as u32)
    }

    /// Checked variant of [`ComponentId::from_index`]: `None` when `index`
    /// exceeds the `u32` id space instead of truncating.
    #[inline]
    pub fn try_from_index(index: usize) -> Option<Self> {
        u32::try_from(index).ok().map(ComponentId)
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "component#{}", self.0)
    }
}

/// A simulation model that receives and creates events.
///
/// `E` is the event payload type shared by all components of one simulator.
/// Implementations should be cheap to call: `handle` runs once per event on
/// the simulator's hot path.
///
/// The `as_any` hooks allow the owner of a simulation to downcast components
/// back to their concrete types after the run, e.g. to extract recorded
/// statistics. A typical implementation is two one-line methods returning
/// `self`.
///
/// Components are required to be [`Send`] so that the sharded engine can
/// move them onto worker threads; a component still only ever runs on one
/// thread at a time (no `Sync` requirement), so ordinary owned state needs
/// no synchronization.
pub trait Component<E>: Any + Send {
    /// Short human-readable name used in error messages and traces.
    fn name(&self) -> &str;

    /// Processes one event addressed to this component.
    fn handle(&mut self, ctx: &mut Context<'_, E>, event: E);

    /// Closes one sampling window at the window edge `edge` (a multiple
    /// of the interval armed via
    /// [`Engine::set_sampler`](crate::Engine::set_sampler)).
    ///
    /// The engine guarantees that every event with a tick strictly below
    /// `edge` has executed and no event at or beyond `edge` has, so the
    /// component's state is exactly its state at the window boundary —
    /// on every backend and shard count. Components that participate in
    /// the time-series plane snapshot their counters here; the default
    /// is a no-op so ordinary components ignore sampling entirely.
    fn sample(&mut self, edge: Tick) {
        let _ = edge;
    }

    /// Coarse component class used by the host-time profiler to bucket
    /// per-event wall time (e.g. `"router"`, `"interface"`,
    /// `"monitor"`). Called only on sampled batches when host profiling
    /// is armed, never on the common path. Purely observational: the
    /// returned label feeds wall-clock attribution, not simulation
    /// state.
    fn host_class(&self) -> &'static str {
        "component"
    }

    /// Upcast for post-run inspection.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for post-run inspection.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Appends this component's *dynamic* state to `out` for a
    /// checkpoint.
    ///
    /// Structural state (wiring, tables, configuration) is rebuilt from
    /// the configuration on restore; only state that evolves during the
    /// run belongs here. Encoding must be a pure function of the state
    /// (the wire-plane rule), so identical states snapshot to identical
    /// bytes. The default captures nothing, which is correct for
    /// stateless components.
    fn snapshot(&self, out: &mut Vec<u8>) {
        let _ = out;
    }

    /// Overlays dynamic state captured by [`Component::snapshot`] onto
    /// this freshly rebuilt component. Total: malformed input yields
    /// `None`, never a panic. The default accepts the empty snapshot.
    fn restore(&mut self, buf: &mut &[u8]) -> Option<()> {
        let _ = buf;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        let id = ComponentId::from_index(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.to_string(), "component#17");
    }

    #[test]
    fn id_ordering_is_index_ordering() {
        assert!(ComponentId::from_index(1) < ComponentId::from_index(2));
    }

    #[test]
    fn try_from_index_rejects_oversized_indices() {
        assert_eq!(
            ComponentId::try_from_index(u32::MAX as usize),
            Some(ComponentId(u32::MAX))
        );
        assert_eq!(ComponentId::try_from_index(u32::MAX as usize + 1), None);
        assert_eq!(ComponentId::try_from_index(usize::MAX), None);
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 id space")]
    #[cfg(debug_assertions)]
    fn from_index_asserts_on_truncation() {
        let _ = ComponentId::from_index(1usize << 40);
    }
}
