//! The event queue (paper §III-A, Figure 1): a two-level calendar queue.
//!
//! Events are ordered by their [`Time`] (tick first, then epsilon). Events
//! with identical times are executed in the order they were enqueued, which
//! keeps simulations deterministic.
//!
//! # Why a calendar queue
//!
//! A flit-level simulation schedules almost everything a handful of ticks
//! into the future: channel traversals at fixed channel latencies, credit
//! returns, and clock edges at fixed periods. A global `BinaryHeap` pays an
//! `O(log n)` comparator-heavy sift on every one of those operations and
//! needs an explicit sequence number on every event just to keep equal-time
//! pops FIFO. This queue instead keeps a **ring of per-tick buckets**
//! covering a near-future horizon: pushes within the horizon are `O(1)`,
//! pops take the front of the current bucket, and FIFO order for equal
//! `(tick, epsilon)` events is structural — bucket insertion order *is*
//! enqueue order, no tie-break needed. Events beyond the horizon go to a
//! small overflow `BinaryHeap` (they are rare: long warmup timers,
//! far-future monitors) and drain into the ring as the horizon advances
//! past them. An occupancy bitmap (one bit per bucket) lets the queue skip
//! runs of empty ticks a word at a time.
//!
//! # Storage: slab + intrusive lists
//!
//! Buckets are **not** `Vec`s. Every pending ring event lives in one shared
//! slab (`Vec<Slot<E>>`), and each bucket is just a `(head, tail)` pair of
//! slab indices threading an intrusive singly-linked list through the slab.
//! A push is a slab append (amortized `O(1)`, reusing freed slots via a
//! free list) plus one link write — crucially there is **no per-bucket
//! allocation**, so workloads that scatter events thinly over many ticks
//! (one event per bucket) do not pay one `malloc` per event the way
//! `Vec`-buckets would. This is the classic timing-wheel representation.
//!
//! The executor additionally drains whole same-`(tick, epsilon)` batches
//! through [`EventQueue::take_batch`] so the hot loop does not re-examine
//! the queue between events that are already known to be ready.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::component::ComponentId;
use crate::time::{Epsilon, Tick, Time};

/// One scheduled event: when to run, who runs it, and its payload.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// Execution time of the event.
    pub time: Time,
    /// The component that will execute the event.
    pub target: ComponentId,
    /// Component-specific payload.
    pub payload: E,
}

/// An event parked beyond the ring horizon, waiting in the overflow heap.
///
/// Only overflow events need an explicit FIFO sequence number: ring
/// buckets get FIFO from insertion order.
#[derive(Debug)]
struct OverflowEntry<E> {
    time: Time,
    seq: u64,
    target: ComponentId,
    payload: E,
}

impl<E> PartialEq for OverflowEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for OverflowEntry<E> {}

impl<E> PartialOrd for OverflowEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for OverflowEntry<E> {
    /// Reverse ordering so that the `BinaryHeap` (a max-heap) presents the
    /// *earliest* event at its head.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Default near-future horizon in ticks (must be a power of two).
///
/// Flit, credit, and clock events land within a few ticks of `now`; 4096
/// ticks of headroom keeps even long channel pipelines and slow clocks in
/// the O(1) ring while costing only 32 KiB of bucket list heads.
const DEFAULT_HORIZON: usize = 4096;

/// Upper bound for adaptive horizon growth (2^20 buckets = 8 MiB of
/// bucket list heads). Workloads spread wider than this keep using the
/// overflow heap beyond the ring.
const MAX_HORIZON: usize = 1 << 20;

/// Sentinel slab index: "no slot".
const NIL: u32 = u32::MAX;

/// One slab cell: a pending ring event plus its intrusive `next` link.
///
/// Free cells keep `payload: None` and reuse `next` as the free-list link.
#[derive(Debug)]
struct Slot<E> {
    time: Time,
    target: ComponentId,
    next: u32,
    payload: Option<E>,
}

/// A bucket: head/tail slab indices of its intrusive event list
/// (`NIL`/`NIL` when empty). 8 bytes, so a cache line covers 8 buckets.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
}

impl Bucket {
    const EMPTY: Bucket = Bucket {
        head: NIL,
        tail: NIL,
    };
}

/// The simulator's global event queue: per-tick ring buckets over a
/// near-future horizon, backed by an overflow heap for far-future events.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Backing store for all ring events; freed cells chain from
    /// `free_head`.
    slab: Vec<Slot<E>>,
    /// Head of the free-slot chain through `slab` (`NIL` when exhausted).
    free_head: u32,
    /// `buckets[t & mask]` lists the events for tick `t`, for `t` in
    /// `[cur_tick, cur_tick + horizon)`, in enqueue order.
    buckets: Box<[Bucket]>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupancy: Box<[u64]>,
    /// `buckets.len() - 1`; bucket count is a power of two.
    mask: usize,
    /// The earliest tick the ring can currently hold (the cursor).
    cur_tick: u64,
    /// Events currently stored in ring buckets.
    ring_len: usize,
    /// Far-future events, ordered by `(time, seq)`.
    overflow: BinaryHeap<OverflowEntry<E>>,
    /// FIFO tie-break for overflow events only.
    overflow_seq: u64,
    /// Lifetime count of pushes (explicit — not derived from any seq).
    total_enqueued: u64,
    /// Largest `len()` ever observed.
    max_len: usize,
    /// Lifetime count of pushes that landed in the overflow heap.
    overflow_spills: u64,
    /// Lifetime count of horizon doublings performed by `maybe_grow`.
    horizon_resizes: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the default near-future horizon.
    pub fn new() -> Self {
        Self::with_horizon(DEFAULT_HORIZON)
    }

    /// Creates an empty queue whose ring covers `horizon` ticks.
    ///
    /// # Panics
    ///
    /// Panics unless `horizon` is a power of two of at least 64.
    pub fn with_horizon(horizon: usize) -> Self {
        assert!(
            horizon >= 64 && horizon.is_power_of_two(),
            "horizon must be a power of two >= 64, got {horizon}"
        );
        EventQueue {
            slab: Vec::new(),
            free_head: NIL,
            buckets: vec![Bucket::EMPTY; horizon].into_boxed_slice(),
            occupancy: vec![0u64; horizon / 64].into_boxed_slice(),
            mask: horizon - 1,
            cur_tick: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            overflow_seq: 0,
            total_enqueued: 0,
            max_len: 0,
            overflow_spills: 0,
            horizon_resizes: 0,
        }
    }

    /// The number of ticks the ring covers.
    #[inline]
    pub fn horizon(&self) -> usize {
        self.mask + 1
    }

    #[inline]
    fn set_occupied(&mut self, idx: usize) {
        self.occupancy[idx >> 6] |= 1u64 << (idx & 63);
    }

    #[inline]
    fn clear_occupied(&mut self, idx: usize) {
        self.occupancy[idx >> 6] &= !(1u64 << (idx & 63));
    }

    /// Takes a slab cell (reusing a freed one if possible) and fills it.
    #[inline]
    fn alloc_slot(&mut self, time: Time, target: ComponentId, payload: E) -> u32 {
        if self.free_head != NIL {
            let i = self.free_head;
            let slot = &mut self.slab[i as usize];
            self.free_head = slot.next;
            slot.time = time;
            slot.target = target;
            slot.next = NIL;
            slot.payload = Some(payload);
            i
        } else {
            let i = self.slab.len();
            assert!(i < NIL as usize, "event slab exhausted u32 index space");
            self.slab.push(Slot {
                time,
                target,
                next: NIL,
                payload: Some(payload),
            });
            i as u32
        }
    }

    /// Returns cell `i` to the free list and yields its event.
    #[inline]
    fn free_slot(&mut self, i: u32) -> EventEntry<E> {
        let slot = &mut self.slab[i as usize];
        let payload = slot.payload.take().expect("freeing an empty slot");
        let entry = EventEntry {
            time: slot.time,
            target: slot.target,
            payload,
        };
        slot.next = self.free_head;
        self.free_head = i;
        entry
    }

    /// Appends slab cell `slot` to bucket `idx` and updates occupancy.
    #[inline]
    fn link_back(&mut self, idx: usize, slot: u32) {
        let bucket = self.buckets[idx];
        if bucket.tail == NIL {
            self.buckets[idx] = Bucket {
                head: slot,
                tail: slot,
            };
            self.set_occupied(idx);
        } else {
            self.slab[bucket.tail as usize].next = slot;
            self.buckets[idx].tail = slot;
        }
        self.ring_len += 1;
    }

    /// Enqueues an event for `target` at `time`.
    ///
    /// Callers must not schedule before the time of the last popped event
    /// (the simulator enforces this with its not-into-the-past assertion).
    #[inline]
    pub fn push(&mut self, target: ComponentId, time: Time, payload: E) {
        debug_assert!(
            time.tick() >= self.cur_tick,
            "push at tick {} behind queue cursor {}",
            time.tick(),
            self.cur_tick
        );
        self.total_enqueued += 1;
        if time.tick().wrapping_sub(self.cur_tick) <= self.mask as u64 {
            let idx = time.tick() as usize & self.mask;
            let slot = self.alloc_slot(time, target, payload);
            self.link_back(idx, slot);
        } else {
            let seq = self.overflow_seq;
            self.overflow_seq += 1;
            self.overflow_spills += 1;
            self.overflow.push(OverflowEntry {
                time,
                seq,
                target,
                payload,
            });
            self.maybe_grow();
        }
        let len = self.len();
        if len > self.max_len {
            self.max_len = len;
        }
    }

    /// Adaptive resize: when the overflow heap holds more than a quarter
    /// as many events as the ring has buckets — i.e. the workload's
    /// scheduling span outgrew the horizon — double the horizon
    /// (re-bucketing ring events and pulling in the overflow events that
    /// now fit), as a classic calendar queue adapts its bucket count.
    /// Growth is amortized `O(1)` per push and only triggered when the
    /// nearest overflow event would actually fit the doubled horizon, so a
    /// few far-future stragglers (timeouts, monitors) never inflate the
    /// ring.
    fn maybe_grow(&mut self) {
        while self.overflow.len() > self.buckets.len() / 4
            && self.buckets.len() < MAX_HORIZON
            && self
                .overflow
                .peek()
                .is_some_and(|head| head.time.tick() - self.cur_tick <= 2 * self.mask as u64 + 1)
        {
            self.horizon_resizes += 1;
            let new_horizon = self.buckets.len() * 2;
            let old_buckets = std::mem::replace(
                &mut self.buckets,
                vec![Bucket::EMPTY; new_horizon].into_boxed_slice(),
            );
            self.occupancy = vec![0u64; new_horizon / 64].into_boxed_slice();
            self.mask = new_horizon - 1;
            // Re-thread every event into its new bucket. Walking each old
            // list head-to-tail preserves per-tick FIFO order (each old
            // bucket held exactly one tick's events).
            self.ring_len = 0;
            for bucket in old_buckets.iter() {
                let mut cur = bucket.head;
                while cur != NIL {
                    let next = self.slab[cur as usize].next;
                    let idx = self.slab[cur as usize].time.tick() as usize & self.mask;
                    self.slab[cur as usize].next = NIL;
                    self.link_back(idx, cur);
                    cur = next;
                }
            }
            // Pull in overflow events that the wider horizon now covers.
            self.advance_to(self.cur_tick);
        }
    }

    /// Advances the cursor to `tick`, moving overflow events that have
    /// entered the horizon into their ring buckets.
    fn advance_to(&mut self, tick: u64) {
        debug_assert!(tick >= self.cur_tick);
        self.cur_tick = tick;
        let horizon = self.mask as u64;
        while let Some(head) = self.overflow.peek() {
            if head.time.tick() - self.cur_tick > horizon {
                break;
            }
            let OverflowEntry {
                time,
                target,
                payload,
                ..
            } = self.overflow.pop().expect("peeked overflow entry vanished");
            let idx = time.tick() as usize & self.mask;
            let slot = self.alloc_slot(time, target, payload);
            self.link_back(idx, slot);
        }
    }

    /// Moves the cursor forward to the tick of the earliest pending event
    /// and returns its bucket index, or `None` if the queue is empty.
    fn seek(&mut self) -> Option<usize> {
        if self.ring_len == 0 {
            // Ring empty: jump straight to the earliest overflow event.
            let tick = self.overflow.peek()?.time.tick();
            self.advance_to(tick);
            return Some(tick as usize & self.mask);
        }
        // Scan the occupancy bitmap from the cursor; the ring is non-empty
        // so a set bit exists within `horizon` buckets.
        let horizon = self.horizon();
        let mut tick = self.cur_tick;
        let mut scanned = 0usize;
        loop {
            let idx = tick as usize & self.mask;
            // Examine the remainder of this bitmap word in one load.
            let word_idx = idx >> 6;
            let bit = idx & 63;
            let word = self.occupancy[word_idx] >> bit;
            if word != 0 {
                let skip = word.trailing_zeros() as u64;
                let found = tick + skip;
                if found != self.cur_tick {
                    self.advance_to(found);
                }
                return Some(found as usize & self.mask);
            }
            let step = 64 - bit;
            tick += step as u64;
            scanned += step;
            debug_assert!(scanned <= horizon + 64, "occupancy bitmap out of sync");
        }
    }

    /// Smallest epsilon in bucket `idx` (which must be non-empty).
    fn min_epsilon(&self, idx: usize) -> Epsilon {
        let mut cur = self.buckets[idx].head;
        debug_assert!(cur != NIL, "min_epsilon of empty bucket");
        let mut eps = Epsilon::MAX;
        while cur != NIL {
            let slot = &self.slab[cur as usize];
            eps = eps.min(slot.time.epsilon());
            cur = slot.next;
        }
        eps
    }

    /// Removes and returns the earliest event, or `None` when empty.
    ///
    /// Equal-`(tick, epsilon)` events pop in enqueue order (FIFO).
    #[inline]
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        let idx = self.seek()?;
        let eps = self.min_epsilon(idx);
        // Unlink the first event carrying that epsilon.
        let mut prev = NIL;
        let mut cur = self.buckets[idx].head;
        while self.slab[cur as usize].time.epsilon() != eps {
            prev = cur;
            cur = self.slab[cur as usize].next;
        }
        let next = self.slab[cur as usize].next;
        if prev == NIL {
            self.buckets[idx].head = next;
        } else {
            self.slab[prev as usize].next = next;
        }
        if next == NIL {
            self.buckets[idx].tail = prev;
        }
        if self.buckets[idx].head == NIL {
            self.clear_occupied(idx);
        }
        self.ring_len -= 1;
        Some(self.free_slot(cur))
    }

    /// Tick of the earliest pending event without moving the cursor.
    ///
    /// One occupancy-bitmap scan when the ring is non-empty, one heap peek
    /// otherwise.
    fn next_tick(&self) -> Option<Tick> {
        if self.ring_len == 0 {
            return self.overflow.peek().map(|e| e.time.tick());
        }
        let horizon = self.horizon();
        let mut tick = self.cur_tick;
        let mut scanned = 0usize;
        loop {
            let idx = tick as usize & self.mask;
            let bit = idx & 63;
            let word = self.occupancy[idx >> 6] >> bit;
            if word != 0 {
                return Some(tick + word.trailing_zeros() as u64);
            }
            let step = 64 - bit;
            tick += step as u64;
            scanned += step;
            debug_assert!(scanned <= horizon + 64, "occupancy bitmap out of sync");
        }
    }

    /// Drains the earliest same-`(tick, epsilon)` batch into `out`
    /// (cleared first) — but only if its tick is at most `tick_limit` —
    /// and returns the batch time.
    ///
    /// Returns `None` (leaving the queue untouched, cursor included) when
    /// the queue is empty or the next event lies beyond `tick_limit`;
    /// disambiguate with [`EventQueue::is_empty`]. Not advancing the
    /// cursor on the limit path matters: after a paused run, the engine
    /// may legally schedule events earlier than the event the scan found.
    ///
    /// This is the executor's hot-path interface — one scan serves peek,
    /// limit check, and batch extraction. Everything in one batch is ready
    /// simultaneously, so the hot loop can dispatch the whole slice
    /// without consulting the queue again. Events scheduled *during* batch
    /// execution at the same `(tick, epsilon)` land behind the batch and
    /// form the next one, preserving global FIFO order.
    pub fn take_batch_until(
        &mut self,
        tick_limit: Tick,
        out: &mut Vec<EventEntry<E>>,
    ) -> Option<Time> {
        out.clear();
        let tick = self.next_tick()?;
        if tick > tick_limit {
            return None;
        }
        self.advance_to(tick);
        let idx = tick as usize & self.mask;
        self.drain_min_epsilon(idx, out);
        debug_assert!(!out.is_empty(), "scanned tick had no events");
        Some(out[0].time)
    }

    /// Drains **all** events at the earliest `(tick, epsilon)` into `out`
    /// (cleared first), in FIFO order, and returns how many there were.
    pub fn take_batch(&mut self, out: &mut Vec<EventEntry<E>>) -> usize {
        self.take_batch_until(Tick::MAX, out);
        out.len()
    }

    /// Moves the min-epsilon slice of bucket `idx` (non-empty) into `out`,
    /// preserving both the drained and the surviving events' FIFO order.
    fn drain_min_epsilon(&mut self, idx: usize, out: &mut Vec<EventEntry<E>>) {
        let eps = self.min_epsilon(idx);
        let mut keep = Bucket::EMPTY;
        let mut cur = self.buckets[idx].head;
        while cur != NIL {
            let next = self.slab[cur as usize].next;
            if self.slab[cur as usize].time.epsilon() == eps {
                out.push(self.free_slot(cur));
            } else if keep.tail == NIL {
                keep = Bucket {
                    head: cur,
                    tail: cur,
                };
            } else {
                self.slab[keep.tail as usize].next = cur;
                keep.tail = cur;
            }
            cur = next;
        }
        if keep.tail != NIL {
            self.slab[keep.tail as usize].next = NIL;
        }
        self.buckets[idx] = keep;
        if keep.head == NIL {
            self.clear_occupied(idx);
        }
        self.ring_len -= out.len();
    }

    /// Reinserts not-yet-executed batch events at the *front* of their
    /// bucket, undoing part of a [`EventQueue::take_batch`].
    ///
    /// Used when the executor aborts mid-batch (stop, failure): the
    /// remaining events were enqueued before anything scheduled during the
    /// batch, so they must run first when the simulation resumes.
    pub fn requeue_front(&mut self, entries: impl Iterator<Item = EventEntry<E>>) {
        let mut chain = Bucket::EMPTY;
        let mut count = 0usize;
        let mut tick = 0u64;
        for e in entries {
            debug_assert!(chain.head == NIL || e.time.tick() == tick);
            tick = e.time.tick();
            let slot = self.alloc_slot(e.time, e.target, e.payload);
            if chain.tail == NIL {
                chain = Bucket {
                    head: slot,
                    tail: slot,
                };
            } else {
                self.slab[chain.tail as usize].next = slot;
                chain.tail = slot;
            }
            count += 1;
        }
        if chain.head == NIL {
            return;
        }
        debug_assert!(tick >= self.cur_tick && tick - self.cur_tick <= self.mask as u64);
        let idx = tick as usize & self.mask;
        let old = self.buckets[idx];
        self.slab[chain.tail as usize].next = old.head;
        self.buckets[idx] = Bucket {
            head: chain.head,
            tail: if old.tail == NIL {
                chain.tail
            } else {
                old.tail
            },
        };
        self.set_occupied(idx);
        self.ring_len += count;
    }

    /// The time of the earliest pending event, if any.
    ///
    /// Does not advance the cursor past empty buckets; cost is bounded by
    /// one occupancy-bitmap scan.
    pub fn peek_time(&self) -> Option<Time> {
        if self.ring_len == 0 {
            return self.overflow.peek().map(|e| e.time);
        }
        let tick = self.next_tick().expect("ring non-empty");
        let eps = self.min_epsilon(tick as usize & self.mask);
        Some(Time::new(tick, eps))
    }

    /// Number of pending events (ring + overflow).
    #[inline]
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pending events currently parked beyond the ring horizon.
    #[inline]
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Largest number of events ever pending at once, across both levels.
    #[inline]
    pub fn high_water_mark(&self) -> usize {
        self.max_len
    }

    /// Total number of events ever enqueued.
    #[inline]
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }

    /// Lifetime count of pushes that missed the ring and parked in the
    /// overflow heap.
    #[inline]
    pub fn overflow_spills(&self) -> u64 {
        self.overflow_spills
    }

    /// Lifetime count of adaptive horizon doublings.
    #[inline]
    pub fn horizon_resizes(&self) -> u64 {
        self.horizon_resizes
    }

    /// Serializes the queue — pending events *and* lifetime counters —
    /// into `out`, encoding each payload with `enc`.
    ///
    /// Enumeration is non-destructive and deterministic: ring buckets in
    /// cursor order (each bucket head-to-tail, i.e. enqueue order), then
    /// overflow events sorted by `(time, seq)`. [`EventQueue::load`]
    /// re-pushes events in exactly this order against the saved horizon
    /// and cursor, which reproduces bucket placement and per-bucket FIFO
    /// order, so the restored queue pops the identical event sequence.
    pub fn save<F>(&self, out: &mut Vec<u8>, mut enc: F)
    where
        F: FnMut(&E, &mut Vec<u8>),
    {
        crate::wire::put_varint(out, self.horizon() as u64);
        crate::wire::put_varint(out, self.cur_tick);
        crate::wire::put_varint(out, self.ring_len as u64);
        for off in 0..self.horizon() {
            let idx = (self.cur_tick as usize).wrapping_add(off) & self.mask;
            let mut cur = self.buckets[idx].head;
            while cur != NIL {
                let slot = &self.slab[cur as usize];
                crate::wire::WireCodec::encode(&slot.time, out);
                crate::wire::put_varint(out, slot.target.index() as u64);
                enc(
                    slot.payload.as_ref().expect("linked slot without payload"),
                    out,
                );
                cur = slot.next;
            }
        }
        let mut parked: Vec<&OverflowEntry<E>> = self.overflow.iter().collect();
        parked.sort_by_key(|e| (e.time, e.seq));
        crate::wire::put_varint(out, parked.len() as u64);
        for e in parked {
            crate::wire::WireCodec::encode(&e.time, out);
            crate::wire::put_varint(out, e.target.index() as u64);
            enc(&e.payload, out);
        }
        crate::wire::put_varint(out, self.overflow_seq);
        crate::wire::put_varint(out, self.total_enqueued);
        crate::wire::put_varint(out, self.max_len as u64);
        crate::wire::put_varint(out, self.overflow_spills);
        crate::wire::put_varint(out, self.horizon_resizes);
    }

    /// Rebuilds a queue from a [`EventQueue::save`] encoding, decoding
    /// each payload with `dec`. Total: malformed input yields `None`.
    pub fn load<F>(buf: &mut &[u8], mut dec: F) -> Option<Self>
    where
        F: FnMut(&mut &[u8]) -> Option<E>,
    {
        let horizon = usize::try_from(crate::wire::get_varint(buf)?).ok()?;
        if horizon < 64 || !horizon.is_power_of_two() || horizon > MAX_HORIZON {
            return None;
        }
        let cur_tick = crate::wire::get_varint(buf)?;
        let mut q = Self::with_horizon(horizon);
        q.cur_tick = cur_tick;
        let ring = usize::try_from(crate::wire::get_varint(buf)?).ok()?;
        // Each event costs at least two bytes, so a hostile count cannot
        // force unbounded work before the buffer runs dry.
        if ring > buf.len() {
            return None;
        }
        let read_event = |buf: &mut &[u8], dec: &mut F| {
            let time = <Time as crate::wire::WireCodec>::decode(buf)?;
            let target =
                ComponentId::try_from_index(usize::try_from(crate::wire::get_varint(buf)?).ok()?)?;
            let payload = dec(buf)?;
            if time.tick() < cur_tick {
                return None; // behind the saved cursor: corrupt
            }
            Some((time, target, payload))
        };
        for _ in 0..ring {
            let (time, target, payload) = read_event(buf, &mut dec)?;
            // A saved ring event must still land in the ring.
            if time.tick() - cur_tick > q.mask as u64 {
                return None;
            }
            q.push(target, time, payload);
        }
        let parked = usize::try_from(crate::wire::get_varint(buf)?).ok()?;
        if parked > buf.len() {
            return None;
        }
        for _ in 0..parked {
            let (time, target, payload) = read_event(buf, &mut dec)?;
            let seq = q.overflow_seq;
            q.overflow_seq += 1;
            q.overflow.push(OverflowEntry {
                time,
                seq,
                target,
                payload,
            });
        }
        // Counters are lifetime totals, not derivable from the pending
        // set; overwrite whatever the re-pushes accumulated.
        q.overflow_seq = crate::wire::get_varint(buf)?.max(q.overflow_seq);
        q.total_enqueued = crate::wire::get_varint(buf)?;
        q.max_len = usize::try_from(crate::wire::get_varint(buf)?).ok()?;
        q.overflow_spills = crate::wire::get_varint(buf)?;
        q.horizon_resizes = crate::wire::get_varint(buf)?;
        Some(q)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> ComponentId {
        ComponentId::from_index(i)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(id(0), Time::at(5), "c");
        q.push(id(0), Time::at(1), "a");
        q.push(id(0), Time::new(1, 1), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(id(0), Time::at(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        let expect: Vec<i32> = (0..100).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn bookkeeping() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(id(0), Time::at(0), ());
        q.push(id(0), Time::at(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water_mark(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.high_water_mark(), 2);
        assert_eq!(q.total_enqueued(), 2);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        q.push(id(0), Time::at(9), ());
        q.push(id(0), Time::at(3), ());
        assert_eq!(q.peek_time(), Some(Time::at(3)));
    }

    #[test]
    fn peek_time_includes_epsilon() {
        let mut q = EventQueue::new();
        q.push(id(0), Time::new(4, 2), ());
        q.push(id(0), Time::new(4, 1), ());
        assert_eq!(q.peek_time(), Some(Time::new(4, 1)));
    }

    #[test]
    fn far_future_events_go_to_overflow_and_come_back() {
        let mut q = EventQueue::with_horizon(64);
        q.push(id(0), Time::at(1_000_000), "far");
        q.push(id(0), Time::at(2), "near");
        assert_eq!(q.overflow_len(), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().payload, "near");
        assert_eq!(q.pop().unwrap().payload, "far");
        assert_eq!(q.overflow_len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_preserves_fifo_for_equal_times() {
        let mut q = EventQueue::with_horizon(64);
        for i in 0..10 {
            q.push(id(0), Time::at(500), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        let expect: Vec<i32> = (0..10).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn fifo_across_overflow_drain_and_direct_push() {
        let mut q = EventQueue::with_horizon(64);
        // "early" is pushed while tick 100 is beyond the horizon...
        q.push(id(0), Time::at(100), "early");
        // ...advance the cursor by draining a near event at tick 90...
        q.push(id(0), Time::at(90), "bridge");
        assert_eq!(q.pop().unwrap().payload, "bridge");
        // ...now tick 100 is within the horizon; push lands behind "early".
        q.push(id(0), Time::at(100), "late");
        assert_eq!(q.pop().unwrap().payload, "early");
        assert_eq!(q.pop().unwrap().payload, "late");
    }

    #[test]
    fn ring_wraps_around_many_horizons() {
        let mut q = EventQueue::with_horizon(64);
        let mut popped = Vec::new();
        let mut t = 0u64;
        for round in 0..10 {
            // Pushes spread over several wraps of the 64-tick ring.
            q.push(id(0), Time::at(t + 3), (round, 0));
            q.push(id(0), Time::at(t + 61), (round, 1));
            q.push(id(0), Time::at(t + 130), (round, 2));
            while let Some(e) = q.pop() {
                popped.push((e.time, e.payload));
                t = e.time.tick();
            }
        }
        let mut sorted = popped.clone();
        sorted.sort_by_key(|&(time, _)| time);
        assert_eq!(popped, sorted, "pop order must be time order");
        assert_eq!(popped.len(), 30);
    }

    #[test]
    fn take_batch_returns_whole_equal_time_slice() {
        let mut q = EventQueue::new();
        q.push(id(0), Time::at(5), 0);
        q.push(id(1), Time::at(5), 1);
        q.push(id(2), Time::new(5, 1), 2);
        q.push(id(3), Time::at(6), 3);
        let mut batch = Vec::new();
        assert_eq!(q.take_batch(&mut batch), 2);
        assert_eq!(
            batch.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(q.take_batch(&mut batch), 1);
        assert_eq!(batch[0].payload, 2);
        assert_eq!(batch[0].time, Time::new(5, 1));
        assert_eq!(q.take_batch(&mut batch), 1);
        assert_eq!(batch[0].payload, 3);
        assert_eq!(q.take_batch(&mut batch), 0);
        assert!(batch.is_empty());
    }

    #[test]
    fn requeue_front_restores_order() {
        let mut q = EventQueue::new();
        for i in 0..4 {
            q.push(id(0), Time::at(5), i);
        }
        let mut batch = Vec::new();
        q.take_batch(&mut batch);
        // Execute only the first event; a new same-time event arrives.
        let mut it = batch.drain(..);
        let first = it.next().unwrap();
        assert_eq!(first.payload, 0);
        q.push(id(0), Time::at(5), 99);
        q.requeue_front(it);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3, 99]);
    }

    #[test]
    fn len_spans_both_levels() {
        let mut q = EventQueue::with_horizon(64);
        q.push(id(0), Time::at(1), ());
        q.push(id(0), Time::at(10_000), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.overflow_len(), 1);
        assert_eq!(q.high_water_mark(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn sparse_times_cross_bitmap_words() {
        let mut q = EventQueue::with_horizon(256);
        // One event per bitmap word, none in the first.
        for &t in &[70u64, 140, 200, 255] {
            q.push(id(0), Time::at(t), t);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![70, 140, 200, 255]);
    }

    #[test]
    fn slab_slots_are_reused() {
        // Steady-state traffic must not grow the slab without bound.
        let mut q = EventQueue::with_horizon(64);
        q.push(id(0), Time::at(0), 0u64);
        for t in 0..10_000u64 {
            let e = q.pop().expect("event");
            q.push(id(0), Time::at(t + 1), e.payload + 1);
        }
        assert!(
            q.slab.len() <= 2,
            "slab grew to {} slots for 1 live event",
            q.slab.len()
        );
    }

    #[test]
    fn mixed_epsilon_bucket_survives_partial_drain() {
        let mut q = EventQueue::new();
        q.push(id(0), Time::new(3, 1), "b1");
        q.push(id(0), Time::new(3, 0), "a1");
        q.push(id(0), Time::new(3, 2), "c1");
        q.push(id(0), Time::new(3, 1), "b2");
        let mut batch = Vec::new();
        assert_eq!(q.take_batch(&mut batch), 1);
        assert_eq!(batch[0].payload, "a1");
        assert_eq!(q.take_batch(&mut batch), 2);
        assert_eq!(
            batch.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec!["b1", "b2"]
        );
        assert_eq!(q.take_batch(&mut batch), 1);
        assert_eq!(batch[0].payload, "c1");
        assert!(q.is_empty());
    }
}
