//! The event priority queue (paper §III-A, Figure 1).
//!
//! Events are ordered by their [`Time`] (tick first, then epsilon). Events
//! with identical times are executed in the order they were enqueued, which
//! keeps simulations deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::component::ComponentId;
use crate::time::Time;

/// One scheduled event: when to run, who runs it, and its payload.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// Execution time of the event.
    pub time: Time,
    /// Tie-break sequence number (enqueue order).
    pub seq: u64,
    /// The component that will execute the event.
    pub target: ComponentId,
    /// Component-specific payload.
    pub payload: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    /// Reverse ordering so that the `BinaryHeap` (a max-heap) presents the
    /// *earliest* event at its head.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The simulator's global event queue.
///
/// A thin wrapper around [`BinaryHeap`] that assigns FIFO sequence numbers
/// and tracks the high-water mark for engine statistics.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    next_seq: u64,
    max_len: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, max_len: 0 }
    }

    /// Enqueues an event for `target` at `time`.
    #[inline]
    pub fn push(&mut self, target: ComponentId, time: Time, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EventEntry { time, seq, target, payload });
        self.max_len = self.max_len.max(self.heap.len());
    }

    /// Removes and returns the earliest event, or `None` when empty.
    #[inline]
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        self.heap.pop()
    }

    /// The time of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of events ever pending at once.
    #[inline]
    pub fn high_water_mark(&self) -> usize {
        self.max_len
    }

    /// Total number of events ever enqueued.
    #[inline]
    pub fn total_enqueued(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> ComponentId {
        ComponentId::from_index(i)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(id(0), Time::at(5), "c");
        q.push(id(0), Time::at(1), "a");
        q.push(id(0), Time::new(1, 1), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(id(0), Time::at(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        let expect: Vec<i32> = (0..100).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn bookkeeping() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(id(0), Time::at(0), ());
        q.push(id(0), Time::at(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water_mark(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.high_water_mark(), 2);
        assert_eq!(q.total_enqueued(), 2);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        q.push(id(0), Time::at(9), ());
        q.push(id(0), Time::at(3), ());
        assert_eq!(q.peek_time(), Some(Time::at(3)));
    }
}
