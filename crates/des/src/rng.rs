//! Deterministic in-tree pseudo-random number generation.
//!
//! The engine used to route all stochastic decisions through the `rand`
//! crate. That pulled a registry dependency into the innermost hot path
//! (adaptive routing, arbiters, traffic patterns draw per-flit) and kept
//! the workspace from building offline. This module replaces it with a
//! self-contained **xoshiro256\*\*** generator seeded via **splitmix64**
//! — the exact construction recommended by Blackman & Vigna — exposing
//! only the narrow API the simulator's models actually use.
//!
//! Determinism contract: for a fixed seed, the sequence of values returned
//! by every method of [`Rng`] is fixed forever. Simulation reproducibility
//! (`(configuration, seed)` → bit-identical results) depends on it, and
//! the golden-value tests at the bottom of this file pin the stream.

/// The splitmix64 step: used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// All stochastic model decisions must draw from an `Rng` reachable from
/// the simulator seed so that a `(configuration, seed)` pair reproduces
/// bit-identical simulations.
///
/// # Example
///
/// ```
/// use supersim_des::Rng;
///
/// let mut rng = Rng::new(42);
/// let a = rng.gen_range(0..10usize);
/// assert!(a < 10);
/// let mut again = Rng::new(42);
/// assert_eq!(again.gen_range(0..10usize), a); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose state is derived from `seed` by four
    /// splitmix64 steps (so nearby seeds yield unrelated streams).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit value of the stream.
    #[inline]
    pub fn gen_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform value from `range`, which may be a half-open (`a..b`) or
    /// inclusive (`a..=b`) integer range or a half-open `f64` range.
    ///
    /// Integer sampling is unbiased (Lemire's multiply-shift rejection).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform value in `[0, n)` — the integer workhorse behind
    /// [`Rng::gen_range`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample from an empty range");
        // Lemire's nearly-divisionless unbiased bounded sampling.
        let mut x = self.gen_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.gen_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator from this one's stream.
    ///
    /// Used to give sub-models (e.g. per-router drain arbiters) their own
    /// deterministic streams without sharing a borrow of the simulator's.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.gen_u64())
    }

    /// An independent stream for substream `index` of `seed`.
    ///
    /// The engine derives one generator per component from the simulation
    /// seed, so a component's draws are a pure function of `(seed, index)`
    /// — independent of the order components execute in. This is what
    /// makes the sequential and sharded engines bit-identical: neither the
    /// interleaving of components within a tick nor the thread a component
    /// runs on can perturb anyone's random stream.
    pub fn stream(seed: u64, index: u64) -> Rng {
        // Mix the index through one splitmix64 step (keyed by the seed)
        // so adjacent component indices yield unrelated generator states.
        let mut sm = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::new(splitmix64(&mut sm))
    }

    /// The raw xoshiro256** state words, for snapshotting. Restoring
    /// them with [`Rng::from_state`] resumes the stream at exactly the
    /// next draw.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from state words captured by [`Rng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        Rng { s }
    }
}

impl crate::wire::WireCodec for Rng {
    fn encode(&self, out: &mut Vec<u8>) {
        for &w in &self.s {
            crate::wire::put_varint(out, w);
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = crate::wire::get_varint(buf)?;
        }
        Some(Rng { s })
    }
}

/// A range type [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let width = (self.end - self.start) as u64;
                self.start + rng.gen_below(width) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.gen_u64() as $t;
                }
                start + rng.gen_below(width + 1) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden values: the xoshiro256** stream for seed 0 must never change,
    /// or every recorded simulation result silently shifts.
    #[test]
    fn golden_stream_is_stable() {
        let mut rng = Rng::new(0);
        let first: Vec<u64> = (0..4).map(|_| rng.gen_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532,
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(0xDEAD_BEEF);
        let mut b = Rng::new(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..16).filter(|_| a.gen_u64() == b.gen_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3..=5u32);
            assert!((3..=5).contains(&y));
            let z = rng.gen_range(0..1usize);
            assert_eq!(z, 0);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = Rng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "8-value range missed a value in 1000 draws"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::new(0).gen_range(5..5u64);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng::new(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = Rng::new(17);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!(
            (4_500..5_500).contains(&heads),
            "biased coin: {heads}/10000"
        );
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Rng::new(23);
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(29);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..50).collect();
        assert_eq!(sorted, expect);
        assert_ne!(v, expect, "50-element shuffle left input unchanged");
    }

    #[test]
    fn shuffle_handles_degenerate_sizes() {
        let mut rng = Rng::new(31);
        let mut empty: [u32; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [9u32];
        rng.shuffle(&mut one);
        assert_eq!(one, [9]);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng::new(37);
        let mut child = parent.fork();
        // The child diverges from the parent's continued stream.
        let same = (0..16)
            .filter(|_| parent.gen_u64() == child.gen_u64())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut rng = Rng::new(41);
        // Must not overflow the width computation.
        let _ = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    fn streams_are_deterministic_and_unrelated() {
        let mut a = Rng::new(0);
        let mut s0 = Rng::stream(0, 0);
        let mut s0b = Rng::stream(0, 0);
        let mut s1 = Rng::stream(0, 1);
        for _ in 0..32 {
            assert_eq!(s0.gen_u64(), s0b.gen_u64());
        }
        let mut s0c = Rng::stream(0, 0);
        let same_base = (0..16).filter(|_| a.gen_u64() == s0c.gen_u64()).count();
        assert_eq!(same_base, 0, "stream 0 must differ from the base stream");
        let mut s0d = Rng::stream(0, 0);
        let same_adj = (0..16).filter(|_| s1.gen_u64() == s0d.gen_u64()).count();
        assert_eq!(same_adj, 0, "adjacent streams must be unrelated");
    }
}
