//! Randomized cross-check of the calendar [`EventQueue`] against a
//! reference `BinaryHeap` model (the seed implementation's semantics:
//! ordered by `(time, seq)`, FIFO for equal times).
//!
//! These tests replace the old proptest suite for the queue with
//! deterministic in-tree generators driven by the workspace PRNG: every
//! run explores the same interleavings, and a failure reproduces from the
//! printed seed alone.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use supersim_des::{ComponentId, EventQueue, Rng, Time};

/// The reference model: earliest `(time, seq)` first.
#[derive(Default)]
struct RefModel {
    heap: BinaryHeap<Reverse<(Time, u64, u32)>>,
    next_seq: u64,
}

impl RefModel {
    fn push(&mut self, time: Time, payload: u32) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((time, seq, payload)));
    }

    fn pop(&mut self) -> Option<(Time, u32)> {
        self.heap
            .pop()
            .map(|Reverse((time, _, payload))| (time, payload))
    }

    fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse((time, _, _))| *time)
    }
}

/// Drives one randomized interleaving of pushes and pops against both
/// implementations and asserts identical behavior throughout.
///
/// `tick_span` controls how far pushes scatter past the current floor:
/// small spans stay inside the ring, large spans exercise the overflow
/// heap, horizon-advance refill, and adaptive growth.
fn cross_check(seed: u64, horizon: usize, tick_span: u64, ops: usize) {
    let mut rng = Rng::new(seed);
    let mut calendar = EventQueue::with_horizon(horizon);
    let mut model = RefModel::default();
    let target = ComponentId::from_index(0);
    // Both queues forbid scheduling before the last popped time.
    let mut floor = Time::at(0);
    let mut payload = 0u32;

    for op in 0..ops {
        let push = calendar.is_empty() || rng.gen_bool(0.55);
        if push {
            // Equal times are common on purpose: FIFO is the hard part.
            let tick = floor.tick() + rng.gen_range(0..tick_span);
            let eps = rng.gen_range(0u8..3);
            let time = Time::new(tick, eps).max(floor);
            calendar.push(target, time, payload);
            model.push(time, payload);
            payload += 1;
        } else {
            let got = calendar.pop().expect("calendar non-empty");
            let want = model.pop().expect("model out of sync");
            assert_eq!(
                (got.time, got.payload),
                want,
                "divergence at op {op} (seed {seed}, horizon {horizon}, span {tick_span})"
            );
            floor = got.time;
        }
        assert_eq!(
            calendar.len(),
            model.heap.len(),
            "length divergence at op {op}"
        );
        assert_eq!(
            calendar.peek_time(),
            model.peek_time(),
            "peek divergence at op {op}"
        );
    }
    // Drain: the full remaining order must match.
    while let Some(want) = model.pop() {
        let got = calendar.pop().expect("calendar drained early");
        assert_eq!(
            (got.time, got.payload),
            want,
            "drain divergence (seed {seed})"
        );
    }
    assert!(calendar.is_empty());
}

#[test]
fn near_future_interleavings_match_reference() {
    // Everything lands inside the ring: pure bucket/FIFO behavior.
    for seed in 0..8 {
        cross_check(seed, 64, 48, 2_000);
    }
}

#[test]
fn far_future_interleavings_match_reference() {
    // Most pushes overshoot the 64-tick horizon: overflow heap, drain on
    // horizon advance, and adaptive growth all participate.
    for seed in 100..108 {
        cross_check(seed, 64, 5_000, 2_000);
    }
}

#[test]
fn mixed_span_interleavings_match_reference() {
    // A mix of ring-local and overflow traffic across several horizons.
    for seed in 200..206 {
        cross_check(seed, 128, 400, 3_000);
    }
}

#[test]
fn equal_time_bursts_stay_fifo() {
    // Heavy equal-(tick, epsilon) contention: pop order must be exactly
    // enqueue order within each time, across ring and overflow paths.
    let mut rng = Rng::new(42);
    let mut q = EventQueue::with_horizon(64);
    let target = ComponentId::from_index(0);
    let mut pushed: Vec<(Time, u32)> = Vec::new();
    for i in 0..4_000u32 {
        // Only 8 distinct ticks and 2 epsilons → long FIFO chains; half
        // the ticks lie beyond the horizon at push time.
        let time = Time::new(rng.gen_range(0u64..8) * 20, rng.gen_range(0u8..2));
        q.push(target, time, i);
        pushed.push((time, i));
    }
    // Expected order: stable sort by time keeps enqueue order for ties.
    pushed.sort_by_key(|&(time, _)| time);
    for (i, &(time, payload)) in pushed.iter().enumerate() {
        let got = q.pop().expect("queue drained early");
        assert_eq!((got.time, got.payload), (time, payload), "at pop {i}");
    }
    assert!(q.is_empty());
}

#[test]
fn batch_interface_matches_pop_sequence() {
    // take_batch must yield exactly the events pop() would, in the same
    // order, grouped by equal (tick, epsilon).
    let build = |seed: u64| {
        let mut rng = Rng::new(seed);
        let mut q = EventQueue::with_horizon(64);
        let target = ComponentId::from_index(0);
        for i in 0..1_000u32 {
            let time = Time::new(rng.gen_range(0u64..300), rng.gen_range(0u8..2));
            q.push(target, time, i);
        }
        q
    };
    for seed in 0..4 {
        let mut by_pop = build(seed);
        let mut by_batch = build(seed);
        let mut batch = Vec::new();
        loop {
            let n = by_batch.take_batch(&mut batch);
            if n == 0 {
                break;
            }
            for entry in batch.iter() {
                let single = by_pop.pop().expect("pop queue drained early");
                assert_eq!((single.time, single.payload), (entry.time, entry.payload));
                // Every event in one batch shares the batch time.
                assert_eq!(entry.time, batch[0].time);
            }
        }
        assert!(by_pop.is_empty());
    }
}
