#![warn(missing_docs)]

//! Shared network vocabulary for SuperSim-rs.
//!
//! This crate defines the types that every layer of the simulator speaks:
//!
//! - identifiers ([`TerminalId`], [`RouterId`], [`PacketId`], ...),
//! - the flit/packet/message data model ([`Flit`], [`PacketInfo`]) — a
//!   *flit* (flow control digit) is the smallest unit of resource
//!   allocation in a router, and flit-level modeling is what distinguishes
//!   SuperSim from packet- and flow-level simulators,
//! - credit-based flow control bookkeeping ([`CreditCounter`]),
//! - channel wiring descriptors ([`LinkTarget`]),
//! - the global simulation event type [`Ev`] exchanged by all components,
//! - the four-phase workload protocol vocabulary ([`Phase`], [`AppSignal`],
//!   [`PhaseCommand`]; paper §IV-A Figure 4),
//! - the error-detection invariants of paper §IV-D
//!   ([`DeliveryChecker`], [`CreditCounter`] underflow checks, buffer
//!   overrun guards),
//! - the deterministic fault plane ([`FaultPlane`], [`LinkFaults`],
//!   [`FaultError`]): stochastic/scheduled link outages, bit-error
//!   corruption caught by the flit header checksum, credit loss, and the
//!   stop-and-wait link-level retransmission protocol that recovers from
//!   them — bit-identical across engine backends for one
//!   `(configuration, seed)`,
//! - the flit-event tracing vocabulary ([`TraceKind`], [`TraceFilter`],
//!   [`FlitTraceExt`]) over the engine's generic trace plane — filtered
//!   collection that is free when disabled, engine-agnostic (the sharded
//!   backend merges records back into canonical order), and serializes
//!   to JSON-lines ([`trace_json_lines`]).

mod arena;
mod check;
mod credit;
mod event;
mod fault;
mod flit;
mod ids;
mod link;
mod phase;
#[cfg(all(test, feature = "proptest"))]
mod proptests;
mod trace;
mod wire;

pub use arena::{FlitArena, FlitHandle, FlitMeta};
pub use check::{CheckError, DeliveryChecker};
pub use credit::{CreditCounter, CreditError};
pub use event::Ev;
pub use fault::{
    retry_port, retry_tag, FaultConfig, FaultCounters, FaultError, FaultPlane, LinkFaults, LinkId,
    ScheduledOutage, RETRY_TAG,
};
pub use flit::{Flit, FlitSpan, PacketBuilder, PacketInfo, SpanBreakdown};
pub use ids::{AppId, MessageId, PacketId, Port, RouterId, TerminalId, Vc};
pub use link::LinkTarget;
pub use phase::{AppSignal, Phase, PhaseCommand};
pub use trace::{trace_json_lines, FlitTraceExt, TraceFilter, TraceKind, TraceRecord};
