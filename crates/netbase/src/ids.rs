//! Strongly-typed identifiers.
//!
//! Newtypes keep terminal, router, packet, and message identifiers from
//! being confused with each other or with plain indices (C-NEWTYPE).

use std::fmt;

/// Index of a network endpoint (one per terminal of each application).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TerminalId(pub u32);

/// Index of a router in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RouterId(pub u32);

/// Index of an application within the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AppId(pub u8);

/// Globally unique packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PacketId(pub u64);

/// Globally unique message identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MessageId(pub u64);

/// A router or interface port number.
pub type Port = u32;

/// A virtual channel number.
pub type Vc = u32;

impl TerminalId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RouterId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AppId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TerminalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt{}", self.0)
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msg{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TerminalId(3).to_string(), "t3");
        assert_eq!(RouterId(7).to_string(), "r7");
        assert_eq!(AppId(1).to_string(), "app1");
        assert_eq!(PacketId(9).to_string(), "pkt9");
        assert_eq!(MessageId(2).to_string(), "msg2");
    }

    #[test]
    fn index_accessors() {
        assert_eq!(TerminalId(5).index(), 5);
        assert_eq!(RouterId(6).index(), 6);
        assert_eq!(AppId(2).index(), 2);
    }
}
