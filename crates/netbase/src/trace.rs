//! Flit-event tracing: a compact ring buffer of per-flit events.
//!
//! The metrics plane (`supersim-stats::metrics`) answers *how much*;
//! tracing answers *what happened to this flit*. Every record is four
//! integers — flit identity, component, event kind, `(tick, epsilon)` —
//! stored in a fixed-capacity ring buffer so a trace of the interesting
//! window survives arbitrarily long runs without unbounded memory.
//!
//! Tracing must be free when it is off: components hold a [`SharedTracer`]
//! (single-threaded `Rc<RefCell<..>>`; the simulator has no threads) and
//! every [`SharedTracer::record`] call starts with one enabled check
//! before touching anything else. The [`TraceFilter`] narrows collection
//! to event kinds, one component, or a packet-id range, so a
//! paper-style investigation ("follow packet 93124 through the Clos")
//! costs only the flits it watches.
//!
//! Serialization is JSON-lines through the workspace's own JSON writer
//! (`supersim-config`), one record per line, in chronological order —
//! byte-identical across runs of the same `(configuration, seed)`.

use std::cell::RefCell;
use std::rc::Rc;

use supersim_config::Value;
use supersim_des::Time;

use crate::flit::Flit;

/// What happened to the flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// An interface injected the flit toward its router.
    Inject = 0,
    /// An interface ejected the flit from the network.
    Eject = 1,
    /// A router accepted the flit into an input buffer.
    RouterArrive = 2,
    /// A router sent the flit out of an output port.
    RouterDepart = 3,
}

impl TraceKind {
    /// All kinds, in tag order.
    pub const ALL: [TraceKind; 4] = [
        TraceKind::Inject,
        TraceKind::Eject,
        TraceKind::RouterArrive,
        TraceKind::RouterDepart,
    ];

    /// Short lowercase name used in the JSON-lines form.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Inject => "inject",
            TraceKind::Eject => "eject",
            TraceKind::RouterArrive => "router_arrive",
            TraceKind::RouterDepart => "router_depart",
        }
    }

    /// Parses a [`TraceKind::name`] string.
    pub fn from_name(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// This kind's bit in a [`TraceFilter::kinds`] mask.
    #[inline]
    pub fn bit(self) -> u8 {
        1 << (self as u8)
    }
}

/// One traced flit event. 32 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event happened.
    pub time: Time,
    /// Component the event happened at: the terminal index for
    /// interface-side kinds, the router index for router-side kinds.
    pub src: u32,
    /// What happened.
    pub kind: TraceKind,
    /// The flit's packet id.
    pub packet: u64,
    /// The flit's position within its packet.
    pub flit: u32,
}

impl TraceRecord {
    /// Compact one-line JSON form.
    pub fn to_json(&self) -> String {
        let mut v = Value::object();
        v.set_path("tick", Value::Int(self.time.tick() as i64))
            .expect("object");
        v.set_path("eps", Value::Int(self.time.epsilon() as i64))
            .expect("object");
        v.set_path("src", Value::Int(self.src as i64))
            .expect("object");
        v.set_path("kind", Value::Str(self.kind.name().to_string()))
            .expect("object");
        v.set_path("packet", Value::Int(self.packet as i64))
            .expect("object");
        v.set_path("flit", Value::Int(self.flit as i64))
            .expect("object");
        v.to_json()
    }
}

/// What the tracer collects. The default filter accepts everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFilter {
    /// Bitmask of accepted [`TraceKind`]s ([`TraceKind::bit`]).
    pub kinds: u8,
    /// Only events at this component index, when set.
    pub src: Option<u32>,
    /// Inclusive packet-id range.
    pub packet_lo: u64,
    /// Inclusive packet-id range.
    pub packet_hi: u64,
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter {
            kinds: u8::MAX,
            src: None,
            packet_lo: 0,
            packet_hi: u64::MAX,
        }
    }
}

impl TraceFilter {
    /// Whether a record with these fields passes the filter.
    #[inline]
    pub fn accepts(&self, src: u32, kind: TraceKind, packet: u64) -> bool {
        self.kinds & kind.bit() != 0
            && self.src.is_none_or(|s| s == src)
            && (self.packet_lo..=self.packet_hi).contains(&packet)
    }
}

/// A fixed-capacity ring buffer of [`TraceRecord`]s.
#[derive(Debug)]
pub struct FlitTracer {
    enabled: bool,
    filter: TraceFilter,
    capacity: usize,
    ring: Vec<TraceRecord>,
    /// Next write position once the ring is full (wrap cursor).
    next: usize,
    /// Records accepted over the tracer's lifetime (kept + overwritten).
    recorded: u64,
}

impl Default for FlitTracer {
    /// A disabled tracer (the free-when-off default every component
    /// starts with).
    fn default() -> Self {
        FlitTracer {
            enabled: false,
            filter: TraceFilter::default(),
            capacity: 0,
            ring: Vec::new(),
            next: 0,
            recorded: 0,
        }
    }
}

impl FlitTracer {
    /// An enabled tracer keeping the most recent `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be non-zero");
        FlitTracer {
            enabled: true,
            capacity,
            ..FlitTracer::default()
        }
    }

    /// Whether the tracer is collecting.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Replaces the collection filter.
    pub fn set_filter(&mut self, filter: TraceFilter) {
        self.filter = filter;
    }

    /// The collection filter.
    pub fn filter(&self) -> TraceFilter {
        self.filter
    }

    /// Records one event if enabled and accepted by the filter.
    #[inline]
    pub fn record(&mut self, time: Time, src: u32, kind: TraceKind, packet: u64, flit: u32) {
        if !self.enabled || !self.filter.accepts(src, kind, packet) {
            return;
        }
        let rec = TraceRecord {
            time,
            src,
            kind,
            packet,
            flit,
        };
        self.recorded += 1;
        if self.ring.len() < self.capacity {
            self.ring.push(rec);
        } else {
            self.ring[self.next] = rec;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Records kept (at most the capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing was kept.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records accepted over the tracer's lifetime, including those the
    /// ring has since overwritten.
    pub fn total_recorded(&self) -> u64 {
        self.recorded
    }

    /// Accepted records the ring overwrote (lifetime − kept).
    pub fn dropped(&self) -> u64 {
        self.recorded - self.ring.len() as u64
    }

    /// The kept records in chronological order (unwrapping the ring).
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.next..]);
        out.extend_from_slice(&self.ring[..self.next]);
        out
    }

    /// JSON-lines serialization: one compact JSON object per record, in
    /// chronological order.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for rec in self.records() {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }
}

/// A cheaply clonable handle to one [`FlitTracer`], shared by every
/// component of a simulation (single-threaded, so `Rc<RefCell>`).
#[derive(Debug, Clone, Default)]
pub struct SharedTracer(Rc<RefCell<FlitTracer>>);

impl SharedTracer {
    /// A disabled tracer: every [`SharedTracer::record`] call is one
    /// flag check.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Wraps a tracer for sharing.
    pub fn new(tracer: FlitTracer) -> Self {
        SharedTracer(Rc::new(RefCell::new(tracer)))
    }

    /// Whether the underlying tracer is collecting.
    pub fn is_enabled(&self) -> bool {
        self.0.borrow().is_enabled()
    }

    /// Records a flit event (see [`FlitTracer::record`]).
    #[inline]
    pub fn record(&self, time: Time, src: u32, kind: TraceKind, flit: &Flit) {
        let mut t = self.0.borrow_mut();
        if t.enabled {
            t.record(time, src, kind, flit.pkt.id.0, flit.seq);
        }
    }

    /// Runs `f` with the underlying tracer borrowed.
    pub fn with<R>(&self, f: impl FnOnce(&FlitTracer) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Runs `f` with the underlying tracer borrowed mutably.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut FlitTracer) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }

    /// JSON-lines form of the kept records.
    pub fn to_json_lines(&self) -> String {
        self.0.borrow().to_json_lines()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::PacketBuilder;
    use crate::ids::{AppId, MessageId, PacketId, TerminalId};

    fn t(tick: u64) -> Time {
        Time::at(tick)
    }

    fn flit(packet: u64, seq: u32) -> Flit {
        let mut flits = PacketBuilder {
            id: PacketId(packet),
            message: MessageId(0),
            app: AppId(0),
            src: TerminalId(0),
            dst: TerminalId(1),
            size: seq + 1,
            message_size: seq + 1,
            inject_tick: 0,
            message_tick: 0,
            sample: false,
        }
        .build();
        flits.remove(seq as usize)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = FlitTracer::default();
        tr.record(t(1), 0, TraceKind::Inject, 1, 0);
        assert!(tr.is_empty());
        assert_eq!(tr.total_recorded(), 0);
        let shared = SharedTracer::disabled();
        shared.record(t(1), 0, TraceKind::Inject, &flit(1, 0));
        assert!(!shared.is_enabled());
        assert_eq!(shared.with(|t| t.len()), 0);
    }

    #[test]
    fn ring_keeps_most_recent_records() {
        let mut tr = FlitTracer::with_capacity(3);
        for i in 0..5u64 {
            tr.record(t(i), 0, TraceKind::Inject, i, 0);
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.total_recorded(), 5);
        assert_eq!(tr.dropped(), 2);
        let packets: Vec<u64> = tr.records().iter().map(|r| r.packet).collect();
        assert_eq!(packets, vec![2, 3, 4], "chronological, oldest overwritten");
    }

    #[test]
    fn filter_narrows_collection() {
        let mut tr = FlitTracer::with_capacity(16);
        tr.set_filter(TraceFilter {
            kinds: TraceKind::Eject.bit(),
            src: Some(7),
            packet_lo: 10,
            packet_hi: 20,
        });
        tr.record(t(1), 7, TraceKind::Inject, 15, 0); // wrong kind
        tr.record(t(2), 6, TraceKind::Eject, 15, 0); // wrong src
        tr.record(t(3), 7, TraceKind::Eject, 9, 0); // packet below range
        tr.record(t(4), 7, TraceKind::Eject, 15, 0); // accepted
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.records()[0].time, t(4));
    }

    #[test]
    fn json_lines_are_parseable_and_ordered() {
        let mut tr = FlitTracer::with_capacity(4);
        tr.record(Time::new(5, 1), 3, TraceKind::RouterArrive, 42, 2);
        tr.record(t(6), 0, TraceKind::Eject, 42, 2);
        let text = tr.to_json_lines();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let v = supersim_config::parse(lines[0]).expect("valid json line");
        assert_eq!(v.get("tick").and_then(Value::as_u64), Some(5));
        assert_eq!(v.get("eps").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("router_arrive"));
        assert_eq!(v.get("packet").and_then(Value::as_u64), Some(42));
    }

    #[test]
    fn kind_names_round_trip() {
        for k in TraceKind::ALL {
            assert_eq!(TraceKind::from_name(k.name()), Some(k));
        }
        assert_eq!(TraceKind::from_name("nope"), None);
    }

    #[test]
    fn shared_tracer_clones_share_state() {
        let shared = SharedTracer::new(FlitTracer::with_capacity(8));
        let clone = shared.clone();
        clone.record(t(1), 2, TraceKind::Inject, &flit(5, 0));
        assert_eq!(shared.with(|t| t.len()), 1);
        assert!(shared.to_json_lines().contains("\"packet\":5"));
    }
}
