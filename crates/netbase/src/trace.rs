//! Flit-event tracing: the network-level vocabulary over the engine's
//! trace plane.
//!
//! The metrics plane (`supersim-stats::metrics`) answers *how much*;
//! tracing answers *what happened to this flit*. Collection lives in the
//! DES engine (`supersim_des::TraceBuffer`): a component records through
//! its execution context, and the engine keeps a fixed-capacity ring of
//! compact generic records so a trace of the interesting window survives
//! arbitrarily long runs without unbounded memory. Crucially, this also
//! works on the sharded engine — records merge back into canonical order
//! at every synchronization round, so the serialized trace is
//! byte-identical across engines (and across runs) for one
//! `(configuration, seed)`.
//!
//! This module maps the engine's generic records onto the network
//! vocabulary: [`TraceKind`] names the event (`kind` tag), the packet id
//! rides in the record's `id`, and the flit's position in `sub`.
//! Components record through [`FlitTraceExt::trace_flit`], which is free
//! when tracing is off (one `Option` check in the engine). The
//! [`TraceFilter`] narrows collection to event kinds, one component, or a
//! packet-id range, so a paper-style investigation ("follow packet 93124
//! through the Clos") costs only the flits it watches.
//!
//! Serialization is JSON-lines through the workspace's own JSON writer
//! (`supersim-config`), one record per line, in canonical order.

use supersim_config::Value;
use supersim_des::{Context, Time, TraceEvent, TraceSpec};

use crate::event::Ev;
use crate::flit::Flit;

/// What happened to the flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// An interface injected the flit toward its router.
    Inject = 0,
    /// An interface ejected the flit from the network.
    Eject = 1,
    /// A router accepted the flit into an input buffer.
    RouterArrive = 2,
    /// A router sent the flit out of an output port.
    RouterDepart = 3,
    /// The fault plane injected a fault on this flit's transmission
    /// (drop or corruption; recorded at the sender).
    FaultInject = 4,
    /// A receiver's checksum caught a corrupted copy and nacked it.
    FaultNack = 5,
    /// A fault episode resolved: the flit was cleanly redelivered.
    FaultRecover = 6,
    /// Retransmission gave up on this flit (retries exhausted).
    FaultEscalate = 7,
}

impl TraceKind {
    /// All kinds, in tag order.
    pub const ALL: [TraceKind; 8] = [
        TraceKind::Inject,
        TraceKind::Eject,
        TraceKind::RouterArrive,
        TraceKind::RouterDepart,
        TraceKind::FaultInject,
        TraceKind::FaultNack,
        TraceKind::FaultRecover,
        TraceKind::FaultEscalate,
    ];

    /// Short lowercase name used in the JSON-lines form.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Inject => "inject",
            TraceKind::Eject => "eject",
            TraceKind::RouterArrive => "router_arrive",
            TraceKind::RouterDepart => "router_depart",
            TraceKind::FaultInject => "fault_inject",
            TraceKind::FaultNack => "fault_nack",
            TraceKind::FaultRecover => "fault_recover",
            TraceKind::FaultEscalate => "fault_escalate",
        }
    }

    /// Parses a [`TraceKind::name`] string.
    pub fn from_name(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Parses the numeric tag carried in a generic engine record.
    pub fn from_tag(tag: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|k| *k as u8 == tag)
    }

    /// This kind's bit in a [`TraceFilter::kinds`] mask.
    #[inline]
    pub fn bit(self) -> u8 {
        1 << (self as u8)
    }
}

/// One traced flit event. 32 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event happened.
    pub time: Time,
    /// Component the event happened at: the terminal index for
    /// interface-side kinds, the router index for router-side kinds.
    pub src: u32,
    /// What happened.
    pub kind: TraceKind,
    /// The flit's packet id.
    pub packet: u64,
    /// The flit's position within its packet.
    pub flit: u32,
}

impl TraceRecord {
    /// Decodes a generic engine record recorded by
    /// [`FlitTraceExt::trace_flit`]. `None` if the `kind` tag is not a
    /// flit event.
    pub fn from_event(ev: &TraceEvent) -> Option<Self> {
        Some(TraceRecord {
            time: ev.time,
            src: ev.src,
            kind: TraceKind::from_tag(ev.kind)?,
            packet: ev.id,
            flit: ev.sub,
        })
    }

    /// Compact one-line JSON form.
    pub fn to_json(&self) -> String {
        let mut v = Value::object();
        v.set_path("tick", Value::Int(self.time.tick() as i64))
            .expect("object");
        v.set_path("eps", Value::Int(self.time.epsilon() as i64))
            .expect("object");
        v.set_path("src", Value::Int(self.src as i64))
            .expect("object");
        v.set_path("kind", Value::Str(self.kind.name().to_string()))
            .expect("object");
        v.set_path("packet", Value::Int(self.packet as i64))
            .expect("object");
        v.set_path("flit", Value::Int(self.flit as i64))
            .expect("object");
        v.to_json()
    }
}

/// What the engine collects. The default filter accepts everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFilter {
    /// Bitmask of accepted [`TraceKind`]s ([`TraceKind::bit`]).
    pub kinds: u8,
    /// Only events at this component index, when set.
    pub src: Option<u32>,
    /// Inclusive packet-id range.
    pub packet_lo: u64,
    /// Inclusive packet-id range.
    pub packet_hi: u64,
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter {
            kinds: u8::MAX,
            src: None,
            packet_lo: 0,
            packet_hi: u64::MAX,
        }
    }
}

impl TraceFilter {
    /// Whether a record with these fields passes the filter.
    #[inline]
    pub fn accepts(&self, src: u32, kind: TraceKind, packet: u64) -> bool {
        self.kinds & kind.bit() != 0
            && self.src.is_none_or(|s| s == src)
            && (self.packet_lo..=self.packet_hi).contains(&packet)
    }

    /// The engine-level spec enforcing this filter at collection time.
    pub fn to_spec(&self) -> TraceSpec {
        TraceSpec {
            kinds: self.kinds,
            src: self.src,
            id_lo: self.packet_lo,
            id_hi: self.packet_hi,
        }
    }
}

/// Renders engine trace records as JSON-lines: one compact object per
/// flit record, in canonical order. Records whose `kind` tag is not a
/// flit event are skipped.
pub fn trace_json_lines(records: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in records {
        if let Some(rec) = TraceRecord::from_event(ev) {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
    }
    out
}

/// Flit-level tracing sugar for the execution context: encodes the flit's
/// identity into a generic engine record.
pub trait FlitTraceExt {
    /// Records `kind` happening to `flit` at component index `src`
    /// (terminal index for interface-side kinds, router index for
    /// router-side kinds). Free when tracing is off.
    fn trace_flit(&mut self, kind: TraceKind, src: u32, flit: &Flit);
}

impl FlitTraceExt for Context<'_, Ev> {
    #[inline]
    fn trace_flit(&mut self, kind: TraceKind, src: u32, flit: &Flit) {
        self.trace(kind as u8, src, flit.pkt.id.0, flit.seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tick: u64, kind: u8, packet: u64) -> TraceEvent {
        TraceEvent {
            time: Time::at(tick),
            src: 3,
            kind,
            id: packet,
            sub: 2,
        }
    }

    #[test]
    fn kind_names_and_tags_round_trip() {
        for k in TraceKind::ALL {
            assert_eq!(TraceKind::from_name(k.name()), Some(k));
            assert_eq!(TraceKind::from_tag(k as u8), Some(k));
        }
        assert_eq!(TraceKind::from_name("nope"), None);
        assert_eq!(TraceKind::from_tag(8), None);
    }

    #[test]
    fn filter_matches_its_spec() {
        let filter = TraceFilter {
            kinds: TraceKind::Eject.bit(),
            src: Some(7),
            packet_lo: 10,
            packet_hi: 20,
        };
        let spec = filter.to_spec();
        for (src, kind, packet) in [
            (7u32, TraceKind::Eject, 15u64),
            (7, TraceKind::Inject, 15),
            (6, TraceKind::Eject, 15),
            (7, TraceKind::Eject, 9),
            (7, TraceKind::Eject, 21),
        ] {
            assert_eq!(
                filter.accepts(src, kind, packet),
                spec.accepts(kind as u8, src, packet),
                "filter and spec disagree on ({src}, {kind:?}, {packet})"
            );
        }
        assert!(filter.accepts(7, TraceKind::Eject, 15));
        assert!(!filter.accepts(7, TraceKind::Inject, 15));
    }

    #[test]
    fn json_lines_are_parseable_and_ordered() {
        let records = vec![
            TraceEvent {
                time: Time::new(5, 1),
                src: 3,
                kind: TraceKind::RouterArrive as u8,
                id: 42,
                sub: 2,
            },
            ev(6, TraceKind::Eject as u8, 42),
        ];
        let text = trace_json_lines(&records);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let v = supersim_config::parse(lines[0]).expect("valid json line");
        assert_eq!(v.get("tick").and_then(Value::as_u64), Some(5));
        assert_eq!(v.get("eps").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("router_arrive"));
        assert_eq!(v.get("packet").and_then(Value::as_u64), Some(42));
    }

    #[test]
    fn unknown_kind_tags_are_skipped() {
        let records = vec![ev(1, 8, 5), ev(2, TraceKind::Inject as u8, 5)];
        let text = trace_json_lines(&records);
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"kind\":\"inject\""));
        assert_eq!(TraceRecord::from_event(&records[0]), None);
    }
}
