//! The global simulation event type.
//!
//! All components of a network simulation (routers, interfaces, the
//! workload monitor) exchange values of this one enum through the DES
//! engine. Components ignore variants that cannot legally reach them; in
//! debug builds they report such deliveries as modeling errors.

use crate::flit::Flit;
use crate::ids::{AppId, Port, Vc};
use crate::phase::{AppSignal, PhaseCommand};

/// A simulation event payload.
#[derive(Debug, Clone)]
pub enum Ev {
    /// A flit arriving on the receiver's input `port` after traversing a
    /// channel.
    Flit {
        /// Input port of the receiving component.
        port: Port,
        /// The flit itself.
        flit: Flit,
    },
    /// A credit returning to the sender side of a channel: the downstream
    /// device freed one slot of the buffer behind (`port`, `vc`), where
    /// `port` is the *receiver's* output port.
    Credit {
        /// Output port of the receiving component.
        port: Port,
        /// Virtual channel whose buffer slot was freed.
        vc: Vc,
    },
    /// Self-scheduled pipeline activity for routers and interfaces; fired
    /// at clock edges while work is pending.
    Pipeline,
    /// Self-scheduled injection opportunity for interfaces.
    Inject,
    /// Four-phase protocol signal from an application's terminals to the
    /// workload monitor (paper §IV-A).
    Signal {
        /// Application raising the signal.
        app: AppId,
        /// The signal.
        signal: AppSignal,
    },
    /// Retransmission acknowledgment: the receiver on the far side of
    /// `port` (the receiving component's *output* port, addressed like a
    /// returning credit) got a clean copy after a corruption episode.
    Ack {
        /// Output port of the receiving (original sender) component.
        port: Port,
    },
    /// Retransmission request: the far side of `port` received a flit
    /// whose header checksum failed and discarded it.
    Nack {
        /// Output port of the receiving (original sender) component.
        port: Port,
    },
    /// Four-phase protocol command from the workload monitor to terminals.
    Command(PhaseCommand),
    /// Component-private event with an opaque tag; lets user-defined models
    /// schedule their own activity without extending this enum.
    Internal(u64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::PacketBuilder;
    use crate::ids::{MessageId, PacketId, TerminalId};

    #[test]
    fn events_are_cloneable_and_debuggable() {
        let flit = PacketBuilder {
            id: PacketId(0),
            message: MessageId(0),
            app: AppId(0),
            src: TerminalId(0),
            dst: TerminalId(1),
            size: 1,
            message_size: 1,
            inject_tick: 0,
            message_tick: 0,
            sample: false,
        }
        .build()
        .remove(0);
        let ev = Ev::Flit { port: 3, flit };
        let cloned = ev.clone();
        assert!(format!("{cloned:?}").contains("port: 3"));
        let ev = Ev::Credit { port: 1, vc: 2 };
        assert!(format!("{ev:?}").contains("vc: 2"));
    }
}
