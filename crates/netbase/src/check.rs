//! End-to-end delivery checking (paper §IV-D).
//!
//! "Every flit delivered to a destination is guaranteed to have arrived at
//! the right destination and in the right order with respect to other flits
//! in the packet." The [`DeliveryChecker`] enforces exactly that at each
//! terminal, catching bugs in user-supplied component models early.

use std::collections::HashMap;
use std::fmt;

use crate::flit::Flit;
use crate::ids::{PacketId, TerminalId};

/// A violated delivery invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A flit reached a terminal other than its packet's destination.
    WrongDestination {
        /// The packet's intended destination.
        expected: TerminalId,
        /// The terminal that actually received the flit.
        actual: TerminalId,
        /// The offending packet.
        packet: PacketId,
    },
    /// Flits of a packet arrived out of order.
    OutOfOrder {
        /// The offending packet.
        packet: PacketId,
        /// The flit sequence number expected next.
        expected_seq: u32,
        /// The flit sequence number that arrived.
        actual_seq: u32,
    },
    /// A flit arrived for a packet whose tail was already delivered.
    AfterTail {
        /// The offending packet.
        packet: PacketId,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::WrongDestination {
                expected,
                actual,
                packet,
            } => write!(
                f,
                "{packet} addressed to {expected} was delivered to {actual}"
            ),
            CheckError::OutOfOrder {
                packet,
                expected_seq,
                actual_seq,
            } => write!(
                f,
                "{packet} delivered flit {actual_seq} while expecting flit {expected_seq}"
            ),
            CheckError::AfterTail { packet } => {
                write!(f, "{packet} received a flit after its tail flit")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Verifies per-packet delivery invariants at one terminal.
///
/// # Example
///
/// ```
/// use supersim_netbase::{DeliveryChecker, PacketBuilder, PacketId, MessageId,
///                        AppId, TerminalId};
///
/// let mut checker = DeliveryChecker::new(TerminalId(2));
/// let flits = PacketBuilder {
///     id: PacketId(1), message: MessageId(1), app: AppId(0),
///     src: TerminalId(0), dst: TerminalId(2),
///     size: 2, message_size: 2, inject_tick: 0, message_tick: 0, sample: false,
/// }.build();
/// assert_eq!(checker.deliver(&flits[0]).unwrap(), false); // head, packet open
/// assert_eq!(checker.deliver(&flits[1]).unwrap(), true);  // tail completes it
/// ```
#[derive(Debug)]
pub struct DeliveryChecker {
    terminal: TerminalId,
    /// Next expected flit sequence number per in-flight packet.
    expected: HashMap<PacketId, u32>,
    packets_completed: u64,
    flits_delivered: u64,
}

impl DeliveryChecker {
    /// Creates a checker for the given terminal.
    pub fn new(terminal: TerminalId) -> Self {
        DeliveryChecker {
            terminal,
            expected: HashMap::new(),
            packets_completed: 0,
            flits_delivered: 0,
        }
    }

    /// Records the delivery of one flit.
    ///
    /// Returns `true` when the flit completed its packet (it was the tail).
    ///
    /// # Errors
    ///
    /// Returns a [`CheckError`] when the flit violates a delivery
    /// invariant; the simulation should be failed in response.
    pub fn deliver(&mut self, flit: &Flit) -> Result<bool, CheckError> {
        if flit.pkt.dst != self.terminal {
            return Err(CheckError::WrongDestination {
                expected: flit.pkt.dst,
                actual: self.terminal,
                packet: flit.pkt.id,
            });
        }
        let entry = self.expected.entry(flit.pkt.id).or_insert(0);
        if *entry >= flit.pkt.size {
            return Err(CheckError::AfterTail {
                packet: flit.pkt.id,
            });
        }
        if flit.seq != *entry {
            return Err(CheckError::OutOfOrder {
                packet: flit.pkt.id,
                expected_seq: *entry,
                actual_seq: flit.seq,
            });
        }
        *entry += 1;
        self.flits_delivered += 1;
        if flit.is_tail() {
            self.expected.remove(&flit.pkt.id);
            self.packets_completed += 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Packets fully delivered so far.
    pub fn packets_completed(&self) -> u64 {
        self.packets_completed
    }

    /// Flits delivered so far.
    pub fn flits_delivered(&self) -> u64 {
        self.flits_delivered
    }

    /// Packets with some but not all flits delivered.
    pub fn packets_in_flight(&self) -> usize {
        self.expected.len()
    }

    /// Serializes the checker's dynamic state (in-flight packet cursors
    /// sorted by packet id, plus lifetime counters) for a checkpoint.
    pub fn save(&self, out: &mut Vec<u8>) {
        use supersim_des::wire::put_varint;
        let mut entries: Vec<(u64, u32)> = self.expected.iter().map(|(k, v)| (k.0, *v)).collect();
        entries.sort_unstable();
        put_varint(out, entries.len() as u64);
        for (id, seq) in entries {
            put_varint(out, id);
            put_varint(out, u64::from(seq));
        }
        put_varint(out, self.packets_completed);
        put_varint(out, self.flits_delivered);
    }

    /// Overlays saved state onto this checker. Total: `None` on
    /// malformed input.
    pub fn load(&mut self, buf: &mut &[u8]) -> Option<()> {
        use supersim_des::wire::get_varint;
        let n = usize::try_from(get_varint(buf)?).ok()?;
        if n > buf.len() {
            return None;
        }
        self.expected.clear();
        for _ in 0..n {
            let id = get_varint(buf)?;
            let seq = u32::try_from(get_varint(buf)?).ok()?;
            self.expected.insert(PacketId(id), seq);
        }
        self.packets_completed = get_varint(buf)?;
        self.flits_delivered = get_varint(buf)?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::PacketBuilder;
    use crate::ids::{AppId, MessageId};

    fn packet(id: u64, dst: TerminalId, size: u32) -> Vec<Flit> {
        PacketBuilder {
            id: PacketId(id),
            message: MessageId(id),
            app: AppId(0),
            src: TerminalId(0),
            dst,
            size,
            message_size: size,
            inject_tick: 0,
            message_tick: 0,
            sample: false,
        }
        .build()
    }

    #[test]
    fn in_order_delivery_completes() {
        let mut c = DeliveryChecker::new(TerminalId(1));
        let flits = packet(1, TerminalId(1), 3);
        assert!(!c.deliver(&flits[0]).unwrap());
        assert!(!c.deliver(&flits[1]).unwrap());
        assert!(c.deliver(&flits[2]).unwrap());
        assert_eq!(c.packets_completed(), 1);
        assert_eq!(c.flits_delivered(), 3);
        assert_eq!(c.packets_in_flight(), 0);
    }

    #[test]
    fn interleaved_packets_allowed() {
        let mut c = DeliveryChecker::new(TerminalId(1));
        let a = packet(1, TerminalId(1), 2);
        let b = packet(2, TerminalId(1), 2);
        c.deliver(&a[0]).unwrap();
        c.deliver(&b[0]).unwrap();
        assert_eq!(c.packets_in_flight(), 2);
        assert!(c.deliver(&b[1]).unwrap());
        assert!(c.deliver(&a[1]).unwrap());
    }

    #[test]
    fn wrong_destination_detected() {
        let mut c = DeliveryChecker::new(TerminalId(1));
        let flits = packet(1, TerminalId(9), 1);
        let err = c.deliver(&flits[0]).unwrap_err();
        assert!(matches!(err, CheckError::WrongDestination { .. }));
        assert!(err.to_string().contains("t9"));
    }

    #[test]
    fn out_of_order_detected() {
        let mut c = DeliveryChecker::new(TerminalId(1));
        let flits = packet(1, TerminalId(1), 3);
        c.deliver(&flits[0]).unwrap();
        let err = c.deliver(&flits[2]).unwrap_err();
        assert!(matches!(
            err,
            CheckError::OutOfOrder {
                expected_seq: 1,
                actual_seq: 2,
                ..
            }
        ));
    }

    #[test]
    fn duplicate_flit_detected() {
        let mut c = DeliveryChecker::new(TerminalId(1));
        let flits = packet(1, TerminalId(1), 2);
        c.deliver(&flits[0]).unwrap();
        let err = c.deliver(&flits[0]).unwrap_err();
        assert!(matches!(err, CheckError::OutOfOrder { .. }));
    }

    #[test]
    fn flit_after_tail_detected() {
        let mut c = DeliveryChecker::new(TerminalId(1));
        let flits = packet(1, TerminalId(1), 1);
        c.deliver(&flits[0]).unwrap();
        // Same packet id, fabricated extra flit: expected map was cleared,
        // so the checker treats it as a fresh packet starting at seq 0 —
        // build a 2-flit duplicate to hit the AfterTail path instead.
        let dup = packet(1, TerminalId(1), 1);
        // Re-delivery of a completed single-flit packet restarts at 0 and
        // immediately completes; that is indistinguishable from a reused
        // packet id, which the id allocator never produces. Deliver twice
        // without removal to exercise AfterTail:
        let mut c2 = DeliveryChecker::new(TerminalId(1));
        c2.expected.insert(PacketId(1), 1);
        let err = c2.deliver(&dup[0]).unwrap_err();
        assert!(matches!(err, CheckError::AfterTail { .. }));
    }
}
