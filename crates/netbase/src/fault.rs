//! Deterministic fault injection and link-level retransmission.
//!
//! The fault plane perturbs the network at its channels — the only place
//! where components touch each other — so every model (router
//! architectures, interfaces) gains fault tolerance through one shared
//! mechanism instead of per-model code:
//!
//! - **link outages** (scheduled via [`ScheduledOutage`] or drawn
//!   stochastically) silently drop flits on the wire for an interval,
//! - **bit errors** corrupt a flit's header [`Flit::crc`] in flight,
//! - **credit loss** swallows a returning flow-control credit.
//!
//! Recovery is a stop-and-wait link-level retransmission protocol kept in
//! per-output-port [`LinkFaults`] state: a dropped flit is retransmitted
//! after an exponential-backoff timeout (the sender self-schedules an
//! [`Ev::Internal`] timer tagged with [`RETRY_TAG`]); a corrupted flit is
//! detected by the receiver's checksum ([`Flit::crc_ok`]), discarded, and
//! nacked upstream ([`Ev::Nack`]); the first clean redelivery after a
//! corruption episode is acked ([`Ev::Ack`]) so the sender can release the
//! replayed flit. While an episode is unresolved, later flits for the same
//! output port wait in a FIFO hold queue — channels are in-order, so
//! wormhole and VC ordering invariants survive retransmission. When
//! `fault.retry.max` consecutive attempts fail, the episode escalates as a
//! typed [`FaultError`] through the engine's failure path.
//!
//! Determinism: every stochastic draw comes from the *sending* component's
//! own RNG stream (`Context::rng`), which is a pure function of
//! `(seed, component index)`. Neither the engine backend nor the shard
//! count can perturb a draw, so fault schedules — and therefore entire
//! faulty runs — are bit-identical across `SequentialEngine` and
//! `ShardedEngine` for one `(configuration, seed)`. Lost credits are *not*
//! recovered; at high `fault.credit_loss_rate` a run starves into the
//! watchdog on purpose.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use supersim_des::{Context, Tick, Time};

use crate::event::Ev;
use crate::flit::Flit;
use crate::ids::Port;
use crate::link::LinkTarget;
use crate::trace::{FlitTraceExt, TraceKind};

/// High bits of the [`Ev::Internal`] tag used for retransmission timers.
pub const RETRY_TAG: u64 = 0xFA17_0000_0000_0000;

/// Encodes a retransmission-timer tag for an output port.
#[inline]
pub fn retry_tag(port: Port) -> u64 {
    RETRY_TAG | port as u64
}

/// Decodes a retransmission-timer tag back into its output port, or
/// `None` when the tag belongs to someone else.
#[inline]
pub fn retry_port(tag: u64) -> Option<Port> {
    (tag & !0xFFFF_FFFF == RETRY_TAG).then_some((tag & 0xFFFF_FFFF) as Port)
}

/// Identifies one directed link (by its sending endpoint) for outage
/// scheduling and error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkId {
    /// The channel out of `port` of router `router`.
    Router {
        /// Router index in the topology.
        router: u32,
        /// Output port of that router.
        port: Port,
    },
    /// The injection channel of terminal `terminal`.
    Terminal {
        /// Terminal index.
        terminal: u32,
    },
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkId::Router { router, port } => write!(f, "r{router}:p{port}"),
            LinkId::Terminal { terminal } => write!(f, "t{terminal}"),
        }
    }
}

/// A config-scheduled link outage over the half-open interval
/// `[start, end)` in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledOutage {
    /// Which link goes down.
    pub link: LinkId,
    /// First tick of the outage.
    pub start: Tick,
    /// First tick after the outage.
    pub end: Tick,
}

/// Fault-injection parameters (the `fault.*` configuration keys).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that one flit transmission is corrupted in flight.
    pub bit_error_rate: f64,
    /// Probability that one returning credit is lost (never recovered).
    pub credit_loss_rate: f64,
    /// Probability that one flit transmission starts a stochastic outage.
    pub outage_rate: f64,
    /// Duration in ticks of a stochastic outage.
    pub outage_duration: Tick,
    /// Consecutive failed transmissions tolerated before escalating.
    pub max_retries: u32,
    /// Base retransmission backoff in ticks; attempt `n` waits
    /// `backoff_base << (n - 1)`.
    pub backoff_base: Tick,
    /// Deterministically scheduled outages.
    pub outages: Vec<ScheduledOutage>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            bit_error_rate: 0.0,
            credit_loss_rate: 0.0,
            outage_rate: 0.0,
            outage_duration: 0,
            max_retries: 8,
            backoff_base: 1,
            outages: Vec::new(),
        }
    }
}

/// The immutable, simulation-wide fault schedule, shared by every
/// component behind an [`Arc`].
#[derive(Debug)]
pub struct FaultPlane {
    /// The injection parameters.
    pub config: FaultConfig,
}

impl FaultPlane {
    /// Wraps a configuration.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlane { config }
    }

    /// Whether `link` is inside a scheduled outage at `tick`.
    #[inline]
    pub fn in_scheduled_outage(&self, link: LinkId, tick: Tick) -> bool {
        self.config
            .outages
            .iter()
            .any(|o| o.link == link && o.start <= tick && tick < o.end)
    }
}

/// A typed unrecoverable fault, escalated through the engine's failure
/// path when retransmission gives up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// Every allowed retransmission of a flit failed.
    RetriesExhausted {
        /// The link that kept failing.
        link: LinkId,
        /// How many transmissions were attempted.
        attempts: u32,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::RetriesExhausted { link, attempts } => write!(
                f,
                "fault: link {link} retries exhausted after {attempts} failed transmissions"
            ),
        }
    }
}

impl std::error::Error for FaultError {}

/// Fault lifecycle counters, aggregated into the `fault` metrics plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Faults injected (drops, corruptions, lost credits).
    pub injected: u64,
    /// Corruptions caught by the receiver's checksum.
    pub detected: u64,
    /// Fault episodes resolved by retransmission.
    pub recovered: u64,
    /// Episodes that exhausted their retries.
    pub escalated: u64,
    /// Flit payload copies made by the fault plane. Every copy is on an
    /// episode path (corrupt deliveries, retransmission snapshots); a
    /// fault-enabled run with zero injections makes zero copies, which
    /// the profiling plane asserts.
    pub flit_clones: u64,
}

impl FaultCounters {
    /// Accumulates another component's counters into this one.
    pub fn absorb(&mut self, other: &FaultCounters) {
        self.injected += other.injected;
        self.detected += other.detected;
        self.recovered += other.recovered;
        self.escalated += other.escalated;
        self.flit_clones += other.flit_clones;
    }
}

/// Sender-side retransmission state for one output port.
#[derive(Debug)]
struct TxState {
    /// Identity of the outgoing channel (for outage lookup and errors).
    link: LinkId,
    /// The flit whose episode is unresolved, with its delivery delay.
    outstanding: Option<(Tick, Flit)>,
    /// Whether the current episode ever corrupted a delivery — if so the
    /// receiver holds an `awaiting_retx` flag and recovery needs its ack.
    corrupt_seen: bool,
    /// Failed transmissions in the current episode.
    attempts: u32,
    /// Flits departed while the episode was unresolved (FIFO order).
    hold: VecDeque<(Tick, Flit)>,
    /// End of the current stochastic outage, if one is active.
    outage_until: Tick,
    /// The episode escalated; the port is dead.
    escalated: bool,
}

/// Receiver-side state for one input port.
#[derive(Debug, Default)]
struct RxState {
    /// A corrupt flit was discarded; the next clean arrival is the
    /// retransmission and must be acked.
    awaiting_retx: bool,
}

/// Per-component fault machinery: wraps every flit send, receive, and
/// credit return of one router or interface.
///
/// Components hold `Option<LinkFaults>` — `None` when the fault plane is
/// disabled, so the healthy fast path costs exactly one branch.
#[derive(Debug)]
pub struct LinkFaults {
    plane: Arc<FaultPlane>,
    tx: Vec<TxState>,
    rx: Vec<RxState>,
    /// Lifecycle counters for the metrics plane.
    pub counters: FaultCounters,
}

impl LinkFaults {
    /// Creates fault state for a component with one entry per port;
    /// `links[p]` names the outgoing channel of output port `p`.
    pub fn new(plane: Arc<FaultPlane>, links: Vec<LinkId>) -> Self {
        let n = links.len();
        LinkFaults {
            plane,
            tx: links
                .into_iter()
                .map(|link| TxState {
                    link,
                    outstanding: None,
                    corrupt_seen: false,
                    attempts: 0,
                    hold: VecDeque::new(),
                    outage_until: 0,
                    escalated: false,
                })
                .collect(),
            rx: (0..n).map(|_| RxState::default()).collect(),
            counters: FaultCounters::default(),
        }
    }

    /// The shared fault schedule.
    pub fn plane(&self) -> &Arc<FaultPlane> {
        &self.plane
    }

    /// Whether any output port has an unresolved fault episode.
    pub fn busy(&self) -> bool {
        self.tx
            .iter()
            .any(|t| t.outstanding.is_some() || !t.hold.is_empty())
    }

    /// Flits parked in hold queues behind unresolved episodes (for
    /// diagnostics).
    pub fn held_flits(&self) -> u64 {
        self.tx
            .iter()
            .map(|t| t.hold.len() as u64 + u64::from(t.outstanding.is_some()))
            .sum()
    }

    fn backoff(&self, attempts: u32) -> Tick {
        let shift = attempts.saturating_sub(1).min(20);
        self.plane
            .config
            .backoff_base
            .max(1)
            .saturating_mul(1 << shift)
    }

    /// Sends `flit` out of `out_port` over `link`, arriving `delay` ticks
    /// from now — the faultful replacement for a direct
    /// `ctx.schedule(.., Ev::Flit ..)`. While a fault episode is
    /// unresolved on this port the flit waits its turn in FIFO order.
    pub fn send(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        out_port: Port,
        link: &LinkTarget,
        delay: Tick,
        flit: Flit,
        trace_src: u32,
    ) {
        let p = out_port as usize;
        if self.tx[p].outstanding.is_some() || !self.tx[p].hold.is_empty() {
            self.tx[p].hold.push_back((delay, flit));
            return;
        }
        self.attempt(ctx, p, link, delay, flit, trace_src, false);
    }

    /// One transmission attempt: draws the port's fault fate from the
    /// component's RNG stream and either delivers, corrupts, or drops.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        p: usize,
        link: &LinkTarget,
        delay: Tick,
        flit: Flit,
        trace_src: u32,
        is_retx: bool,
    ) {
        if self.tx[p].escalated {
            return;
        }
        let tick = ctx.now().tick();
        let cfg = &self.plane.config;
        // Outage: scheduled, still-active stochastic, or a fresh draw.
        let mut down =
            tick < self.tx[p].outage_until || self.plane.in_scheduled_outage(self.tx[p].link, tick);
        if !down && cfg.outage_rate > 0.0 && ctx.rng().gen_bool(cfg.outage_rate) {
            self.tx[p].outage_until = tick + cfg.outage_duration.max(1);
            down = true;
        }
        if down {
            // Dropped on the wire; the sender times out and retransmits.
            self.counters.injected += 1;
            ctx.trace_flit(TraceKind::FaultInject, trace_src, &flit);
            self.tx[p].outstanding = Some((delay, flit));
            self.transmission_failed(ctx, p, trace_src, true);
            return;
        }
        if cfg.bit_error_rate > 0.0 && ctx.rng().gen_bool(cfg.bit_error_rate) {
            // Corrupted in flight: the receiver's checksum catches it and
            // nacks; no timer needed. The copy is unavoidable — the clean
            // original must survive for the retransmission.
            self.counters.flit_clones += 1;
            let mut corrupted = flit.clone();
            corrupted.crc ^= (ctx.rng().gen_u64() as u16) | 1;
            self.counters.injected += 1;
            ctx.trace_flit(TraceKind::FaultInject, trace_src, &flit);
            ctx.schedule(
                link.component,
                Time::at(tick + delay),
                Ev::Flit {
                    port: link.port,
                    flit: corrupted,
                },
            );
            self.tx[p].outstanding = Some((delay, flit));
            self.tx[p].corrupt_seen = true;
            self.transmission_failed(ctx, p, trace_src, false);
            return;
        }
        // Clean transmission. Only a retransmission closing a corruption
        // episode still needs the payload afterwards (the receiver
        // discarded a corrupt copy earlier and will ack this redelivery,
        // so the episode stays open until then); every other clean send —
        // the entire fault-free hot path — moves the flit into the event
        // without a copy.
        let keep = is_retx && self.tx[p].corrupt_seen;
        if keep {
            self.counters.flit_clones += 1;
            self.tx[p].outstanding = Some((delay, flit.clone()));
        }
        ctx.schedule(
            link.component,
            Time::at(tick + delay),
            Ev::Flit {
                port: link.port,
                flit,
            },
        );
        if is_retx && !keep {
            // Drop-only episode: delivery of the clean copy is
            // guaranteed (the sender drew the fault, so it knows).
            self.recover(ctx, p, link, trace_src);
        }
    }

    /// Books one failed transmission: escalates past the retry budget,
    /// otherwise arms the backoff timer when the failure was silent (a
    /// drop — corruption failures are re-driven by the receiver's nack).
    fn transmission_failed(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        p: usize,
        trace_src: u32,
        arm_timer: bool,
    ) {
        self.tx[p].attempts += 1;
        let attempts = self.tx[p].attempts;
        if attempts > self.plane.config.max_retries {
            self.counters.escalated += 1;
            self.tx[p].escalated = true;
            if let Some((_, flit)) = &self.tx[p].outstanding {
                let flit = flit.clone();
                self.counters.flit_clones += 1;
                ctx.trace_flit(TraceKind::FaultEscalate, trace_src, &flit);
            }
            ctx.fail(
                FaultError::RetriesExhausted {
                    link: self.tx[p].link,
                    attempts,
                }
                .to_string(),
            );
            return;
        }
        if arm_timer {
            let wait = self.backoff(attempts);
            let tick = ctx.now().tick();
            ctx.schedule_self(Time::at(tick + wait), Ev::Internal(retry_tag(p as Port)));
        }
    }

    /// Declares the port's episode recovered and pumps the hold queue.
    fn recover(&mut self, ctx: &mut Context<'_, Ev>, p: usize, link: &LinkTarget, trace_src: u32) {
        if let Some((_, flit)) = self.tx[p].outstanding.take() {
            self.counters.recovered += 1;
            ctx.trace_flit(TraceKind::FaultRecover, trace_src, &flit);
        }
        self.tx[p].attempts = 0;
        self.tx[p].corrupt_seen = false;
        // Drain held flits until one of them faults in turn. Bursting at
        // one tick is safe: the downstream credits were consumed when the
        // flits originally departed, so buffer space is guaranteed.
        while self.tx[p].outstanding.is_none() && !self.tx[p].escalated {
            let Some((delay, flit)) = self.tx[p].hold.pop_front() else {
                break;
            };
            self.attempt(ctx, p, link, delay, flit, trace_src, false);
        }
    }

    /// Handles the port's retransmission timer ([`Ev::Internal`] with
    /// [`retry_tag`]) by re-attempting the outstanding flit.
    pub fn handle_retry(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        out_port: Port,
        link: &LinkTarget,
        trace_src: u32,
    ) {
        let p = out_port as usize;
        if self.tx[p].escalated {
            return;
        }
        if let Some((delay, flit)) = self.tx[p].outstanding.clone() {
            // The snapshot stays parked in case this attempt fails too.
            self.counters.flit_clones += 1;
            self.attempt(ctx, p, link, delay, flit, trace_src, true);
        }
    }

    /// Handles a receiver's [`Ev::Nack`]: the delivered copy was corrupt,
    /// so count the failure and retransmit (the nack replaces the timer).
    pub fn handle_nack(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        out_port: Port,
        link: &LinkTarget,
        trace_src: u32,
    ) {
        self.handle_retry(ctx, out_port, link, trace_src);
    }

    /// Handles a receiver's [`Ev::Ack`] confirming clean redelivery after
    /// a corruption episode.
    pub fn handle_ack(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        out_port: Port,
        link: &LinkTarget,
        trace_src: u32,
    ) {
        let p = out_port as usize;
        if self.tx[p].outstanding.is_some() && self.tx[p].corrupt_seen {
            self.recover(ctx, p, link, trace_src);
        }
    }

    /// Receiver-side admission check for a flit arriving on `in_port`.
    ///
    /// Returns the flit when its checksum verifies (acking upstream via
    /// `reply` if it closes a corruption episode); consumes it and nacks
    /// upstream when corrupt. `reply` addresses the sender's *output*
    /// port, exactly like a returning credit.
    pub fn receive(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        in_port: Port,
        reply: Option<LinkTarget>,
        flit: Flit,
        trace_src: u32,
    ) -> Option<Flit> {
        let tick = ctx.now().tick();
        let r = in_port as usize;
        if flit.crc_ok() {
            if self.rx[r].awaiting_retx {
                self.rx[r].awaiting_retx = false;
                if let Some(rep) = reply {
                    ctx.schedule(
                        rep.component,
                        Time::at(tick + rep.latency),
                        Ev::Ack { port: rep.port },
                    );
                }
            }
            return Some(flit);
        }
        self.counters.detected += 1;
        ctx.trace_flit(TraceKind::FaultNack, trace_src, &flit);
        self.rx[r].awaiting_retx = true;
        if let Some(rep) = reply {
            ctx.schedule(
                rep.component,
                Time::at(tick + rep.latency),
                Ev::Nack { port: rep.port },
            );
        }
        None
    }

    /// Draws the fate of one returning credit; `true` means the credit is
    /// lost and the caller must not schedule it.
    pub fn credit_lost(&mut self, ctx: &mut Context<'_, Ev>) -> bool {
        let rate = self.plane.config.credit_loss_rate;
        if rate > 0.0 && ctx.rng().gen_bool(rate) {
            self.counters.injected += 1;
            return true;
        }
        false
    }

    /// Serializes the dynamic half for a checkpoint. The structural half
    /// (the shared plane, per-port link identities) is rebuilt from
    /// configuration on restore.
    pub fn save(&self, out: &mut Vec<u8>) {
        use supersim_des::wire::{put_varint, WireCodec};
        put_varint(out, self.tx.len() as u64);
        for t in &self.tx {
            match &t.outstanding {
                None => out.push(0),
                Some((delay, flit)) => {
                    out.push(1);
                    put_varint(out, *delay);
                    flit.encode(out);
                }
            }
            out.push(u8::from(t.corrupt_seen));
            put_varint(out, u64::from(t.attempts));
            put_varint(out, t.hold.len() as u64);
            for (delay, flit) in &t.hold {
                put_varint(out, *delay);
                flit.encode(out);
            }
            put_varint(out, t.outage_until);
            out.push(u8::from(t.escalated));
        }
        for r in &self.rx {
            out.push(u8::from(r.awaiting_retx));
        }
        put_varint(out, self.counters.injected);
        put_varint(out, self.counters.detected);
        put_varint(out, self.counters.recovered);
        put_varint(out, self.counters.escalated);
        put_varint(out, self.counters.flit_clones);
    }

    /// Overlays a saved dynamic state onto this structurally rebuilt
    /// instance. Total: `None` on malformed input or a port-count
    /// mismatch (the snapshot came from a different configuration).
    pub fn load(&mut self, buf: &mut &[u8]) -> Option<()> {
        use supersim_des::wire::{get_u8, get_varint, WireCodec};
        fn get_bool(buf: &mut &[u8]) -> Option<bool> {
            match supersim_des::wire::get_u8(buf)? {
                0 => Some(false),
                1 => Some(true),
                _ => None,
            }
        }
        let ports = get_varint(buf)?;
        if ports != self.tx.len() as u64 {
            return None;
        }
        for t in self.tx.iter_mut() {
            t.outstanding = match get_u8(buf)? {
                0 => None,
                1 => {
                    let delay = get_varint(buf)?;
                    Some((delay, Flit::decode(buf)?))
                }
                _ => return None,
            };
            t.corrupt_seen = get_bool(buf)?;
            t.attempts = u32::try_from(get_varint(buf)?).ok()?;
            let held = usize::try_from(get_varint(buf)?).ok()?;
            if held > buf.len() {
                return None;
            }
            t.hold.clear();
            for _ in 0..held {
                let delay = get_varint(buf)?;
                t.hold.push_back((delay, Flit::decode(buf)?));
            }
            t.outage_until = get_varint(buf)?;
            t.escalated = get_bool(buf)?;
        }
        for r in self.rx.iter_mut() {
            r.awaiting_retx = get_bool(buf)?;
        }
        self.counters.injected = get_varint(buf)?;
        self.counters.detected = get_varint(buf)?;
        self.counters.recovered = get_varint(buf)?;
        self.counters.escalated = get_varint(buf)?;
        self.counters.flit_clones = get_varint(buf)?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_tags_round_trip() {
        for port in [0u32, 1, 7, 4095] {
            assert_eq!(retry_port(retry_tag(port)), Some(port));
        }
        assert_eq!(retry_port(0), None);
        assert_eq!(retry_port(7), None);
        assert_eq!(retry_port(u64::MAX), None);
    }

    #[test]
    fn scheduled_outage_window_is_half_open() {
        let link = LinkId::Router { router: 2, port: 1 };
        let plane = FaultPlane::new(FaultConfig {
            outages: vec![ScheduledOutage {
                link,
                start: 10,
                end: 20,
            }],
            ..FaultConfig::default()
        });
        assert!(!plane.in_scheduled_outage(link, 9));
        assert!(plane.in_scheduled_outage(link, 10));
        assert!(plane.in_scheduled_outage(link, 19));
        assert!(!plane.in_scheduled_outage(link, 20));
        assert!(!plane.in_scheduled_outage(LinkId::Router { router: 2, port: 0 }, 15));
        assert!(!plane.in_scheduled_outage(LinkId::Terminal { terminal: 2 }, 15));
    }

    #[test]
    fn counters_absorb_sums_fields() {
        let mut a = FaultCounters {
            injected: 1,
            detected: 2,
            recovered: 3,
            escalated: 4,
            flit_clones: 5,
        };
        a.absorb(&FaultCounters {
            injected: 10,
            detected: 20,
            recovered: 30,
            escalated: 40,
            flit_clones: 50,
        });
        assert_eq!(
            a,
            FaultCounters {
                injected: 11,
                detected: 22,
                recovered: 33,
                escalated: 44,
                flit_clones: 55,
            }
        );
    }

    #[test]
    fn fault_error_display_names_the_link() {
        let e = FaultError::RetriesExhausted {
            link: LinkId::Terminal { terminal: 5 },
            attempts: 9,
        };
        let msg = e.to_string();
        assert!(msg.contains("t5"), "{msg}");
        assert!(msg.contains("retries exhausted"), "{msg}");
        let e = FaultError::RetriesExhausted {
            link: LinkId::Router { router: 3, port: 2 },
            attempts: 9,
        };
        assert!(e.to_string().contains("r3:p2"));
    }

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let plane = Arc::new(FaultPlane::new(FaultConfig {
            backoff_base: 2,
            ..FaultConfig::default()
        }));
        let lf = LinkFaults::new(plane, vec![LinkId::Terminal { terminal: 0 }]);
        assert_eq!(lf.backoff(1), 2);
        assert_eq!(lf.backoff(2), 4);
        assert_eq!(lf.backoff(5), 32);
        // Deep attempt counts must not overflow the shift.
        assert!(lf.backoff(u32::MAX) >= lf.backoff(21));
    }

    #[test]
    fn zero_backoff_base_still_advances_time() {
        let plane = Arc::new(FaultPlane::new(FaultConfig {
            backoff_base: 0,
            ..FaultConfig::default()
        }));
        let lf = LinkFaults::new(plane, vec![LinkId::Terminal { terminal: 0 }]);
        assert!(lf.backoff(1) >= 1);
    }
}
