//! Property-based tests for credit accounting and delivery checking.

use proptest::prelude::*;

use crate::check::DeliveryChecker;
use crate::credit::CreditCounter;
use crate::flit::PacketBuilder;
use crate::ids::{AppId, MessageId, PacketId, TerminalId};

proptest! {
    /// A credit counter never exceeds its capacity, never goes negative,
    /// and its occupancy always complements availability — under any
    /// consume/release sequence.
    #[test]
    fn credit_counter_invariants(
        capacity in 0u32..64,
        ops in prop::collection::vec(any::<bool>(), 0..256),
    ) {
        let mut c = CreditCounter::new(capacity);
        let mut model = capacity; // available credits in a trivial model
        for consume in ops {
            if consume {
                let ok = c.try_consume();
                prop_assert_eq!(ok, model > 0);
                if ok {
                    model -= 1;
                }
            } else {
                let ok = c.release().is_ok();
                prop_assert_eq!(ok, model < capacity);
                if ok {
                    model += 1;
                }
            }
            prop_assert_eq!(c.available(), model);
            prop_assert_eq!(c.occupancy(), capacity - model);
            prop_assert!(c.available() <= c.capacity());
        }
    }

    /// Delivering any interleaving of whole packets (each internally in
    /// order) succeeds; shuffling flits *within* a packet fails.
    #[test]
    fn delivery_checker_accepts_interleaved_packets(
        sizes in prop::collection::vec(1u32..6, 1..8),
        seed in 0u64..1000,
    ) {
        let dst = TerminalId(0);
        let mut checker = DeliveryChecker::new(dst);
        // One cursor per packet; pick a random non-exhausted packet each
        // step and deliver its next flit.
        let packets: Vec<Vec<crate::flit::Flit>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| {
                PacketBuilder {
                    id: PacketId(i as u64),
                    message: MessageId(i as u64),
                    app: AppId(0),
                    src: TerminalId(1),
                    dst,
                    size,
                    message_size: size,
                    inject_tick: 0,
                    message_tick: 0,
                    sample: false,
                }
                .build()
            })
            .collect();
        let mut cursors = vec![0usize; packets.len()];
        let mut rng = supersim_des::Rng::new(seed);
        let total: usize = sizes.iter().map(|&s| s as usize).sum();
        for _ in 0..total {
            let live: Vec<usize> = (0..packets.len())
                .filter(|&i| cursors[i] < packets[i].len())
                .collect();
            prop_assert!(!live.is_empty(), "flits remain");
            let i = live[rng.gen_range(0..live.len())];
            let flit = &packets[i][cursors[i]];
            cursors[i] += 1;
            let done = checker.deliver(flit).expect("in-order delivery must pass");
            prop_assert_eq!(done, cursors[i] == packets[i].len());
        }
        prop_assert_eq!(checker.packets_completed(), packets.len() as u64);
        prop_assert_eq!(checker.flits_delivered(), total as u64);
        prop_assert_eq!(checker.packets_in_flight(), 0);
    }

    /// Swapping two distinct flits of a multi-flit packet is always
    /// detected as an ordering violation.
    #[test]
    fn delivery_checker_rejects_swaps(size in 2u32..8, a in 0u32..8, b in 0u32..8) {
        prop_assume!(a < size && b < size && a != b);
        let dst = TerminalId(2);
        let mut checker = DeliveryChecker::new(dst);
        let mut flits = PacketBuilder {
            id: PacketId(1),
            message: MessageId(1),
            app: AppId(0),
            src: TerminalId(0),
            dst,
            size,
            message_size: size,
            inject_tick: 0,
            message_tick: 0,
            sample: false,
        }
        .build();
        flits.swap(a as usize, b as usize);
        let mut failed = false;
        for f in &flits {
            if checker.deliver(f).is_err() {
                failed = true;
                break;
            }
        }
        prop_assert!(failed, "swapped flits were not detected");
    }
}
