//! The four-phase workload protocol vocabulary (paper §IV-A, Figure 4).
//!
//! The Workload is a state machine that monitors and controls the execution
//! of all Applications through a handshake of signals (application →
//! workload) and commands (workload → application):
//!
//! | Phase      | Entered by            | Left when app sends |
//! |------------|-----------------------|---------------------|
//! | Warming    | implicitly at start   | `Ready`             |
//! | Generating | `Start` command       | `Complete`          |
//! | Finishing  | `Stop` command        | `Done`              |
//! | Draining   | `Kill` command        | (network drains)    |

use std::fmt;

/// The four execution phases of the workload protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Applications may send traffic to warm up the network.
    Warming,
    /// The primary phase: traffic generated here is sampled.
    Generating,
    /// Roll-over traffic that still needs to be sampled.
    Finishing,
    /// No new traffic; the network drains and the simulation ends.
    Draining,
}

impl Phase {
    /// All phases in protocol order.
    pub const ALL: [Phase; 4] = [
        Phase::Warming,
        Phase::Generating,
        Phase::Finishing,
        Phase::Draining,
    ];

    /// Stable index in protocol order (0..4), for per-phase arrays.
    pub fn index(self) -> usize {
        match self {
            Phase::Warming => 0,
            Phase::Generating => 1,
            Phase::Finishing => 2,
            Phase::Draining => 3,
        }
    }

    /// Whether applications may create *new* traffic in this phase.
    pub fn allows_generation(self) -> bool {
        !matches!(self, Phase::Draining)
    }

    /// Whether traffic created in this phase is flagged for sampling.
    pub fn samples(self) -> bool {
        matches!(self, Phase::Generating)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Warming => "warming",
            Phase::Generating => "generating",
            Phase::Finishing => "finishing",
            Phase::Draining => "draining",
        };
        f.write_str(s)
    }
}

/// Signals sent by an application to the workload monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppSignal {
    /// The application finished warming.
    Ready,
    /// The application performed its necessary traffic generation.
    Complete,
    /// The application finished all remaining generation.
    Done,
}

/// Commands broadcast by the workload monitor to all applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseCommand {
    /// Enter the generating phase.
    Start,
    /// Enter the finishing phase.
    Stop,
    /// Enter the draining phase; no new traffic allowed.
    Kill,
}

impl PhaseCommand {
    /// The phase an application enters on receiving this command.
    pub fn next_phase(self) -> Phase {
        match self {
            PhaseCommand::Start => Phase::Generating,
            PhaseCommand::Stop => Phase::Finishing,
            PhaseCommand::Kill => Phase::Draining,
        }
    }
}

impl fmt::Display for AppSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AppSignal::Ready => "ready",
            AppSignal::Complete => "complete",
            AppSignal::Done => "done",
        };
        f.write_str(s)
    }
}

impl fmt::Display for PhaseCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PhaseCommand::Start => "start",
            PhaseCommand::Stop => "stop",
            PhaseCommand::Kill => "kill",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_phase_mapping() {
        assert_eq!(PhaseCommand::Start.next_phase(), Phase::Generating);
        assert_eq!(PhaseCommand::Stop.next_phase(), Phase::Finishing);
        assert_eq!(PhaseCommand::Kill.next_phase(), Phase::Draining);
    }

    #[test]
    fn generation_and_sampling_rules() {
        assert!(Phase::Warming.allows_generation());
        assert!(!Phase::Warming.samples());
        assert!(Phase::Generating.allows_generation());
        assert!(Phase::Generating.samples());
        assert!(Phase::Finishing.allows_generation());
        assert!(!Phase::Finishing.samples());
        assert!(!Phase::Draining.allows_generation());
    }

    #[test]
    fn display_names() {
        assert_eq!(Phase::Generating.to_string(), "generating");
        assert_eq!(AppSignal::Ready.to_string(), "ready");
        assert_eq!(PhaseCommand::Kill.to_string(), "kill");
    }
}
