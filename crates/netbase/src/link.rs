//! Channel wiring descriptors.
//!
//! The paper's `Channel` components carry flits (and credits, in reverse)
//! with a configurable latency. In this reproduction a channel is wiring
//! metadata: the sender schedules the arrival event `latency` ticks in the
//! future at the [`LinkTarget`]. This is behaviourally identical for
//! everything the paper measures while avoiding one component (and two
//! events) per flit per hop.

use supersim_des::{ComponentId, Tick};

use crate::ids::Port;

/// The far end of a channel: which component, which of its ports, and how
/// far away (in ticks) it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTarget {
    /// Receiving component.
    pub component: ComponentId,
    /// Input port on the receiving component (or output port, for the
    /// reverse credit direction).
    pub port: Port,
    /// Channel latency in ticks.
    pub latency: Tick,
}

impl LinkTarget {
    /// Creates a link target.
    pub fn new(component: ComponentId, port: Port, latency: Tick) -> Self {
        LinkTarget {
            component,
            port,
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let t = LinkTarget::new(ComponentId::from_index(4), 2, 50);
        assert_eq!(t.component.index(), 4);
        assert_eq!(t.port, 2);
        assert_eq!(t.latency, 50);
    }
}
