//! Arena/SoA flit storage for router hot paths.
//!
//! Routers used to move whole [`Flit`] values (an `Arc`, five scalar
//! fields, and an optional boxed span) through every pipeline stage:
//! input buffer → crossbar candidate → output queue → channel event.
//! The arena splits that into two parts:
//!
//! - a **slab** of flit records addressed by a compact [`FlitHandle`];
//!   pipeline stages move the 4-byte handle and the payload stays put,
//! - a **metadata side table** ([`FlitMeta`]): the head/body/tail flags,
//!   packet size, and age that allocation-stage scans read every cycle,
//!   stored structure-of-arrays so candidate collection never chases the
//!   packet `Arc`.
//!
//! Lifetime rules (documented in DESIGN.md):
//!
//! 1. A flit enters a component's arena exactly once, on arrival
//!    ([`FlitArena::insert`]), and leaves exactly once, on departure
//!    ([`FlitArena::take`]) — when it is serialized into an [`Ev::Flit`]
//!    event for the next component. Events still carry flits by value:
//!    handles are component-local and never cross the wire (a sharded
//!    engine may deliver the event on another thread).
//! 2. Between insert and take, exactly one buffer or queue in the
//!    component holds the handle; aliasing a handle is a logic error.
//! 3. Freed slots are recycled LIFO, so steady-state occupancy stays
//!    compact and allocation-free.
//!
//! The `span` discipline is unchanged: spans stay boxed on the flit
//! payload (only on tail flits, only when the plane is enabled) and ride
//! in the slab slot.
//!
//! [`Ev::Flit`]: crate::Ev::Flit

use crate::flit::Flit;

/// Compact address of a flit parked in a [`FlitArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlitHandle(u32);

impl FlitHandle {
    /// The slab slot index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

const META_HEAD: u8 = 1;
const META_TAIL: u8 = 2;

/// The per-flit fields allocation-stage scans read every cycle, split
/// from the payload (structure-of-arrays).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlitMeta {
    /// Packet age (injection tick) for age-based arbitration.
    pub age: u64,
    /// Packet length in flits (packet-buffer flow control reservations).
    pub packet_size: u32,
    flags: u8,
}

impl FlitMeta {
    fn of(flit: &Flit) -> Self {
        FlitMeta {
            age: flit.pkt.inject_tick,
            packet_size: flit.pkt.size,
            flags: u8::from(flit.is_head()) * META_HEAD + u8::from(flit.is_tail()) * META_TAIL,
        }
    }

    /// Whether the flit is its packet's head.
    #[inline]
    pub fn is_head(self) -> bool {
        self.flags & META_HEAD != 0
    }

    /// Whether the flit is its packet's tail.
    #[inline]
    pub fn is_tail(self) -> bool {
        self.flags & META_TAIL != 0
    }
}

/// A slab of in-flight flits owned by one component.
#[derive(Debug, Default)]
pub struct FlitArena {
    slots: Vec<Option<Flit>>,
    meta: Vec<FlitMeta>,
    free: Vec<u32>,
    live: u32,
    high_water: u32,
}

impl FlitArena {
    /// An empty arena.
    pub fn new() -> Self {
        FlitArena::default()
    }

    /// An empty arena with `capacity` slots pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        FlitArena {
            slots: Vec::with_capacity(capacity),
            meta: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            ..FlitArena::default()
        }
    }

    /// Parks a flit and returns its handle.
    pub fn insert(&mut self, flit: Flit) -> FlitHandle {
        let meta = FlitMeta::of(&flit);
        let idx = match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.slots[idx as usize].is_none());
                self.slots[idx as usize] = Some(flit);
                self.meta[idx as usize] = meta;
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Some(flit));
                self.meta.push(meta);
                idx
            }
        };
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        FlitHandle(idx)
    }

    /// The parked flit.
    ///
    /// # Panics
    ///
    /// Panics if the handle's slot is vacant (already taken).
    #[inline]
    pub fn get(&self, h: FlitHandle) -> &Flit {
        self.slots[h.index()].as_ref().expect("vacant flit slot")
    }

    /// Mutable access to the parked flit (routing annotates heads in
    /// place; span touch points stamp waits).
    ///
    /// # Panics
    ///
    /// Panics if the handle's slot is vacant.
    #[inline]
    pub fn get_mut(&mut self, h: FlitHandle) -> &mut Flit {
        self.slots[h.index()].as_mut().expect("vacant flit slot")
    }

    /// The scan metadata of the parked flit.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the handle's slot is vacant.
    #[inline]
    pub fn meta(&self, h: FlitHandle) -> FlitMeta {
        debug_assert!(self.slots[h.index()].is_some(), "vacant flit slot");
        self.meta[h.index()]
    }

    /// Removes the flit, freeing its slot for reuse.
    ///
    /// # Panics
    ///
    /// Panics if the handle's slot is vacant.
    pub fn take(&mut self, h: FlitHandle) -> Flit {
        let flit = self.slots[h.index()].take().expect("vacant flit slot");
        self.free.push(h.0);
        self.live -= 1;
        flit
    }

    /// Reconstructs the handle of the flit parked at `index`, or `None`
    /// if the slot is out of range or vacant. Used when decoding
    /// checkpointed buffers that store handles by slot index.
    pub fn handle_at(&self, index: u32) -> Option<FlitHandle> {
        self.slots.get(index as usize)?.as_ref()?;
        Some(FlitHandle(index))
    }

    /// Total slab slots (occupied + vacant).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Flits currently parked.
    #[inline]
    pub fn live(&self) -> u32 {
        self.live
    }

    /// Most flits ever parked at once — the arena occupancy high-water
    /// mark of the profiling plane.
    #[inline]
    pub fn high_water(&self) -> u32 {
        self.high_water
    }

    /// Serializes the arena for a checkpoint: slot contents positionally
    /// (so parked handles stay valid) plus the free list in LIFO order
    /// (so post-restore handle assignment replays identically).
    pub fn save(&self, out: &mut Vec<u8>) {
        use supersim_des::wire::{put_varint, WireCodec};
        put_varint(out, self.slots.len() as u64);
        for slot in &self.slots {
            match slot {
                None => out.push(0),
                Some(f) => {
                    out.push(1);
                    f.encode(out);
                }
            }
        }
        put_varint(out, self.free.len() as u64);
        for &i in &self.free {
            put_varint(out, u64::from(i));
        }
        put_varint(out, u64::from(self.high_water));
    }

    /// Decodes an arena saved by [`FlitArena::save`]. Total: `None` on
    /// malformed input or inconsistent slot/free-list structure. Scan
    /// metadata is recomputed from the flits themselves.
    pub fn load(buf: &mut &[u8]) -> Option<FlitArena> {
        use supersim_des::wire::{get_u8, get_varint, WireCodec};
        let n = usize::try_from(get_varint(buf)?).ok()?;
        if n > buf.len() {
            return None;
        }
        let mut arena = FlitArena::with_capacity(n);
        for _ in 0..n {
            match get_u8(buf)? {
                0 => {
                    arena.slots.push(None);
                    arena.meta.push(FlitMeta::default());
                }
                1 => {
                    let flit = Flit::decode(buf)?;
                    arena.meta.push(FlitMeta::of(&flit));
                    arena.slots.push(Some(flit));
                    arena.live += 1;
                }
                _ => return None,
            }
        }
        let nfree = usize::try_from(get_varint(buf)?).ok()?;
        // Every vacant slot must appear on the free list exactly once.
        if nfree != n - arena.live as usize {
            return None;
        }
        let mut seen = vec![false; n];
        for _ in 0..nfree {
            let i = u32::try_from(get_varint(buf)?).ok()?;
            let idx = i as usize;
            if idx >= n || arena.slots[idx].is_some() || seen[idx] {
                return None;
            }
            seen[idx] = true;
            arena.free.push(i);
        }
        arena.high_water = u32::try_from(get_varint(buf)?).ok()?;
        if arena.high_water < arena.live {
            return None;
        }
        Some(arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::PacketBuilder;
    use crate::ids::{AppId, MessageId, PacketId, TerminalId};

    fn flits(size: u32) -> Vec<Flit> {
        PacketBuilder {
            id: PacketId(9),
            message: MessageId(9),
            app: AppId(0),
            src: TerminalId(0),
            dst: TerminalId(1),
            size,
            message_size: size,
            inject_tick: 42,
            message_tick: 42,
            sample: false,
        }
        .build()
    }

    #[test]
    fn round_trips_flits() {
        let mut a = FlitArena::new();
        let fs = flits(3);
        let hs: Vec<FlitHandle> = fs.into_iter().map(|f| a.insert(f)).collect();
        assert_eq!(a.live(), 3);
        assert_eq!(a.get(hs[1]).seq, 1);
        let f = a.take(hs[1]);
        assert_eq!(f.seq, 1);
        assert_eq!(a.live(), 2);
        assert_eq!(a.take(hs[0]).seq, 0);
        assert_eq!(a.take(hs[2]).seq, 2);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn meta_mirrors_flit_identity() {
        let mut a = FlitArena::new();
        for f in flits(3) {
            let age = f.pkt.inject_tick;
            let (head, tail, size) = (f.is_head(), f.is_tail(), f.pkt.size);
            let h = a.insert(f);
            let m = a.meta(h);
            assert_eq!(m.age, age);
            assert_eq!(m.is_head(), head);
            assert_eq!(m.is_tail(), tail);
            assert_eq!(m.packet_size, size);
        }
    }

    #[test]
    fn slots_recycle_and_high_water_tracks_peak() {
        let mut a = FlitArena::new();
        let hs: Vec<FlitHandle> = flits(4).into_iter().map(|f| a.insert(f)).collect();
        assert_eq!(a.high_water(), 4);
        for &h in &hs {
            a.take(h);
        }
        // Reinserting reuses the freed slots: no slab growth.
        let before = a.slots.len();
        for f in flits(4) {
            a.insert(f);
        }
        assert_eq!(a.slots.len(), before);
        assert_eq!(a.high_water(), 4);
    }

    #[test]
    fn mutation_through_handle_sticks() {
        let mut a = FlitArena::new();
        let h = a.insert(flits(1).remove(0));
        a.get_mut(h).hops = 7;
        assert_eq!(a.take(h).hops, 7);
    }

    #[test]
    #[should_panic(expected = "vacant flit slot")]
    fn double_take_panics() {
        let mut a = FlitArena::new();
        let h = a.insert(flits(1).remove(0));
        a.take(h);
        a.take(h);
    }
}
