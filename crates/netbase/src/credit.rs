//! Credit-based flow control bookkeeping.
//!
//! An upstream port holds one [`CreditCounter`] per downstream (port, VC)
//! buffer. Sending a flit consumes a credit; the downstream device returns
//! the credit when the flit leaves its buffer. Per paper §IV-D, credits
//! never go negative and never exceed the buffer size — both conditions are
//! surfaced as errors instead of silently corrupting the simulation.

use std::fmt;

/// Errors raised by credit accounting (paper §IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreditError {
    /// A flit send was attempted with zero credits available.
    Underflow,
    /// A credit return exceeded the downstream buffer capacity.
    Overflow,
}

impl fmt::Display for CreditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CreditError::Underflow => write!(f, "credit counter went negative"),
            CreditError::Overflow => {
                write!(f, "credit return exceeded downstream buffer capacity")
            }
        }
    }
}

impl std::error::Error for CreditError {}

/// Tracks available credits for one downstream buffer.
///
/// # Example
///
/// ```
/// use supersim_netbase::CreditCounter;
///
/// let mut c = CreditCounter::new(2);
/// assert!(c.try_consume());
/// assert!(c.try_consume());
/// assert!(!c.try_consume()); // exhausted
/// c.release().unwrap();
/// assert_eq!(c.available(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditCounter {
    capacity: u32,
    available: u32,
}

impl CreditCounter {
    /// Creates a counter for a downstream buffer of `capacity` flits,
    /// initially full.
    pub fn new(capacity: u32) -> Self {
        CreditCounter {
            capacity,
            available: capacity,
        }
    }

    /// Credits currently available.
    #[inline]
    pub fn available(&self) -> u32 {
        self.available
    }

    /// Total capacity of the downstream buffer.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Credits currently in use (flits resident downstream or in flight).
    #[inline]
    pub fn occupancy(&self) -> u32 {
        self.capacity - self.available
    }

    /// Whether at least one credit is available.
    #[inline]
    pub fn has_credit(&self) -> bool {
        self.available > 0
    }

    /// Whether at least `n` credits are available (packet-buffer flow
    /// control asks this for whole packets).
    #[inline]
    pub fn has_credits(&self, n: u32) -> bool {
        self.available >= n
    }

    /// Consumes one credit if available; returns whether it did.
    #[inline]
    pub fn try_consume(&mut self) -> bool {
        if self.available > 0 {
            self.available -= 1;
            true
        } else {
            false
        }
    }

    /// Consumes one credit.
    ///
    /// # Errors
    ///
    /// Returns [`CreditError::Underflow`] when no credit is available —
    /// a flow-control protocol violation by the caller.
    #[inline]
    pub fn consume(&mut self) -> Result<(), CreditError> {
        if self.try_consume() {
            Ok(())
        } else {
            Err(CreditError::Underflow)
        }
    }

    /// Returns one credit.
    ///
    /// # Errors
    ///
    /// Returns [`CreditError::Overflow`] when the counter is already full —
    /// a duplicated or misrouted credit.
    #[inline]
    pub fn release(&mut self) -> Result<(), CreditError> {
        if self.available < self.capacity {
            self.available += 1;
            Ok(())
        } else {
            Err(CreditError::Overflow)
        }
    }

    /// Overwrites the available count (checkpoint restore). Returns
    /// `None` when `available` exceeds the structural capacity.
    pub fn restore_available(&mut self, available: u32) -> Option<()> {
        if available > self.capacity {
            return None;
        }
        self.available = available;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consume_and_release_cycle() {
        let mut c = CreditCounter::new(3);
        assert_eq!(c.available(), 3);
        assert_eq!(c.occupancy(), 0);
        c.consume().unwrap();
        c.consume().unwrap();
        assert_eq!(c.available(), 1);
        assert_eq!(c.occupancy(), 2);
        c.release().unwrap();
        assert_eq!(c.available(), 2);
    }

    #[test]
    fn underflow_detected() {
        let mut c = CreditCounter::new(1);
        c.consume().unwrap();
        assert_eq!(c.consume(), Err(CreditError::Underflow));
    }

    #[test]
    fn overflow_detected() {
        let mut c = CreditCounter::new(1);
        assert_eq!(c.release(), Err(CreditError::Overflow));
    }

    #[test]
    fn has_credits_for_packet_sized_checks() {
        let mut c = CreditCounter::new(8);
        assert!(c.has_credits(8));
        c.consume().unwrap();
        assert!(c.has_credits(7));
        assert!(!c.has_credits(8));
    }

    #[test]
    fn zero_capacity_counter_never_grants() {
        let mut c = CreditCounter::new(0);
        assert!(!c.has_credit());
        assert!(!c.try_consume());
    }

    #[test]
    fn error_messages() {
        assert_eq!(
            CreditError::Underflow.to_string(),
            "credit counter went negative"
        );
        assert!(CreditError::Overflow.to_string().contains("capacity"));
    }
}
