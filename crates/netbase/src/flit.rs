//! Flits and packets.
//!
//! A *flit* (flow control digit) is the smallest unit on which routers
//! manage buffering, data flow, and resource scheduling. A packet is a
//! sequence of flits sharing one [`PacketInfo`]; a message is one or more
//! packets sharing a [`MessageId`](crate::MessageId).

use std::sync::Arc;

use supersim_des::Tick;

use crate::ids::{AppId, MessageId, PacketId, RouterId, TerminalId, Vc};

/// Immutable metadata shared by all flits of one packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketInfo {
    /// Unique packet id.
    pub id: PacketId,
    /// The message this packet belongs to.
    pub message: MessageId,
    /// The application that generated the packet.
    pub app: AppId,
    /// Source terminal.
    pub src: TerminalId,
    /// Destination terminal.
    pub dst: TerminalId,
    /// Packet length in flits.
    pub size: u32,
    /// Total flits in the whole message (for reassembly accounting).
    pub message_size: u32,
    /// Tick at which the head flit entered the source interface queue.
    pub inject_tick: Tick,
    /// Tick at which the *message* was created (equal to `inject_tick` for
    /// the first packet of a message).
    pub message_tick: Tick,
    /// Whether this packet is flagged for the sampling window.
    pub sample: bool,
}

/// Per-flit latency attribution carried across phase boundaries the flit
/// already crosses: injection enqueue, switch-allocation grant,
/// serialization start, channel traversal, credit-stall resume, and
/// ejection.
///
/// The five accumulators partition the flit's end-to-end latency into the
/// waiting it did at each kind of resource. Every attribution interval is
/// a sub-interval of the flit's disjoint residence segments, so in a
/// fault-free run the components sum *exactly* to
/// `eject_tick - enqueue_tick`; link-level retransmission delays (fault
/// plane holds and replays) are the only unattributed time and surface as
/// a non-negative residual in [`FlitSpan::breakdown`].
///
/// Spans ride on the flit behind an `Option<Box<_>>`: the disabled path
/// is a null-pointer check per touch point, exactly like the fault and
/// trace planes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlitSpan {
    /// Tick the flit entered the source interface queue.
    pub enqueue: Tick,
    /// Start of the current residence segment (last arrival).
    pub arrive: Tick,
    /// Tick the flit was first seen blocked on a zero-credit output at
    /// the current router, if it is currently credit-stalled.
    pub stall_start: Option<Tick>,
    /// Ticks spent waiting in the source interface queue.
    pub queueing: Tick,
    /// Ticks spent waiting for VC/switch allocation (router residence
    /// minus credit stalls).
    pub alloc: Tick,
    /// Ticks spent traversing crossbars / router cores.
    pub serialization: Tick,
    /// Ticks spent traversing channels.
    pub channel: Tick,
    /// Ticks spent blocked on exhausted downstream credits.
    pub credit: Tick,
}

impl FlitSpan {
    /// A fresh span for a flit enqueued at `now`.
    pub fn new(now: Tick) -> Self {
        FlitSpan {
            enqueue: now,
            arrive: now,
            stall_start: None,
            queueing: 0,
            alloc: 0,
            serialization: 0,
            channel: 0,
            credit: 0,
        }
    }

    /// The flit leaves the source interface queue at `now` onto a channel
    /// of `link` ticks: the wait since enqueue was queueing.
    #[inline]
    pub fn inject(&mut self, now: Tick, link: Tick) {
        self.queueing = self
            .queueing
            .saturating_add(now.saturating_sub(self.enqueue));
        self.channel = self.channel.saturating_add(link);
    }

    /// The flit arrives at a router input at `now`: a new residence
    /// segment begins.
    #[inline]
    pub fn enter(&mut self, now: Tick) {
        self.arrive = now;
        self.stall_start = None;
    }

    /// The switch allocator saw the flit blocked on a zero-credit output
    /// at `now`. Only the first stall of a residence segment is kept: the
    /// stall runs until the grant.
    #[inline]
    pub fn stall(&mut self, now: Tick) {
        if self.stall_start.is_none() {
            self.stall_start = Some(now);
        }
    }

    /// Credits returned while the flit was credit-stalled: the stall
    /// interval `stall_start..now` becomes credit wait, the pre-stall wait
    /// `arrive..stall_start` becomes allocation wait, and a fresh
    /// allocation segment begins at `now`. No-op if the flit was not
    /// stalled.
    #[inline]
    pub fn resume(&mut self, now: Tick) {
        if let Some(st) = self.stall_start.take() {
            self.credit = self.credit.saturating_add(now.saturating_sub(st));
            self.alloc = self.alloc.saturating_add(st.saturating_sub(self.arrive));
            self.arrive = now;
        }
    }

    /// Granted the crossbar at `now`, spending `switch` ticks in the
    /// switch and `link` ticks on the outgoing channel. Splits the
    /// residence `arrive..now` into allocation wait and credit stall
    /// (closing any still-open stall first).
    #[inline]
    pub fn grant(&mut self, now: Tick, switch: Tick, link: Tick) {
        self.resume(now);
        self.alloc = self.alloc.saturating_add(now.saturating_sub(self.arrive));
        self.serialization = self.serialization.saturating_add(switch);
        self.channel = self.channel.saturating_add(link);
    }

    /// Decomposes the end-to-end latency of a flit ejected at `now`.
    pub fn breakdown(&self, now: Tick) -> SpanBreakdown {
        let total = now.saturating_sub(self.enqueue);
        let attributed = self
            .queueing
            .saturating_add(self.alloc)
            .saturating_add(self.serialization)
            .saturating_add(self.channel)
            .saturating_add(self.credit);
        SpanBreakdown {
            total,
            queueing: self.queueing,
            alloc: self.alloc,
            serialization: self.serialization,
            channel: self.channel,
            credit: self.credit,
            residual: total.saturating_sub(attributed),
        }
    }
}

/// A packet's end-to-end latency decomposed into component waits (built
/// from the tail flit's [`FlitSpan`] at ejection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanBreakdown {
    /// End-to-end latency: ejection tick minus enqueue tick.
    pub total: Tick,
    /// Source interface queue wait.
    pub queueing: Tick,
    /// VC/switch allocation wait.
    pub alloc: Tick,
    /// Crossbar / router core traversal.
    pub serialization: Tick,
    /// Channel traversal.
    pub channel: Tick,
    /// Credit-stall wait.
    pub credit: Tick,
    /// Unattributed time — zero in fault-free runs, retransmission holds
    /// otherwise.
    pub residual: Tick,
}

/// One flow control digit.
///
/// Flits are cheap to clone: the packet metadata is behind an [`Arc`].
#[derive(Debug, Clone)]
pub struct Flit {
    /// Shared metadata of the owning packet.
    pub pkt: Arc<PacketInfo>,
    /// Position of this flit within its packet, starting at 0.
    pub seq: u32,
    /// Virtual channel currently occupied; rewritten hop by hop.
    pub vc: Vc,
    /// Routers traversed so far; incremented on each switch traversal.
    pub hops: u16,
    /// Intermediate router for non-minimal (Valiant-style) routing, set on
    /// the head flit by the source router's routing algorithm and carried
    /// with the packet until the intermediate is reached.
    pub inter: Option<RouterId>,
    /// Header checksum over the flit's identity, set at packet build time.
    /// The fault plane flips bits here to model in-flight corruption;
    /// receivers verify with [`Flit::crc_ok`].
    pub crc: u16,
    /// Latency-attribution stamps, `None` unless the span plane is
    /// enabled (the source interface allocates one per flit at enqueue).
    pub span: Option<Box<FlitSpan>>,
}

impl Flit {
    /// Whether this is the head flit of its packet.
    #[inline]
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }

    /// Whether this is the tail flit of its packet.
    ///
    /// A single-flit packet is both head and tail.
    #[inline]
    pub fn is_tail(&self) -> bool {
        self.seq + 1 == self.pkt.size
    }

    /// The expected checksum of a flit identified by `(packet, seq)`:
    /// one splitmix64-style mix folded to 16 bits.
    #[inline]
    pub fn compute_crc(packet: u64, seq: u32) -> u16 {
        let mut z = packet ^ ((seq as u64) << 40) ^ 0x9E37_79B9_7F4A_7C15;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z ^ (z >> 16) ^ (z >> 32) ^ (z >> 48)) as u16
    }

    /// Whether the header checksum matches the flit's identity.
    #[inline]
    pub fn crc_ok(&self) -> bool {
        self.crc == Self::compute_crc(self.pkt.id.0, self.seq)
    }
}

/// Expands a [`PacketInfo`] into its flits.
///
/// # Example
///
/// ```
/// use supersim_netbase::{PacketBuilder, PacketId, MessageId, AppId, TerminalId};
///
/// let flits = PacketBuilder {
///     id: PacketId(1),
///     message: MessageId(1),
///     app: AppId(0),
///     src: TerminalId(0),
///     dst: TerminalId(5),
///     size: 4,
///     message_size: 4,
///     inject_tick: 100,
///     message_tick: 100,
///     sample: true,
/// }
/// .build();
/// assert_eq!(flits.len(), 4);
/// assert!(flits[0].is_head());
/// assert!(flits[3].is_tail());
/// assert!(!flits[1].is_head());
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    /// See [`PacketInfo::id`].
    pub id: PacketId,
    /// See [`PacketInfo::message`].
    pub message: MessageId,
    /// See [`PacketInfo::app`].
    pub app: AppId,
    /// See [`PacketInfo::src`].
    pub src: TerminalId,
    /// See [`PacketInfo::dst`].
    pub dst: TerminalId,
    /// See [`PacketInfo::size`].
    pub size: u32,
    /// See [`PacketInfo::message_size`].
    pub message_size: u32,
    /// See [`PacketInfo::inject_tick`].
    pub inject_tick: Tick,
    /// See [`PacketInfo::message_tick`].
    pub message_tick: Tick,
    /// See [`PacketInfo::sample`].
    pub sample: bool,
}

impl PacketBuilder {
    /// The shared packet metadata and the flit sequence it spans.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero: a packet has at least a head flit.
    fn flits(self, vc: Vc) -> impl Iterator<Item = Flit> {
        assert!(self.size > 0, "packet must contain at least one flit");
        let info = Arc::new(PacketInfo {
            id: self.id,
            message: self.message,
            app: self.app,
            src: self.src,
            dst: self.dst,
            size: self.size,
            message_size: self.message_size,
            inject_tick: self.inject_tick,
            message_tick: self.message_tick,
            sample: self.sample,
        });
        (0..info.size).map(move |seq| Flit {
            pkt: Arc::clone(&info),
            seq,
            vc,
            hops: 0,
            inter: None,
            crc: Flit::compute_crc(info.id.0, seq),
            span: None,
        })
    }

    /// Materializes the packet as a vector of flits on VC 0.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero: a packet has at least a head flit.
    pub fn build(self) -> Vec<Flit> {
        self.flits(0).collect()
    }

    /// Materializes the packet on `vc` straight into an injection
    /// queue, skipping the intermediate vector [`build`](Self::build)
    /// allocates — interfaces enqueue one packet per `max_packet_size`
    /// flits, so this sits on the workload hot path.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero: a packet has at least a head flit.
    pub fn build_into(self, vc: Vc, out: &mut std::collections::VecDeque<Flit>) {
        out.extend(self.flits(vc));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder(size: u32) -> PacketBuilder {
        PacketBuilder {
            id: PacketId(7),
            message: MessageId(3),
            app: AppId(0),
            src: TerminalId(1),
            dst: TerminalId(2),
            size,
            message_size: size,
            inject_tick: 50,
            message_tick: 50,
            sample: false,
        }
    }

    #[test]
    fn single_flit_packet_is_head_and_tail() {
        let flits = builder(1).build();
        assert_eq!(flits.len(), 1);
        assert!(flits[0].is_head());
        assert!(flits[0].is_tail());
    }

    #[test]
    fn multi_flit_packet_structure() {
        let flits = builder(5).build();
        assert_eq!(flits.len(), 5);
        assert!(flits[0].is_head() && !flits[0].is_tail());
        for f in &flits[1..4] {
            assert!(!f.is_head() && !f.is_tail());
        }
        assert!(flits[4].is_tail() && !flits[4].is_head());
        // All flits share the same metadata allocation.
        assert!(Arc::ptr_eq(&flits[0].pkt, &flits[4].pkt));
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_size_packet_panics() {
        let _ = builder(0).build();
    }

    #[test]
    fn build_into_matches_build() {
        // The allocation-free path appends the exact flits `build`
        // returns, on the requested VC, behind existing queue contents.
        let mut queue: std::collections::VecDeque<Flit> = builder(1).build().into();
        builder(4).build_into(2, &mut queue);
        let reference = builder(4).build();
        assert_eq!(queue.len(), 5);
        for (q, r) in queue.iter().skip(1).zip(&reference) {
            assert_eq!(q.vc, 2);
            assert_eq!((q.seq, q.hops, q.crc), (r.seq, r.hops, r.crc));
            assert_eq!(q.pkt, r.pkt);
        }
        assert!(Arc::ptr_eq(&queue[1].pkt, &queue[4].pkt));
    }

    #[test]
    fn flits_start_on_vc_zero_with_no_hops() {
        let flits = builder(2).build();
        assert!(flits
            .iter()
            .all(|f| f.vc == 0 && f.hops == 0 && f.inter.is_none()));
    }

    #[test]
    fn built_flits_carry_a_valid_checksum() {
        let flits = builder(3).build();
        assert!(flits.iter().all(Flit::crc_ok));
        // Distinct flit identities should (for these values) checksum
        // differently, and a flipped bit must be caught.
        assert_ne!(flits[0].crc, flits[1].crc);
        let mut bad = flits[0].clone();
        bad.crc ^= 1;
        assert!(!bad.crc_ok());
    }

    #[test]
    fn span_telescopes_exactly() {
        // enqueue 10, inject at 14 onto a 3-tick link, arrive 17, stall
        // seen at 20 (re-seen at 22), credits back at 26, granted at 30
        // through a 2-tick switch onto a 5-tick link, arrive 37, granted
        // straight through onto a 1-tick ejection link, ejected at 38.
        let mut s = FlitSpan::new(10);
        s.inject(14, 3);
        s.enter(17);
        s.stall(20);
        s.stall(22);
        s.resume(26);
        s.grant(30, 2, 5);
        s.enter(37);
        s.grant(37, 0, 1);
        let b = s.breakdown(38);
        assert_eq!(b.total, 28);
        assert_eq!(b.queueing, 4);
        assert_eq!(b.alloc, 7);
        assert_eq!(b.serialization, 2);
        assert_eq!(b.channel, 9);
        assert_eq!(b.credit, 6);
        assert_eq!(b.residual, 0);
        assert_eq!(
            b.queueing + b.alloc + b.serialization + b.channel + b.credit + b.residual,
            b.total
        );
    }

    #[test]
    fn span_open_stall_closes_at_grant() {
        let mut s = FlitSpan::new(0);
        s.inject(0, 1);
        s.enter(1);
        s.stall(4);
        s.grant(9, 1, 1);
        let b = s.breakdown(11);
        assert_eq!(b.alloc, 3);
        assert_eq!(b.credit, 5);
        assert_eq!(b.serialization, 1);
        assert_eq!(b.channel, 2);
        assert_eq!(b.residual, 0);
        assert_eq!(b.total, 11);
    }

    #[test]
    fn span_resume_without_stall_is_noop() {
        let mut s = FlitSpan::new(0);
        s.enter(5);
        s.resume(8);
        s.grant(10, 0, 0);
        let b = s.breakdown(10);
        assert_eq!(b.alloc, 5);
        assert_eq!(b.credit, 0);
    }

    #[test]
    fn checksum_is_a_pure_function_of_identity() {
        assert_eq!(Flit::compute_crc(7, 0), Flit::compute_crc(7, 0));
        assert_ne!(Flit::compute_crc(7, 0), Flit::compute_crc(8, 0));
        assert_ne!(Flit::compute_crc(7, 0), Flit::compute_crc(7, 1));
    }
}
