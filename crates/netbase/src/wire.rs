//! Wire encoding of the network event vocabulary for the multi-process
//! shard transport.
//!
//! Implements the engine's [`WireCodec`] trait for [`Ev`] and everything
//! a cross-shard event carries ([`Flit`], [`PacketInfo`], [`FlitSpan`]).
//! The encoding is positional and varint-based — see
//! [`supersim_des::wire`] for the framing layers.
//!
//! One representation subtlety: all flits of a packet share their
//! [`PacketInfo`] behind an `Arc` in memory. The wire format flattens the
//! metadata into each flit, so a flit decoded on the far shard gets its
//! own `Arc`. That is safe because `PacketInfo` is immutable after build
//! and nothing in the simulator relies on `Arc` *pointer* identity for
//! correctness — reassembly and accounting key on packet/message ids.
//! Cross-shard flit events are rare enough (one per channel traversal
//! that crosses a partition boundary) that the duplicated metadata does
//! not measurably move the wire volume.

use std::sync::Arc;

use supersim_des::wire::{get_u8, get_varint, put_varint, WireCodec};
use supersim_des::Tick;

use crate::event::Ev;
use crate::flit::{Flit, FlitSpan, PacketInfo};
use crate::ids::{AppId, MessageId, PacketId, RouterId, TerminalId};
use crate::phase::{AppSignal, PhaseCommand};

fn get_u32(buf: &mut &[u8]) -> Option<u32> {
    u32::try_from(get_varint(buf)?).ok()
}

fn get_u16(buf: &mut &[u8]) -> Option<u16> {
    u16::try_from(get_varint(buf)?).ok()
}

impl WireCodec for PacketInfo {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.id.0);
        put_varint(out, self.message.0);
        out.push(self.app.0);
        put_varint(out, u64::from(self.src.0));
        put_varint(out, u64::from(self.dst.0));
        put_varint(out, u64::from(self.size));
        put_varint(out, u64::from(self.message_size));
        put_varint(out, self.inject_tick);
        put_varint(out, self.message_tick);
        out.push(u8::from(self.sample));
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(PacketInfo {
            id: PacketId(get_varint(buf)?),
            message: MessageId(get_varint(buf)?),
            app: AppId(get_u8(buf)?),
            src: TerminalId(get_u32(buf)?),
            dst: TerminalId(get_u32(buf)?),
            size: get_u32(buf)?,
            message_size: get_u32(buf)?,
            inject_tick: get_varint(buf)?,
            message_tick: get_varint(buf)?,
            sample: get_u8(buf)? != 0,
        })
    }
}

impl WireCodec for FlitSpan {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.enqueue);
        put_varint(out, self.arrive);
        self.stall_start.encode(out);
        put_varint(out, self.queueing);
        put_varint(out, self.alloc);
        put_varint(out, self.serialization);
        put_varint(out, self.channel);
        put_varint(out, self.credit);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(FlitSpan {
            enqueue: get_varint(buf)?,
            arrive: get_varint(buf)?,
            stall_start: Option::<Tick>::decode(buf)?,
            queueing: get_varint(buf)?,
            alloc: get_varint(buf)?,
            serialization: get_varint(buf)?,
            channel: get_varint(buf)?,
            credit: get_varint(buf)?,
        })
    }
}

impl WireCodec for Flit {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pkt.encode(out);
        put_varint(out, u64::from(self.seq));
        put_varint(out, u64::from(self.vc));
        put_varint(out, u64::from(self.hops));
        match self.inter {
            None => out.push(0),
            Some(r) => {
                out.push(1);
                put_varint(out, u64::from(r.0));
            }
        }
        put_varint(out, u64::from(self.crc));
        match &self.span {
            None => out.push(0),
            Some(span) => {
                out.push(1);
                span.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let pkt = Arc::new(PacketInfo::decode(buf)?);
        let seq = get_u32(buf)?;
        let vc = get_u32(buf)?;
        let hops = get_u16(buf)?;
        let inter = match get_u8(buf)? {
            0 => None,
            1 => Some(RouterId(get_u32(buf)?)),
            _ => return None,
        };
        let crc = get_u16(buf)?;
        let span = match get_u8(buf)? {
            0 => None,
            1 => Some(Box::new(FlitSpan::decode(buf)?)),
            _ => return None,
        };
        Some(Flit {
            pkt,
            seq,
            vc,
            hops,
            inter,
            crc,
            span,
        })
    }
}

fn signal_tag(s: AppSignal) -> u8 {
    match s {
        AppSignal::Ready => 0,
        AppSignal::Complete => 1,
        AppSignal::Done => 2,
    }
}

fn signal_from(tag: u8) -> Option<AppSignal> {
    match tag {
        0 => Some(AppSignal::Ready),
        1 => Some(AppSignal::Complete),
        2 => Some(AppSignal::Done),
        _ => None,
    }
}

fn command_tag(c: PhaseCommand) -> u8 {
    match c {
        PhaseCommand::Start => 0,
        PhaseCommand::Stop => 1,
        PhaseCommand::Kill => 2,
    }
}

fn command_from(tag: u8) -> Option<PhaseCommand> {
    match tag {
        0 => Some(PhaseCommand::Start),
        1 => Some(PhaseCommand::Stop),
        2 => Some(PhaseCommand::Kill),
        _ => None,
    }
}

impl WireCodec for Ev {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Ev::Flit { port, flit } => {
                out.push(0);
                put_varint(out, u64::from(*port));
                flit.encode(out);
            }
            Ev::Credit { port, vc } => {
                out.push(1);
                put_varint(out, u64::from(*port));
                put_varint(out, u64::from(*vc));
            }
            Ev::Pipeline => out.push(2),
            Ev::Inject => out.push(3),
            Ev::Signal { app, signal } => {
                out.push(4);
                out.push(app.0);
                out.push(signal_tag(*signal));
            }
            Ev::Ack { port } => {
                out.push(5);
                put_varint(out, u64::from(*port));
            }
            Ev::Nack { port } => {
                out.push(6);
                put_varint(out, u64::from(*port));
            }
            Ev::Command(c) => {
                out.push(7);
                out.push(command_tag(*c));
            }
            Ev::Internal(tag) => {
                out.push(8);
                put_varint(out, *tag);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match get_u8(buf)? {
            0 => Some(Ev::Flit {
                port: get_u32(buf)?,
                flit: Flit::decode(buf)?,
            }),
            1 => Some(Ev::Credit {
                port: get_u32(buf)?,
                vc: get_u32(buf)?,
            }),
            2 => Some(Ev::Pipeline),
            3 => Some(Ev::Inject),
            4 => Some(Ev::Signal {
                app: AppId(get_u8(buf)?),
                signal: signal_from(get_u8(buf)?)?,
            }),
            5 => Some(Ev::Ack {
                port: get_u32(buf)?,
            }),
            6 => Some(Ev::Nack {
                port: get_u32(buf)?,
            }),
            7 => Some(Ev::Command(command_from(get_u8(buf)?)?)),
            8 => Some(Ev::Internal(get_varint(buf)?)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim_des::Rng;

    fn rand_pkt(rng: &mut Rng) -> PacketInfo {
        PacketInfo {
            id: PacketId(rng.gen_u64()),
            message: MessageId(rng.gen_u64() >> 20),
            app: AppId(rng.gen_u64() as u8),
            src: TerminalId(rng.gen_u64() as u32),
            dst: TerminalId(rng.gen_u64() as u32),
            size: 1 + (rng.gen_u64() as u32 % 64),
            message_size: 1 + (rng.gen_u64() as u32 % 256),
            inject_tick: rng.gen_u64() >> 16,
            message_tick: rng.gen_u64() >> 16,
            sample: rng.gen_bool(0.5),
        }
    }

    fn rand_span(rng: &mut Rng) -> FlitSpan {
        FlitSpan {
            enqueue: rng.gen_u64() >> 32,
            arrive: rng.gen_u64() >> 32,
            stall_start: rng.gen_bool(0.5).then(|| rng.gen_u64() >> 32),
            queueing: rng.gen_u64() >> 40,
            alloc: rng.gen_u64() >> 40,
            serialization: rng.gen_u64() >> 40,
            channel: rng.gen_u64() >> 40,
            credit: rng.gen_u64() >> 40,
        }
    }

    fn rand_flit(rng: &mut Rng, with_span: bool) -> Flit {
        let pkt = rand_pkt(rng);
        Flit {
            seq: rng.gen_u64() as u32 % pkt.size,
            pkt: Arc::new(pkt),
            vc: rng.gen_u64() as u32 % 8,
            hops: rng.gen_u64() as u16,
            inter: rng.gen_bool(0.3).then(|| RouterId(rng.gen_u64() as u32)),
            crc: rng.gen_u64() as u16,
            span: (with_span && rng.gen_bool(0.7)).then(|| Box::new(rand_span(rng))),
        }
    }

    fn assert_flit_eq(a: &Flit, b: &Flit) {
        assert_eq!(*a.pkt, *b.pkt, "packet metadata");
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.vc, b.vc);
        assert_eq!(a.hops, b.hops);
        assert_eq!(a.inter, b.inter);
        assert_eq!(a.crc, b.crc);
        assert_eq!(a.span, b.span);
    }

    #[test]
    fn flit_round_trips_with_and_without_span() {
        let mut rng = Rng::new(0xF117);
        for i in 0..200 {
            let flit = rand_flit(&mut rng, i % 2 == 0);
            let mut buf = Vec::new();
            flit.encode(&mut buf);
            let mut slice = buf.as_slice();
            let back = Flit::decode(&mut slice).expect("decode");
            assert!(slice.is_empty(), "decode must consume the encoding");
            assert_flit_eq(&flit, &back);
        }
    }

    #[test]
    fn every_event_variant_round_trips() {
        // Randomized sweep across all nine variants, including the
        // fault-plane markers (Ack/Nack) and flits with spans enabled.
        let mut rng = Rng::new(0xE7E7);
        for i in 0..400 {
            let ev = match i % 9 {
                0 => Ev::Flit {
                    port: rng.gen_u64() as u32,
                    flit: rand_flit(&mut rng, true),
                },
                1 => Ev::Credit {
                    port: rng.gen_u64() as u32,
                    vc: rng.gen_u64() as u32,
                },
                2 => Ev::Pipeline,
                3 => Ev::Inject,
                4 => Ev::Signal {
                    app: AppId(rng.gen_u64() as u8),
                    signal: [AppSignal::Ready, AppSignal::Complete, AppSignal::Done]
                        [(rng.gen_u64() % 3) as usize],
                },
                5 => Ev::Ack {
                    port: rng.gen_u64() as u32,
                },
                6 => Ev::Nack {
                    port: rng.gen_u64() as u32,
                },
                7 => Ev::Command(
                    [PhaseCommand::Start, PhaseCommand::Stop, PhaseCommand::Kill]
                        [(rng.gen_u64() % 3) as usize],
                ),
                _ => Ev::Internal(rng.gen_u64()),
            };
            let mut buf = Vec::new();
            ev.encode(&mut buf);
            let mut slice = buf.as_slice();
            let back = Ev::decode(&mut slice).expect("decode");
            assert!(slice.is_empty(), "decode must consume the encoding");
            // `Ev` deliberately has no `PartialEq` (flits share `Arc`s);
            // the derived Debug is a faithful structural rendering.
            assert_eq!(format!("{ev:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let mut rng = Rng::new(7);
        let ev = Ev::Flit {
            port: 3,
            flit: rand_flit(&mut rng, true),
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        ev.encode(&mut a);
        ev.clone().encode(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn decode_is_total_on_garbage() {
        let mut rng = Rng::new(0x6A63);
        for _ in 0..300 {
            let len = (rng.gen_u64() % 40) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen_u64() as u8).collect();
            let _ = Ev::decode(&mut bytes.as_slice());
            let _ = Flit::decode(&mut bytes.as_slice());
            let _ = PacketInfo::decode(&mut bytes.as_slice());
            let _ = FlitSpan::decode(&mut bytes.as_slice());
        }
    }

    /// Pins the compactness claim of the varint encoding: a typical
    /// early-run flit event (small ids, ticks under ~10⁵) must stay
    /// within a cache line with its span attached and well under half of
    /// one without — the per-event wire budget EXPERIMENTS.md quotes.
    #[test]
    fn typical_flit_event_encodes_compactly() {
        let pkt = PacketInfo {
            id: PacketId(100_000),
            message: MessageId(25_000),
            app: AppId(0),
            src: TerminalId(37),
            dst: TerminalId(112),
            size: 8,
            message_size: 32,
            inject_tick: 40_000,
            message_tick: 39_990,
            sample: true,
        };
        let bare = Ev::Flit {
            port: 3,
            flit: Flit {
                seq: 5,
                pkt: Arc::new(pkt.clone()),
                vc: 2,
                hops: 4,
                inter: Some(RouterId(9)),
                crc: 0xBEEF,
                span: None,
            },
        };
        let mut buf = Vec::new();
        bare.encode(&mut buf);
        assert!(buf.len() <= 30, "bare flit event took {} bytes", buf.len());
        let spanned = Ev::Flit {
            port: 3,
            flit: Flit {
                seq: 5,
                pkt: Arc::new(pkt),
                vc: 2,
                hops: 4,
                inter: Some(RouterId(9)),
                crc: 0xBEEF,
                span: Some(Box::new(FlitSpan {
                    enqueue: 40_100,
                    arrive: 40_160,
                    stall_start: Some(40_130),
                    queueing: 12,
                    alloc: 3,
                    serialization: 8,
                    channel: 30,
                    credit: 7,
                })),
            },
        };
        buf.clear();
        spanned.encode(&mut buf);
        assert!(
            buf.len() <= 64,
            "spanned flit event took {} bytes",
            buf.len()
        );
        let credit = Ev::Credit { port: 5, vc: 2 };
        buf.clear();
        credit.encode(&mut buf);
        assert!(buf.len() <= 4, "credit event took {} bytes", buf.len());
    }
}
