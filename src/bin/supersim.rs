//! The `supersim` command-line simulator (paper Listing 1):
//!
//! ```text
//! supersim myconfig.json \
//!     network.router.architecture=string=my_arch \
//!     network.concentration=uint=16
//! ```
//!
//! Loads a JSON configuration — expanding `$include` files and `$ref`
//! object references (paper §III-C) — applies `path=type=value` overrides
//! in order, runs the simulation, prints an SSParse-style summary, and
//! writes the sample log next to the configuration as `<config>.log`
//! (parse it later with the `ssparse` tool or `--log <path>` to choose
//! the location; `--no-log` skips it).
//!
//! Observability outputs: `--metrics <file>` writes the end-of-run
//! metrics snapshot as JSON (render it with `ssreport`), and
//! `--trace <file>` writes the JSON-lines flit trace (requires
//! `observability.trace.enabled=bool=true` in the configuration).
//!
//! Time-resolved measurement: `--sample-interval <n>` arms the windowed
//! sampling plane (shorthand for `sample.interval`) and writes the
//! JSON-lines time-series next to the configuration as `<config>.timeseries`
//! (or `--timeseries <path>` to choose the location; render it with
//! `ssplot`). `--spans` enables per-packet latency attribution
//! (shorthand for `spans.enabled`); `--span-log <path>` additionally
//! dumps the per-packet span records as JSON-lines. Both outputs are
//! byte-identical across engines and shard counts.
//!
//! Engine selection: `--engine sequential|sharded` picks the execution
//! backend and `--shards <n>` the worker count (sharded only). Both are
//! shorthand for the `engine.kind` / `engine.shards` configuration paths
//! and take precedence over the configuration file and the
//! `SUPERSIM_ENGINE` / `SUPERSIM_SHARDS` environment variables. Results
//! are bit-identical across engines for one `(configuration, seed)`.
//!
//! Multi-process execution: `--workers <n>` runs the sharded engine
//! across `n` OS processes (shorthand for `engine.kind=sharded`,
//! `engine.transport=process`, `engine.shards=n`). The parent re-executes
//! this binary in the hidden `__worker` role, one process per shard, and
//! merges their outputs — byte-identical to the single-process backends
//! for one `(configuration, seed)`.
//!
//! Checkpoint/restore: `--checkpoint-interval <n>` captures the complete
//! simulation state into `--checkpoint-dir` (default `checkpoints/`)
//! every `n` ticks, on every backend. `--resume <file>` restores a
//! checkpoint into a freshly built simulation and continues the run —
//! logs, traces, metrics, and time-series come out byte-identical to an
//! uninterrupted run. In `--workers` mode the parent additionally
//! respawns a crashed or hung fleet from the last completed checkpoint
//! (budget `checkpoint.max_restarts`, default 3). `--worker-timeout-ms`
//! bounds how long the parent waits on a wedged worker socket
//! (shorthand for `process.timeout_ms`).
//!
//! Host-time observability: `--host-profile` arms the out-of-band
//! wall-clock profiler (`host.profile.enabled`) — where the run's host
//! time went, per engine phase and component class, in the `host` /
//! `host_shard_<s>` metrics planes (render with `ssreport
//! --host-profile`). `--host-trace <file>` additionally writes a Chrome
//! `trace_event` JSON timeline loadable in Perfetto. `--progress[=<ms>]`
//! emits a live JSON-lines heartbeat to stderr (tick, events/s, ETA;
//! default every 1000 ms). All three are strictly out-of-band:
//! simulation outputs stay byte-identical with them on or off.
//!
//! Scenarios: `--scenario <name|file>` compiles a compact scenario
//! declaration (a library name like `incast_storm`, or a declaration
//! file) into a full configuration and runs it. A declaration file given
//! as the plain configuration argument is detected by its top-level
//! `"scenario"` name and compiled the same way, so every file under
//! `configs/` — plain or declarative — runs with the same command line.
//! Expand without running via the `ssgen` tool.

use std::path::PathBuf;
use std::process::ExitCode;

use supersim::config;
use supersim::core::{SimError, SuperSim};
use supersim::scenario;
use supersim::stats::Filter;
use supersim::tools;

struct Args {
    config_path: Option<PathBuf>,
    scenario: Option<String>,
    overrides: Vec<String>,
    log_path: Option<PathBuf>,
    no_log: bool,
    metrics_path: Option<PathBuf>,
    trace_path: Option<PathBuf>,
    engine: Option<String>,
    shards: Option<u64>,
    workers: Option<u64>,
    faults: Option<f64>,
    watchdog_ticks: Option<u64>,
    sample_interval: Option<u64>,
    timeseries_path: Option<PathBuf>,
    spans: bool,
    span_log_path: Option<PathBuf>,
    checkpoint_interval: Option<u64>,
    checkpoint_dir: Option<PathBuf>,
    resume: Option<PathBuf>,
    worker_timeout_ms: Option<u64>,
    host_profile: bool,
    host_trace_path: Option<PathBuf>,
    progress_interval_ms: Option<u64>,
}

/// The pinned exit code of a degraded run; documented in the README.
/// 0 = clean, 1 = usage/configuration/build/output-io error, 2 = the
/// simulation degraded (deadlock, lost traffic, model error), 3 = the
/// no-progress watchdog tripped, 4 = a worker process failed, 5 = a
/// checkpoint resume failed.
fn exit_code(error: &SimError) -> u8 {
    match error {
        SimError::Model(_) | SimError::Stalled { .. } | SimError::Incomplete { .. } => 2,
        SimError::Watchdog { .. } => 3,
        SimError::Worker { .. } => 4,
        SimError::Resume { .. } => 5,
    }
}

fn parse_args() -> Result<Args, String> {
    let mut config_path = None;
    let mut scenario = None;
    let mut overrides = Vec::new();
    let mut log_path = None;
    let mut no_log = false;
    let mut metrics_path = None;
    let mut trace_path = None;
    let mut engine = None;
    let mut shards = None;
    let mut workers = None;
    let mut faults = None;
    let mut watchdog_ticks = None;
    let mut sample_interval = None;
    let mut timeseries_path = None;
    let mut spans = false;
    let mut span_log_path = None;
    let mut checkpoint_interval = None;
    let mut checkpoint_dir = None;
    let mut resume = None;
    let mut worker_timeout_ms = None;
    let mut host_profile = false;
    let mut host_trace_path = None;
    let mut progress_interval_ms = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if let Some(v) = arg.strip_prefix("--progress=") {
            let n: u64 = v
                .parse()
                .map_err(|_| format!("--progress interval must be in milliseconds, got {v:?}"))?;
            if n == 0 {
                return Err("--progress interval must be non-zero".to_string());
            }
            progress_interval_ms = Some(n);
            continue;
        }
        match arg.as_str() {
            "--host-profile" => host_profile = true,
            "--host-trace" => {
                let p = it.next().ok_or("--host-trace needs a path")?;
                host_trace_path = Some(PathBuf::from(p));
            }
            "--progress" => progress_interval_ms = Some(1000),
            "--log" => {
                let p = it.next().ok_or("--log needs a path")?;
                log_path = Some(PathBuf::from(p));
            }
            "--no-log" => no_log = true,
            "--metrics" => {
                let p = it.next().ok_or("--metrics needs a path")?;
                metrics_path = Some(PathBuf::from(p));
            }
            "--trace" => {
                let p = it.next().ok_or("--trace needs a path")?;
                trace_path = Some(PathBuf::from(p));
            }
            "--engine" => {
                let k = it.next().ok_or("--engine needs a kind")?;
                engine = Some(match k.as_str() {
                    "seq" | "sequential" => "sequential".to_string(),
                    "sharded" => k,
                    _ => {
                        return Err(format!(
                        "--engine must be \"sequential\" (alias \"seq\") or \"sharded\", got {k:?}"
                    ))
                    }
                });
            }
            "--shards" => {
                let n = it.next().ok_or("--shards needs a count")?;
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("--shards must be an integer, got {n:?}"))?;
                if n == 0 {
                    return Err("--shards must be non-zero".to_string());
                }
                shards = Some(n);
            }
            "--workers" => {
                let n = it.next().ok_or("--workers needs a count")?;
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("--workers must be an integer, got {n:?}"))?;
                if n == 0 {
                    return Err("--workers must be non-zero".to_string());
                }
                workers = Some(n);
            }
            "--faults" => {
                let r = it.next().ok_or("--faults needs a bit-error rate")?;
                let r: f64 = r
                    .parse()
                    .map_err(|_| format!("--faults must be a probability, got {r:?}"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("--faults must be in [0, 1], got {r}"));
                }
                faults = Some(r);
            }
            "--watchdog-ticks" => {
                let n = it.next().ok_or("--watchdog-ticks needs a tick count")?;
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("--watchdog-ticks must be an integer, got {n:?}"))?;
                watchdog_ticks = Some(n);
            }
            "--sample-interval" => {
                let n = it.next().ok_or("--sample-interval needs a tick count")?;
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("--sample-interval must be an integer, got {n:?}"))?;
                if n == 0 {
                    return Err("--sample-interval must be non-zero".to_string());
                }
                sample_interval = Some(n);
            }
            "--timeseries" => {
                let p = it.next().ok_or("--timeseries needs a path")?;
                timeseries_path = Some(PathBuf::from(p));
            }
            "--scenario" => {
                let s = it
                    .next()
                    .ok_or("--scenario needs a name or declaration file")?;
                scenario = Some(s);
            }
            "--spans" => spans = true,
            "--span-log" => {
                let p = it.next().ok_or("--span-log needs a path")?;
                span_log_path = Some(PathBuf::from(p));
            }
            "--checkpoint-interval" => {
                let n = it
                    .next()
                    .ok_or("--checkpoint-interval needs a tick count")?;
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("--checkpoint-interval must be an integer, got {n:?}"))?;
                if n == 0 {
                    return Err("--checkpoint-interval must be non-zero".to_string());
                }
                checkpoint_interval = Some(n);
            }
            "--checkpoint-dir" => {
                let p = it.next().ok_or("--checkpoint-dir needs a path")?;
                checkpoint_dir = Some(PathBuf::from(p));
            }
            "--resume" => {
                let p = it.next().ok_or("--resume needs a checkpoint file")?;
                resume = Some(PathBuf::from(p));
            }
            "--worker-timeout-ms" => {
                let n = it.next().ok_or("--worker-timeout-ms needs a budget")?;
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("--worker-timeout-ms must be an integer, got {n:?}"))?;
                if n == 0 {
                    return Err("--worker-timeout-ms must be non-zero".to_string());
                }
                worker_timeout_ms = Some(n);
            }
            "--help" | "-h" => {
                return Err("usage: supersim <config.json | --scenario <name|file>> \
                            [path=type=value ...] \
                            [--log <file> | --no-log] [--metrics <file>] [--trace <file>] \
                            [--engine sequential|sharded] [--shards <n>] [--workers <n>] \
                            [--faults <bit-error-rate>] [--watchdog-ticks <n>] \
                            [--sample-interval <n>] [--timeseries <file>] \
                            [--spans] [--span-log <file>] \
                            [--checkpoint-interval <n>] [--checkpoint-dir <dir>] \
                            [--resume <checkpoint>] [--worker-timeout-ms <n>] \
                            [--host-profile] [--host-trace <file>] [--progress[=<ms>]]"
                    .to_string())
            }
            a if a.contains('=') => overrides.push(a.to_string()),
            a if config_path.is_none() => config_path = Some(PathBuf::from(a)),
            a => return Err(format!("unexpected argument {a:?}")),
        }
    }
    if config_path.is_none() && scenario.is_none() {
        return Err("missing configuration file (or --scenario <name|file>)".to_string());
    }
    if config_path.is_some() && scenario.is_some() {
        return Err("give either a configuration file or --scenario, not both".to_string());
    }
    if workers.is_some() && (engine.is_some() || shards.is_some()) {
        return Err("--workers already implies --engine sharded and --shards; \
                    give one or the other"
            .to_string());
    }
    Ok(Args {
        config_path,
        scenario,
        overrides,
        log_path,
        no_log,
        metrics_path,
        trace_path,
        engine,
        shards,
        workers,
        faults,
        watchdog_ticks,
        sample_interval,
        timeseries_path,
        spans,
        span_log_path,
        checkpoint_interval,
        checkpoint_dir,
        resume,
        worker_timeout_ms,
        host_profile,
        host_trace_path,
        progress_interval_ms,
    })
}

fn main() -> ExitCode {
    // The hidden worker role of `--workers` runs: the parent re-executes
    // this binary as `supersim __worker <socket> <index>`. Dispatched
    // before normal argument parsing — the configuration arrives over
    // the socket, not argv.
    #[cfg(unix)]
    {
        let argv: Vec<String> = std::env::args().collect();
        if argv.get(1).is_some_and(|a| a == "__worker") {
            let (Some(socket), Some(index)) = (argv.get(2), argv.get(3)) else {
                eprintln!("usage: supersim __worker <socket> <index>");
                return ExitCode::FAILURE;
            };
            let Ok(index) = index.parse::<u32>() else {
                eprintln!("supersim __worker: index must be an integer, got {index:?}");
                return ExitCode::FAILURE;
            };
            return ExitCode::from(supersim::core::run_worker(socket, index) as u8);
        }
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // Three ways in: `--scenario <name|file>`, a declaration file given as
    // the plain argument (detected by its top-level "scenario" name), or a
    // full configuration file. `base` anchors the default output paths.
    let (mut cfg, base) = if let Some(arg) = &args.scenario {
        match scenario::resolve(arg) {
            Ok(c) => {
                eprintln!("supersim: scenario {} expanded", c.name);
                (c.config, PathBuf::from(format!("{}.json", c.name)))
            }
            Err(e) => {
                eprintln!("supersim: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let path = args.config_path.clone().expect("checked in parse_args");
        let loaded = match config::expand_file(&path) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("supersim: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        if scenario::is_declaration(&loaded) {
            match scenario::compile(&loaded) {
                Ok(c) => {
                    eprintln!("supersim: scenario {} expanded", c.name);
                    (c.config, path)
                }
                Err(e) => {
                    eprintln!("supersim: {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        } else {
            (loaded, path)
        }
    };
    if let Err(e) = config::apply_overrides(&mut cfg, &args.overrides) {
        eprintln!("supersim: {e}");
        return ExitCode::FAILURE;
    }
    // Flags outrank both the configuration file and the environment.
    if let Some(kind) = &args.engine {
        if cfg
            .set_path("engine.kind", config::Value::Str(kind.clone()))
            .is_err()
        {
            eprintln!("supersim: configuration root must be an object");
            return ExitCode::FAILURE;
        }
    }
    if let Some(n) = args.shards {
        if cfg
            .set_path("engine.shards", config::Value::Int(n as i64))
            .is_err()
        {
            eprintln!("supersim: configuration root must be an object");
            return ExitCode::FAILURE;
        }
    }
    if let Some(n) = args.workers {
        let kind = cfg.set_path("engine.kind", config::Value::Str("sharded".into()));
        let transport = cfg.set_path("engine.transport", config::Value::Str("process".into()));
        let count = cfg.set_path("engine.shards", config::Value::Int(n as i64));
        if kind.is_err() || transport.is_err() || count.is_err() {
            eprintln!("supersim: configuration root must be an object");
            return ExitCode::FAILURE;
        }
    }
    if let Some(rate) = args.faults {
        let enabled = cfg.set_path("fault.enabled", config::Value::Bool(true));
        let ber = cfg.set_path("fault.bit_error_rate", config::Value::Float(rate));
        if enabled.is_err() || ber.is_err() {
            eprintln!("supersim: configuration root must be an object");
            return ExitCode::FAILURE;
        }
    }
    if let Some(n) = args.watchdog_ticks {
        if cfg
            .set_path("watchdog.ticks", config::Value::Int(n as i64))
            .is_err()
        {
            eprintln!("supersim: configuration root must be an object");
            return ExitCode::FAILURE;
        }
    }
    if let Some(n) = args.sample_interval {
        if cfg
            .set_path("sample.interval", config::Value::Int(n as i64))
            .is_err()
        {
            eprintln!("supersim: configuration root must be an object");
            return ExitCode::FAILURE;
        }
    }
    if args.spans
        && cfg
            .set_path("spans.enabled", config::Value::Bool(true))
            .is_err()
    {
        eprintln!("supersim: configuration root must be an object");
        return ExitCode::FAILURE;
    }
    // Host-time observability flags: `--host-profile` arms the
    // out-of-band wall-clock profiler, `--host-trace` additionally
    // renders the Chrome trace (and implies profiling), `--progress`
    // the live heartbeat. All shorthand for `host.*` / `progress.*`
    // configuration paths.
    let host_overrides = [
        (args.host_profile || args.host_trace_path.is_some())
            .then_some(("host.profile.enabled", config::Value::Bool(true))),
        args.host_trace_path
            .is_some()
            .then_some(("host.trace.enabled", config::Value::Bool(true))),
        args.progress_interval_ms
            .map(|n| ("progress.interval_ms", config::Value::Int(n as i64))),
    ];
    for (path, value) in host_overrides.into_iter().flatten() {
        if cfg.set_path(path, value).is_err() {
            eprintln!("supersim: configuration root must be an object");
            return ExitCode::FAILURE;
        }
    }
    let checkpoint_overrides = [
        args.checkpoint_interval
            .map(|n| ("checkpoint.interval", config::Value::Int(n as i64))),
        args.checkpoint_dir.as_ref().map(|p| {
            (
                "checkpoint.dir",
                config::Value::Str(p.to_string_lossy().into_owned()),
            )
        }),
        args.resume.as_ref().map(|p| {
            (
                "checkpoint.resume",
                config::Value::Str(p.to_string_lossy().into_owned()),
            )
        }),
        args.worker_timeout_ms
            .map(|n| ("process.timeout_ms", config::Value::Int(n as i64))),
    ];
    for (path, value) in checkpoint_overrides.into_iter().flatten() {
        if cfg.set_path(path, value).is_err() {
            eprintln!("supersim: configuration root must be an object");
            return ExitCode::FAILURE;
        }
    }

    let sim = match SuperSim::from_config(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("supersim: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "supersim: {} — {} terminals, {} routers",
        sim.topology().name(),
        sim.topology().num_terminals(),
        sim.topology().num_routers()
    );
    let started = std::time::Instant::now();
    // A degraded run (deadlock, watchdog trip, model error) still flushes
    // every requested output below — marked degraded in the metrics — and
    // exits nonzero after printing the diagnostic snapshot.
    let report = sim.run_report();
    let out = &report.output;
    match &report.error {
        None => eprintln!(
            "supersim: drained at tick {} — {} events in {:.2?} ({:.2} M events/s)",
            out.engine.end_time.tick(),
            out.engine.events_executed,
            started.elapsed(),
            out.engine.events_per_second() / 1e6
        ),
        Some(e) => eprintln!(
            "supersim: DEGRADED after {} events in {:.2?}: {e}",
            out.engine.events_executed,
            started.elapsed(),
        ),
    }
    if let Some(diag) = &report.diagnostic {
        eprint!("supersim: {diag}");
    }
    for (phase, tick) in &out.phase_times {
        eprintln!("supersim: phase {phase} at tick {tick}");
    }

    print!("{}", tools::analyze(&out.log, &Filter::new()).to_table());

    if !args.no_log {
        let path = args.log_path.unwrap_or_else(|| base.with_extension("log"));
        if let Err(e) = std::fs::write(&path, out.log.to_text()) {
            eprintln!("supersim: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "supersim: wrote {} ({} records)",
            path.display(),
            out.log.len()
        );
    }
    if let Some(path) = &args.metrics_path {
        if let Err(e) = std::fs::write(path, out.metrics.to_json()) {
            eprintln!("supersim: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "supersim: wrote {} ({} metrics)",
            path.display(),
            out.metrics.len()
        );
    }
    if let Some(path) = &args.trace_path {
        let Some(trace) = &out.trace else {
            eprintln!(
                "supersim: --trace needs observability.trace.enabled=bool=true \
                 in the configuration"
            );
            return ExitCode::FAILURE;
        };
        if let Err(e) = std::fs::write(path, trace) {
            eprintln!("supersim: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "supersim: wrote {} ({} trace lines)",
            path.display(),
            trace.lines().count()
        );
    }
    if let Some(ts) = &out.timeseries {
        let path = args
            .timeseries_path
            .unwrap_or_else(|| base.with_extension("timeseries"));
        if let Err(e) = std::fs::write(&path, ts) {
            eprintln!("supersim: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "supersim: wrote {} ({} sample windows)",
            path.display(),
            ts.lines().count()
        );
    } else if args.timeseries_path.is_some() {
        eprintln!(
            "supersim: --timeseries needs --sample-interval <n> or \
             sample.interval in the configuration"
        );
        return ExitCode::FAILURE;
    }
    if let Some(path) = &args.host_trace_path {
        let Some(host_trace) = &out.host_trace else {
            // `--host-trace` implies host.trace.enabled above, so an
            // absent document means the run never assembled (degraded
            // before any host data existed).
            eprintln!("supersim: no host trace collected");
            return ExitCode::FAILURE;
        };
        if let Err(e) = std::fs::write(path, host_trace) {
            eprintln!("supersim: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("supersim: wrote {} (host trace)", path.display());
    }
    if let Some(path) = &args.span_log_path {
        let Some(spans) = &out.spans else {
            eprintln!("supersim: --span-log needs --spans or spans.enabled in the configuration");
            return ExitCode::FAILURE;
        };
        if let Err(e) = std::fs::write(path, spans) {
            eprintln!("supersim: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "supersim: wrote {} ({} span records)",
            path.display(),
            spans.lines().count()
        );
    }
    // Pinned exit codes, documented in the README: 0 clean, 1 usage /
    // configuration / output-io error (the early returns above), 2
    // degraded simulation, 3 watchdog trip, 4 worker failure, 5 resume
    // failure.
    match &report.error {
        Some(e) => ExitCode::from(exit_code(e)),
        None => ExitCode::SUCCESS,
    }
}
