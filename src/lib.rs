//! # SuperSim-rs
//!
//! An extensible flit-level simulator for large-scale interconnection
//! networks — a Rust reproduction of *SuperSim* (McDonald et al., ISPASS
//! 2018).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! - [`des`] — the discrete-event simulation engine (ticks + epsilons,
//!   multi-clock designs).
//! - [`config`] — JSON configuration with command-line overrides.
//! - [`netbase`] — flits, packets, messages, credits, channels, and the
//!   error-detection invariants of paper §IV-D.
//! - [`topology`] — torus, folded Clos, HyperX/flattened butterfly,
//!   dragonfly, and their routing algorithms.
//! - [`router`] — OQ / IQ / IOQ microarchitectures and their building
//!   blocks (arbiters, allocators, crossbar schedulers, congestion sensors).
//! - [`workload`] — the four-phase workload state machine, applications
//!   (Blast, Pulse, ...), traffic patterns, and injection processes.
//! - [`stats`] — sample logs, latency distributions, percentiles, and
//!   load-latency analysis.
//! - [`core`] — the simulator facade that assembles everything from a
//!   configuration and runs it.
//! - [`scenario`] — the scenario compiler: compact declarations expand
//!   deterministically into full configurations (`supersim --scenario`).
//! - [`tools`] — the SSParse / SSPlot / TaskRun / SSSweep tool ecosystem.
//!
//! # Quickstart
//!
//! ```
//! use supersim::core::SuperSim;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = supersim::core::presets::quickstart();
//! let output = SuperSim::from_config(&config)?.run()?;
//! assert!(output.packets_delivered() > 0);
//! # Ok(())
//! # }
//! ```

pub use supersim_config as config;
pub use supersim_core as core;
pub use supersim_des as des;
pub use supersim_netbase as netbase;
pub use supersim_router as router;
pub use supersim_scenario as scenario;
pub use supersim_stats as stats;
pub use supersim_tools as tools;
pub use supersim_topology as topology;
pub use supersim_workload as workload;
