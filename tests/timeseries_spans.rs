//! End-to-end contracts of the windowed time-series plane and per-packet
//! latency attribution (paper §V, latent-congestion case study): the
//! time-series is byte-identical across engines and shard counts, matches
//! the checked-in golden file, span components tile end-to-end latency
//! exactly, and both features cost nothing when disabled.

use supersim::config::{expand_file, Value};
use supersim::core::{presets, RunOutput, SuperSim};
use supersim::tools;

fn latent_congestion() -> Value {
    let path = format!(
        "{}/configs/latent_congestion.json",
        env!("CARGO_MANIFEST_DIR")
    );
    expand_file(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn run_with(mut cfg: Value, engine: &str, shards: u64) -> RunOutput {
    cfg.set_path("engine.kind", Value::Str(engine.into()))
        .expect("object");
    cfg.set_path("engine.shards", Value::Int(shards as i64))
        .expect("object");
    cfg.set_path("spans.enabled", Value::Bool(true))
        .expect("object");
    SuperSim::from_config(&cfg)
        .expect("build")
        .run()
        .expect("run")
}

#[test]
fn timeseries_is_byte_identical_across_engines_and_shards() {
    let seq = run_with(latent_congestion(), "sequential", 1);
    let ts = seq.timeseries.as_deref().expect("sampling armed");
    let spans = seq.spans.as_deref().expect("spans enabled");
    assert!(!ts.is_empty() && !spans.is_empty());
    for shards in [2u64, 4] {
        let sharded = run_with(latent_congestion(), "sharded", shards);
        assert_eq!(
            Some(ts),
            sharded.timeseries.as_deref(),
            "time-series diverged at {shards} shards"
        );
        assert_eq!(
            Some(spans),
            sharded.spans.as_deref(),
            "span dump diverged at {shards} shards"
        );
    }
    // The checked-in golden file pins the exact output; regenerate with
    //   supersim configs/latent_congestion.json --spans \
    //     --timeseries tests/golden/latent_congestion.timeseries --no-log
    let golden = std::fs::read_to_string(format!(
        "{}/tests/golden/latent_congestion.timeseries",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("golden file present");
    assert_eq!(ts, golden, "time-series drifted from the golden file");
}

#[test]
fn span_components_sum_exactly_to_end_to_end_latency() {
    let out = run_with(latent_congestion(), "sequential", 1);
    let spans = out.spans.as_deref().expect("spans enabled");
    let mut records = 0u64;
    for line in spans.lines() {
        let v = supersim::config::parse(line).expect("valid JSON line");
        let field = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("missing {name:?} in {line}"))
        };
        let total = field("total");
        let parts = field("queueing")
            + field("alloc")
            + field("serialization")
            + field("channel")
            + field("credit")
            + field("residual");
        assert_eq!(parts, total, "components must tile the latency: {line}");
        assert_eq!(field("residual"), 0, "fault-free run, no residual: {line}");
        records += 1;
    }
    assert!(records > 100, "only {records} span records");
    // The aggregate histograms land in the metrics plane for ssreport.
    assert!(out.metrics.get("workload", "span_total").is_some());
    assert!(out.metrics.get("workload", "span_credit").is_some());
}

#[test]
fn observability_is_disabled_by_default() {
    let out = SuperSim::from_config(&presets::quickstart())
        .expect("build")
        .run()
        .expect("run");
    assert!(out.timeseries.is_none(), "no sampling without sample.*");
    assert!(out.spans.is_none(), "no spans without spans.enabled");
    assert!(out.metrics.get("workload", "span_total").is_none());
}

#[test]
fn degraded_run_ships_the_last_complete_window() {
    // The deliberately wedged 2-router config: with the sampling plane
    // armed, the watchdog diagnostic must carry the last closed window
    // (and its credit-stall counts) instead of nothing.
    let path = format!(
        "{}/configs/deadlock_2router.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let mut cfg = expand_file(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    cfg.set_path("sample.interval", Value::Int(100))
        .expect("object");
    let report = SuperSim::from_config(&cfg).expect("build").run_report();
    assert!(
        matches!(
            report.error,
            Some(supersim::core::SimError::Watchdog { .. })
        ),
        "expected watchdog trip, got {:?}",
        report.error
    );
    let diag = report.diagnostic.expect("diagnostic snapshot");
    let window = diag.last_window.as_ref().expect("last sample window");
    assert!(window.edge >= 100 && window.edge.is_multiple_of(100));
    let text = diag.to_string();
    assert!(
        text.contains("last window"),
        "diagnostic must render the window:\n{text}"
    );
}

#[test]
fn ssplot_renders_the_latent_congestion_figure() {
    let out = run_with(latent_congestion(), "sequential", 1);
    let ts = out.timeseries.as_deref().expect("sampling armed");
    let windows = tools::parse_timeseries(ts).expect("parseable dump");
    assert!(windows.len() >= 8, "too few windows: {}", windows.len());
    // Window edges align to the configured interval on every engine.
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(w.edge, 100 * (i as u64 + 1), "gapless 100-tick edges");
    }
    // The pulse makes p99 latency and buffering climb mid-run while the
    // steady mean stays low — the latent-congestion signature.
    let p99 = |w: &tools::TsWindow| w.get("iface.latency").map_or(0, |p| p.p99);
    let calm = p99(&windows[2]);
    let peak = windows.iter().map(p99).max().unwrap_or(0);
    assert!(
        peak >= 2 * calm,
        "pulse must be visible in time-resolved p99 (calm {calm}, peak {peak})"
    );
    let fig = tools::latent_congestion_figure(&windows, 72, 12);
    for panel in [
        "offered vs accepted load",
        "packet latency over time",
        "congestion indicators",
    ] {
        assert!(fig.contains(panel), "missing panel {panel:?}:\n{fig}");
    }
}
