//! The host-time observability contract: the profiling plane is
//! pay-for-what-you-use (no `host` plane unless enabled), populated when
//! armed, and its Chrome `trace_event` export is structurally valid —
//! parseable JSON whose slices nest properly with monotonic timestamps
//! on every `(pid, tid)` track.
//!
//! Byte-identity of profiled runs against unprofiled ones is pinned here
//! for the sequential engine and in the engine/fault determinism grids
//! for every backend.

use supersim::config::Value;
use supersim::core::{presets, RunOutput, SuperSim};
use supersim::stats::{MetricSample, MetricValue};

fn run(cfg: &Value) -> RunOutput {
    SuperSim::from_config(cfg)
        .expect("build")
        .run()
        .expect("run")
}

/// Arms sampled host profiling (without the trace export).
fn with_profiling(cfg: &Value) -> Value {
    let mut cfg = cfg.clone();
    cfg.set_path("host.profile.enabled", Value::Bool(true))
        .expect("obj");
    cfg
}

/// Arms the trace export (which implies profiling). Checkpointing stays
/// off: the trace timeline is per-run-segment, so validity is asserted
/// on single-segment runs.
fn with_trace(cfg: &Value) -> Value {
    let mut cfg = cfg.clone();
    cfg.set_path("host.trace.enabled", Value::Bool(true))
        .expect("obj");
    cfg
}

fn with_shards(cfg: &Value, shards: u64) -> Value {
    let mut cfg = cfg.clone();
    cfg.set_path("engine.kind", Value::Str("sharded".into()))
        .expect("obj");
    cfg.set_path("engine.shards", Value::Int(shards as i64))
        .expect("obj");
    cfg
}

#[cfg(unix)]
fn with_process(cfg: &Value, workers: u64) -> Value {
    let mut cfg = with_shards(cfg, workers);
    cfg.set_path("engine.transport", Value::Str("process".into()))
        .expect("obj");
    cfg.set_path(
        "engine.worker_bin",
        Value::Str(env!("CARGO_BIN_EXE_supersim").into()),
    )
    .expect("obj");
    cfg
}

fn host_counter(out: &RunOutput, name: &str) -> Option<u64> {
    match out.metrics.get("host", name) {
        Some(MetricValue::Counter(v)) => Some(*v),
        _ => None,
    }
}

#[test]
fn host_plane_is_pay_for_what_you_use() {
    let out = run(&presets::quickstart());
    assert!(
        out.metrics.get("host", "wall_ns").is_none(),
        "unprofiled run must not register the host plane"
    );
    assert!(out.host_trace.is_none(), "no trace unless enabled");
}

#[test]
fn host_plane_attributes_wall_time_when_enabled() {
    let out = run(&with_profiling(&presets::quickstart()));
    assert!(host_counter(&out, "wall_ns").expect("host plane") > 0);
    assert!(
        host_counter(&out, "execute_ns").expect("execute phase") > 0,
        "a drained run spent time executing"
    );
    assert!(
        host_counter(&out, "total_batches").expect("batches") > 0,
        "batch counting is sample-independent"
    );
    // Per-shard plane present (sequential runs report shard 0).
    assert!(out.metrics.get("host_shard_0", "execute_ns").is_some());
    // Sampled class attribution saw the real component classes.
    assert!(
        host_counter(&out, "class_router_events").unwrap_or(0) > 0,
        "router class sampled"
    );
    // Profiling alone does not emit a trace.
    assert!(out.host_trace.is_none());
}

/// One parsed `ph:"X"` slice.
struct Slice {
    pid: u64,
    tid: u64,
    ts: u64,
    end: u64,
}

/// Parses the trace document with the in-tree JSON parser and checks
/// structural validity: every event has a phase, slices carry pid / tid
/// / ts / dur, per-track timestamps never decrease in emission order,
/// and slices on one track are properly nested (each slice is either
/// disjoint from or contained in the enclosing one). Returns the slices
/// for further assertions.
fn check_trace(doc: &str) -> Vec<Slice> {
    let parsed = Value::parse(doc).expect("trace is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace has events");
    let mut slices: Vec<Slice> = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph");
        let pid = ev.get("pid").and_then(Value::as_u64).expect("pid");
        assert!(ev.get("name").and_then(Value::as_str).is_some(), "name");
        match ph {
            "X" => {
                let tid = ev.get("tid").and_then(Value::as_u64).expect("tid");
                let ts = ev.get("ts").and_then(Value::as_u64).expect("ts");
                let dur = ev.get("dur").and_then(Value::as_u64).expect("dur");
                slices.push(Slice {
                    pid,
                    tid,
                    ts,
                    end: ts + dur,
                });
            }
            "C" => {
                assert!(ev.get("ts").and_then(Value::as_u64).is_some());
                assert!(ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_u64)
                    .is_some());
            }
            "M" => {
                assert!(ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .is_some());
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    // Per-(pid, tid) track: monotonic timestamps and proper nesting.
    let mut tracks: Vec<(u64, u64)> = slices.iter().map(|s| (s.pid, s.tid)).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for (pid, tid) in tracks {
        let mut stack: Vec<(u64, u64)> = Vec::new();
        let mut last_ts = 0u64;
        for s in slices.iter().filter(|s| s.pid == pid && s.tid == tid) {
            assert!(
                s.ts >= last_ts,
                "track ({pid},{tid}): ts went backwards ({} < {last_ts})",
                s.ts
            );
            last_ts = s.ts;
            while stack.last().is_some_and(|&(_, end)| s.ts >= end) {
                stack.pop();
            }
            if let Some(&(open_ts, open_end)) = stack.last() {
                assert!(
                    s.ts >= open_ts && s.end <= open_end,
                    "track ({pid},{tid}): slice [{}, {}] straddles open slice [{open_ts}, {open_end}]",
                    s.ts,
                    s.end
                );
            }
            stack.push((s.ts, s.end));
        }
    }
    slices
}

#[test]
fn host_trace_is_valid_trace_event_json() {
    let out = run(&with_trace(&presets::quickstart()));
    let doc = out.host_trace.as_deref().expect("trace collected");
    let slices = check_trace(doc);
    assert!(!slices.is_empty(), "trace has round slices");
    assert!(doc.contains("\"round\""), "round slices present");
    assert!(
        doc.contains("arena_occupancy_peak"),
        "arena counter track present"
    );
}

#[test]
fn sharded_host_trace_has_one_track_per_shard() {
    let out = run(&with_trace(&with_shards(&presets::quickstart(), 2)));
    let slices = check_trace(out.host_trace.as_deref().expect("trace collected"));
    let mut tids: Vec<u64> = slices.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(
        tids.contains(&0) && tids.contains(&1),
        "both shard tracks present, got tids {tids:?}"
    );
}

#[cfg(unix)]
#[test]
fn worker_host_trace_has_one_process_per_worker() {
    let out = run(&with_trace(&with_process(&presets::quickstart(), 2)));
    let slices = check_trace(out.host_trace.as_deref().expect("trace collected"));
    let mut pids: Vec<u64> = slices.iter().map(|s| s.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    assert!(
        pids.contains(&1) && pids.contains(&2),
        "worker process tracks present, got pids {pids:?}"
    );
    // The hub side recorded per-worker wire accounting.
    assert!(host_counter(&out, "worker_0_wire_in_bytes").unwrap_or(0) > 0);
    assert!(host_counter(&out, "worker_1_wire_in_bytes").unwrap_or(0) > 0);
    assert!(host_counter(&out, "hub_rounds").unwrap_or(0) > 0);
}

#[test]
fn profiling_is_invisible_to_simulation_bytes() {
    // The direct sequential pin; the determinism grids pin the same
    // contract for the sharded and multi-process backends.
    let strip = |out: &RunOutput| -> Vec<MetricSample> {
        out.metrics
            .samples()
            .iter()
            .filter(|s| s.component != "host" && !s.component.starts_with("host_shard_"))
            .cloned()
            .collect()
    };
    let plain = run(&presets::quickstart());
    let profiled = run(&with_trace(&presets::quickstart()));
    assert_eq!(plain.log.to_text(), profiled.log.to_text());
    assert_eq!(strip(&plain), strip(&profiled));
    assert_eq!(
        plain.engine.events_executed,
        profiled.engine.events_executed
    );
}
