//! Crash-recovery byte-diff matrix: a run interrupted at a checkpoint
//! boundary and resumed from the checkpoint file must produce output
//! byte-identical to an uninterrupted run — stdout report, metrics
//! snapshot, and timeseries files alike — across two topologies, two
//! seeds, and all three engine arrangements (sequential, in-process
//! sharded, multi-process workers).
//!
//! Sequential and sharded runs are crashed with the
//! `SUPERSIM_TEST_EXIT_AT_CKPT=<round>` hook (hard `exit(86)` right
//! after the round's checkpoint lands) and resumed with `--resume`. The
//! workers arrangement exercises the *self-healing* path instead: the
//! `SUPERSIM_TEST_KILL_WORKER=<worker>:<round>` hook SIGKILLs a worker
//! mid-run and the parent must respawn the fleet from the last
//! checkpoint within the same invocation.
#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::Command;

use supersim::config::Value;
use supersim::core::presets;

/// Exit status the `SUPERSIM_TEST_EXIT_AT_CKPT` hook uses for the
/// simulated crash, distinct from every documented code.
const CRASH_CODE: i32 = 86;

/// Checkpoint every 200 ticks; crash after round 2 (tick 400), which
/// both topologies below comfortably outlive (they drain past tick 600).
const INTERVAL: &str = "200";
const CRASH_ROUND: &str = "2";

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_supersim")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("supersim-rec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A small 2x2 torus with dimension-order routing and winner-take-all
/// flow control — deliberately a different router arrangement than the
/// hyperx quickstart preset, so the matrix covers two topology families.
fn torus_cfg() -> Value {
    Value::parse(
        r#"{
          "seed": 1,
          "network": {
            "topology": { "name": "torus", "widths": [2, 2], "concentration": 2 },
            "vcs": 4,
            "routing": { "algorithm": "dimension_order" },
            "channel": { "terminal_latency": 1, "local_latency": 5, "link_period": 1 },
            "router": {
              "architecture": "input_queued",
              "input_buffer": 16,
              "xbar_latency": 2,
              "flow_control": "winner_take_all",
              "arbiter": "age_based"
            },
            "interface": { "eject_buffer": 32, "max_packet_size": 4 }
          },
          "workload": {
            "applications": [{
              "name": "blast",
              "load": 0.3,
              "message_size": 2,
              "warmup_ticks": 200,
              "sample_messages": 50,
              "pattern": { "name": "uniform_random" }
            }]
          }
        }"#,
    )
    .expect("torus config")
}

/// The (label, config, seed) combinations every engine arrangement runs.
/// `tag` keeps each test's config directory private: the tests run on
/// parallel threads and `scratch_dir` wipes its directory on entry.
fn matrix(tag: &str) -> Vec<(String, PathBuf)> {
    let dir = scratch_dir(&format!("cfgs-{tag}"));
    let mut out = Vec::new();
    for (name, base) in [("hyperx", presets::quickstart()), ("torus", torus_cfg())] {
        for seed in [1i64, 7] {
            let mut cfg = base.clone();
            cfg.set_path("seed", Value::Int(seed)).expect("object");
            let path = dir.join(format!("{name}-s{seed}.json"));
            std::fs::write(&path, cfg.to_json_pretty()).expect("write config");
            out.push((format!("{name}/seed{seed}"), path));
        }
    }
    out
}

/// Runs the binary with the common output flags into `out`, returning
/// the exit code. Stdout is captured to `out/stdout`.
fn run(cfg: &Path, out: &Path, extra: &[&str], env: &[(&str, &str)]) -> i32 {
    std::fs::create_dir_all(out).expect("out dir");
    let metrics = out.join("metrics.json");
    let ts = out.join("ts");
    let mut cmd = Command::new(bin());
    cmd.arg(cfg)
        .args(["--no-log", "--sample-interval", "200"])
        .args(["--metrics", metrics.to_str().unwrap()])
        .args(["--timeseries", ts.to_str().unwrap()])
        .args(extra);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let output = cmd.output().expect("spawn supersim");
    std::fs::write(out.join("stdout"), &output.stdout).expect("write stdout");
    output.status.code().expect("no exit code (signal?)")
}

/// Asserts every produced file in `a` and `b` is byte-identical.
fn assert_identical(a: &Path, b: &Path, label: &str) {
    let mut names: Vec<String> = std::fs::read_dir(a)
        .expect("read dir")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(!names.is_empty(), "{label}: no outputs to compare");
    let mut other: Vec<String> = std::fs::read_dir(b)
        .expect("read dir")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    other.sort();
    assert_eq!(names, other, "{label}: output file sets differ");
    for name in names {
        let x = std::fs::read(a.join(&name)).expect("read");
        let y = std::fs::read(b.join(&name)).expect("read");
        assert_eq!(x, y, "{label}: {name} differs between runs");
    }
}

/// Crash-with-`--checkpoint-interval`, resume-with-`--resume`, compare
/// against an uninterrupted run. `engine` is the extra engine flags.
fn crash_resume_case(label: &str, cfg: &Path, engine: &[&str]) {
    let root = scratch_dir(&format!("cr-{}", label.replace('/', "-")));
    let base = root.join("base");
    let resumed = root.join("resumed");
    let ckpt_dir = root.join("ckpt");
    let ckpt_dir_s = ckpt_dir.to_str().unwrap().to_owned();

    assert_eq!(run(cfg, &base, engine, &[]), 0, "{label}: baseline failed");

    let mut crash_args = engine.to_vec();
    crash_args.extend([
        "--checkpoint-interval",
        INTERVAL,
        "--checkpoint-dir",
        &ckpt_dir_s,
    ]);
    let code = run(
        cfg,
        &root.join("crashed"),
        &crash_args,
        &[("SUPERSIM_TEST_EXIT_AT_CKPT", CRASH_ROUND)],
    );
    assert_eq!(code, CRASH_CODE, "{label}: crash hook did not fire");

    let ckpt = ckpt_dir.join("ckpt-00000002.ssckpt");
    assert!(ckpt.is_file(), "{label}: round-2 checkpoint missing");
    let mut resume_args = engine.to_vec();
    let ckpt_s = ckpt.to_str().unwrap().to_owned();
    resume_args.extend(["--resume", &ckpt_s]);
    assert_eq!(
        run(cfg, &resumed, &resume_args, &[]),
        0,
        "{label}: resume failed"
    );

    assert_identical(&base, &resumed, label);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sequential_crash_resume_is_byte_identical() {
    for (label, cfg) in matrix("seq") {
        crash_resume_case(&format!("seq {label}"), &cfg, &[]);
    }
}

#[test]
fn sharded_crash_resume_is_byte_identical() {
    for (label, cfg) in matrix("sharded") {
        crash_resume_case(&format!("sharded {label}"), &cfg, &["--shards", "2"]);
    }
}

#[test]
fn workers_crash_recovery_is_byte_identical() {
    // The multi-process arrangement heals in place: the parent respawns
    // the fleet from the last checkpoint after the injected SIGKILL, so
    // one invocation covers crash and recovery.
    for (label, cfg) in matrix("workers") {
        let label = format!("workers {label}");
        let root = scratch_dir(&format!("wk-{}", label.replace([' ', '/'], "-")));
        let base = root.join("base");
        let healed = root.join("healed");
        let ckpt_dir = root.join("ckpt");
        let ckpt_dir_s = ckpt_dir.to_str().unwrap().to_owned();

        assert_eq!(
            run(&cfg, &base, &["--workers", "2"], &[]),
            0,
            "{label}: baseline failed"
        );
        let code = run(
            &cfg,
            &healed,
            &[
                "--workers",
                "2",
                "--checkpoint-interval",
                INTERVAL,
                "--checkpoint-dir",
                &ckpt_dir_s,
            ],
            &[("SUPERSIM_TEST_KILL_WORKER", &format!("1:{CRASH_ROUND}"))],
        );
        assert_eq!(code, 0, "{label}: fleet did not heal from the checkpoint");
        assert!(
            ckpt_dir.join("ckpt-00000002.ssckpt").is_file(),
            "{label}: round-2 checkpoint missing"
        );

        assert_identical(&base, &healed, &label);
        let _ = std::fs::remove_dir_all(&root);
    }
}
