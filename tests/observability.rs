//! End-to-end contracts of the observability layer: metrics snapshots
//! and flit traces come out of a real run, stay deterministic, and feed
//! the existing tool formats unchanged.

use supersim::config::Value;
use supersim::core::{presets, RunOutput, SuperSim};
use supersim::stats::{Filter, MetricValue, MetricsSnapshot};
use supersim::tools;

/// The quickstart preset with tracing switched on.
fn traced_config() -> Value {
    let mut cfg = presets::quickstart();
    cfg.set_path("observability.trace.enabled", Value::Bool(true))
        .expect("object");
    cfg.set_path("observability.trace.capacity", Value::Int(1 << 16))
        .expect("object");
    cfg
}

fn run(cfg: &Value) -> RunOutput {
    SuperSim::from_config(cfg)
        .expect("build")
        .run()
        .expect("run")
}

#[test]
fn trace_output_is_byte_identical_across_runs() {
    let cfg = traced_config();
    let a = run(&cfg);
    let b = run(&cfg);
    let trace_a = a.trace.expect("tracing enabled");
    let trace_b = b.trace.expect("tracing enabled");
    assert!(
        !trace_a.is_empty(),
        "an enabled tracer must capture the quickstart run"
    );
    assert_eq!(
        trace_a, trace_b,
        "trace must be byte-identical for identical (config, seed)"
    );
    // Every line is a self-contained JSON record.
    for line in trace_a.lines().take(50) {
        let v = supersim::config::parse(line).expect("valid JSON line");
        assert!(v.get("tick").is_some() && v.get("kind").is_some() && v.get("packet").is_some());
    }
}

#[test]
fn tracing_is_off_by_default() {
    let out = run(&presets::quickstart());
    assert!(
        out.trace.is_none(),
        "no trace output without observability.trace.enabled"
    );
    assert!(!out.metrics.is_empty(), "metrics are always collected");
}

#[test]
fn trace_filter_narrows_to_requested_kinds() {
    let mut cfg = traced_config();
    cfg.set_path(
        "observability.trace.kinds",
        Value::Array(vec![
            Value::Str("inject".into()),
            Value::Str("eject".into()),
        ]),
    )
    .expect("object");
    let out = run(&cfg);
    let trace = out.trace.expect("tracing enabled");
    assert!(!trace.is_empty());
    for line in trace.lines() {
        let kind = supersim::config::parse(line)
            .expect("valid JSON line")
            .get("kind")
            .and_then(Value::as_str)
            .expect("kind field")
            .to_string();
        assert!(
            kind == "inject" || kind == "eject",
            "filtered kind leaked: {kind}"
        );
    }
}

#[test]
fn metrics_snapshot_round_trips_and_feeds_ssreport() {
    let out = run(&presets::quickstart());
    // Engine, workload, and router planes are all present.
    assert!(matches!(
        out.metrics.get("engine", "events_executed"),
        Some(MetricValue::Counter(n)) if *n > 0
    ));
    assert!(matches!(
        out.metrics.get("workload", "flits_received"),
        Some(MetricValue::Counter(n)) if *n > 0
    ));
    assert!(out.metrics.get("router_0", "grants").is_some());
    // Events are fully accounted by the per-shard batch histograms
    // (scheduler diagnostics live in one `engine_shard_<i>` plane per
    // shard; the sequential engine is shard 0).
    let mut batched = 0u64;
    let mut shard_planes = 0usize;
    for s in out.metrics.samples() {
        if s.component.starts_with("engine_shard_") && s.name == "batch_size" {
            shard_planes += 1;
            match &s.value {
                MetricValue::Histogram(h) => batched += h.sum(),
                other => panic!("batch_size must be a histogram, got {other:?}"),
            }
        }
    }
    assert!(shard_planes >= 1, "at least one engine_shard plane");
    assert_eq!(batched, out.engine.events_executed);
    // JSON round trip (what `supersim --metrics` writes and `ssreport`
    // reads) preserves every sample.
    let back = MetricsSnapshot::from_json(&out.metrics.to_json()).expect("parse snapshot");
    assert_eq!(back.samples(), out.metrics.samples());
    // ssreport renders it without knowing where it came from.
    let text = tools::report_text(&back);
    assert!(text.contains("[engine]") && text.contains("[workload]"));
    let hist = tools::histogram_report(&back, "workload", "packet_latency_generating")
        .expect("per-phase latency histogram");
    assert!(hist.starts_with("bin_start,count\n"));
}

#[test]
fn sample_log_format_is_unchanged_by_observability() {
    // The paper-era pipeline — sample log text into ssparse — must see no
    // format change from the new layer, traced or not.
    let plain = run(&presets::quickstart());
    let traced = run(&traced_config());
    assert_eq!(
        plain.log.to_text(),
        traced.log.to_text(),
        "tracing must not perturb the run"
    );
    let analysis =
        tools::analyze_text::<&str>(&plain.log.to_text(), &[]).expect("ssparse parses the log");
    assert!(analysis.to_table().contains("packet"));
    let _ = tools::analyze(&plain.log, &Filter::new());
}

#[test]
fn workload_latency_histograms_match_sampled_records() {
    let out = run(&presets::quickstart());
    // Histograms are indexed by the phase a packet *completed* in, so a
    // sampled packet injected late in the window may land in a later
    // phase's histogram. Across all phases they cover every completed
    // packet, samples included — and the generating phase must have seen
    // some completions of its own.
    let mut completed = 0u64;
    for phase in ["warming", "generating", "finishing", "draining"] {
        match out
            .metrics
            .get("workload", &format!("packet_latency_{phase}"))
            .expect("histogram")
        {
            MetricValue::Histogram(h) => completed += h.count(),
            other => panic!("expected histogram, got {other:?}"),
        }
    }
    assert!(completed >= out.packets_delivered());
    match out
        .metrics
        .get("workload", "packet_latency_generating")
        .expect("histogram")
    {
        MetricValue::Histogram(h) => assert!(h.count() > 0),
        other => panic!("expected histogram, got {other:?}"),
    }
}
