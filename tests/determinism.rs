//! Reproducibility: a (configuration, seed) pair yields bit-identical
//! results; changing the seed changes the stochastic details but not the
//! totals dictated by the workload.

use supersim::config::Value;
use supersim::core::{presets, SuperSim};

#[test]
fn same_seed_is_bit_identical() {
    let cfg = presets::quickstart();
    let a = SuperSim::from_config(&cfg).expect("build").run().expect("run");
    let b = SuperSim::from_config(&cfg).expect("build").run().expect("run");
    assert_eq!(a.log.to_text(), b.log.to_text());
    assert_eq!(a.engine.events_executed, b.engine.events_executed);
    assert_eq!(a.phase_times, b.phase_times);
}

#[test]
fn different_seed_changes_details_not_contracts() {
    let cfg = presets::quickstart();
    let mut cfg2 = cfg.clone();
    cfg2.set_path("seed", Value::from(4242u64)).expect("object");
    let a = SuperSim::from_config(&cfg).expect("build").run().expect("run");
    let b = SuperSim::from_config(&cfg2).expect("build").run().expect("run");
    // Stochastic details differ...
    assert_ne!(a.log.to_text(), b.log.to_text());
    // ...but the workload contract holds for both: 50 sampled messages per
    // terminal, all conserved.
    for out in [&a, &b] {
        assert_eq!(out.counters.flits_sent, out.counters.flits_received);
        assert!(out.packets_delivered() >= 50 * 16);
    }
}

#[test]
fn config_round_trip_preserves_results() {
    // Serializing the config to JSON text and parsing it back must not
    // change the simulation.
    let cfg = presets::quickstart();
    let text = cfg.to_json_pretty();
    let reparsed = supersim::config::parse(&text).expect("valid json");
    let a = SuperSim::from_config(&cfg).expect("build").run().expect("run");
    let b = SuperSim::from_config(&reparsed).expect("build").run().expect("run");
    assert_eq!(a.log.to_text(), b.log.to_text());
}

#[test]
fn overrides_behave_like_edits() {
    // Applying a Listing-1 override must equal editing the document.
    let mut by_override = presets::quickstart();
    supersim::config::apply_override(&mut by_override, "workload.applications.0.load=float=0.4")
        .expect("valid override");
    let mut by_edit = presets::quickstart();
    by_edit
        .set_path("workload.applications.0.load", Value::Float(0.4))
        .expect("object");
    let a = SuperSim::from_config(&by_override).expect("build").run().expect("run");
    let b = SuperSim::from_config(&by_edit).expect("build").run().expect("run");
    assert_eq!(a.log.to_text(), b.log.to_text());
}
