//! Reproducibility: a (configuration, seed) pair yields bit-identical
//! results; changing the seed changes the stochastic details but not the
//! totals dictated by the workload.

use supersim::config::Value;
use supersim::core::{presets, SuperSim};
use supersim::des::{Component, ComponentId, Context, Simulator, Time};

#[test]
fn same_seed_is_bit_identical() {
    let cfg = presets::quickstart();
    let a = SuperSim::from_config(&cfg)
        .expect("build")
        .run()
        .expect("run");
    let b = SuperSim::from_config(&cfg)
        .expect("build")
        .run()
        .expect("run");
    assert_eq!(a.log.to_text(), b.log.to_text());
    // The final engine stats must match exactly (everything except wall
    // time, which is non-deterministic by nature): same events executed,
    // same end time, same queue pressure, same enqueue count.
    assert_eq!(a.engine.events_executed, b.engine.events_executed);
    assert_eq!(a.engine.end_time, b.engine.end_time);
    assert_eq!(a.engine.queue_high_water, b.engine.queue_high_water);
    assert_eq!(a.engine.total_enqueued, b.engine.total_enqueued);
    assert_eq!(a.engine.outcome, b.engine.outcome);
    assert_eq!(a.phase_times, b.phase_times);
}

/// A component that records every event it executes and fans out
/// RNG-driven follow-up work: the full `(time, component, payload)` trace
/// is the strongest determinism witness — it pins the exact execution
/// order produced by the calendar queue and the in-tree PRNG, not just
/// aggregate totals.
struct Tracer {
    peers: Vec<ComponentId>,
    trace: Vec<(Time, u64)>,
}

impl Component<u64> for Tracer {
    fn name(&self) -> &str {
        "tracer"
    }
    fn handle(&mut self, ctx: &mut Context<'_, u64>, event: u64) {
        self.trace.push((ctx.now(), event));
        if event == 0 {
            return;
        }
        // 1-3 follow-ups at random offsets to random peers, including
        // same-tick (epsilon) and far-future (overflow) targets.
        let fanout = ctx.rng().gen_range(1..4u64);
        for _ in 0..fanout {
            let peer = self.peers[ctx.rng().gen_range(0..self.peers.len())];
            let time = match ctx.rng().gen_range(0..10u32) {
                0 => ctx.now().next_epsilon(),
                1 => ctx.now().plus_ticks(10_000),
                _ => ctx.now().plus_ticks(ctx.rng().gen_range(1..64u64)),
            };
            ctx.schedule(peer, time, event - 1);
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn run_trace(seed: u64) -> (Vec<Vec<(Time, u64)>>, supersim::des::RunStats) {
    let mut sim = Simulator::new(seed);
    let ids: Vec<ComponentId> = (0..8)
        .map(|_| {
            sim.add_component(Box::new(Tracer {
                peers: Vec::new(),
                trace: Vec::new(),
            }))
        })
        .collect();
    for &id in &ids {
        sim.component_as_mut::<Tracer>(id).expect("tracer").peers = ids.clone();
    }
    for (i, &id) in ids.iter().enumerate() {
        sim.schedule(id, Time::at(i as u64), 6);
    }
    let stats = sim.run();
    let traces = ids
        .iter()
        .map(|&id| {
            sim.component_as::<Tracer>(id)
                .expect("tracer")
                .trace
                .clone()
        })
        .collect();
    (traces, stats)
}

#[test]
fn identical_seed_yields_identical_event_trace_and_stats() {
    let (trace_a, stats_a) = run_trace(0xDE7E_2A11);
    let (trace_b, stats_b) = run_trace(0xDE7E_2A11);
    assert_eq!(
        trace_a, trace_b,
        "event traces diverged for identical (config, seed)"
    );
    assert_eq!(stats_a.events_executed, stats_b.events_executed);
    assert_eq!(stats_a.end_time, stats_b.end_time);
    assert_eq!(stats_a.queue_high_water, stats_b.queue_high_water);
    assert_eq!(stats_a.total_enqueued, stats_b.total_enqueued);
    assert_eq!(stats_a.outcome, stats_b.outcome);
    // And a different seed takes a genuinely different path.
    let (trace_c, _) = run_trace(0xDE7E_2A12);
    assert_ne!(trace_a, trace_c, "trace ignored the seed");
}

#[test]
fn different_seed_changes_details_not_contracts() {
    let cfg = presets::quickstart();
    let mut cfg2 = cfg.clone();
    cfg2.set_path("seed", Value::from(4242u64)).expect("object");
    let a = SuperSim::from_config(&cfg)
        .expect("build")
        .run()
        .expect("run");
    let b = SuperSim::from_config(&cfg2)
        .expect("build")
        .run()
        .expect("run");
    // Stochastic details differ...
    assert_ne!(a.log.to_text(), b.log.to_text());
    // ...but the workload contract holds for both: 50 sampled messages per
    // terminal, all conserved.
    for out in [&a, &b] {
        assert_eq!(out.counters.flits_sent, out.counters.flits_received);
        assert!(out.packets_delivered() >= 50 * 16);
    }
}

#[test]
fn config_round_trip_preserves_results() {
    // Serializing the config to JSON text and parsing it back must not
    // change the simulation.
    let cfg = presets::quickstart();
    let text = cfg.to_json_pretty();
    let reparsed = supersim::config::parse(&text).expect("valid json");
    let a = SuperSim::from_config(&cfg)
        .expect("build")
        .run()
        .expect("run");
    let b = SuperSim::from_config(&reparsed)
        .expect("build")
        .run()
        .expect("run");
    assert_eq!(a.log.to_text(), b.log.to_text());
}

#[test]
fn overrides_behave_like_edits() {
    // Applying a Listing-1 override must equal editing the document.
    let mut by_override = presets::quickstart();
    supersim::config::apply_override(&mut by_override, "workload.applications.0.load=float=0.4")
        .expect("valid override");
    let mut by_edit = presets::quickstart();
    by_edit
        .set_path("workload.applications.0.load", Value::Float(0.4))
        .expect("object");
    let a = SuperSim::from_config(&by_override)
        .expect("build")
        .run()
        .expect("run");
    let b = SuperSim::from_config(&by_edit)
        .expect("build")
        .run()
        .expect("run");
    assert_eq!(a.log.to_text(), b.log.to_text());
}
