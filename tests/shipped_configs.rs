//! The JSON configurations shipped under `configs/` must stay buildable
//! and runnable (they are the quickstart path for CLI users). The sweep
//! test at the bottom enforces 100% coverage of the directory: every
//! shipped file — plain configuration or scenario declaration — either
//! runs end-to-end or is the deliberate deadlock case.

use supersim::config::{apply_override, expand_file, Value};
use supersim::core::SuperSim;
use supersim::scenario;

fn load(name: &str) -> Value {
    let path = format!("{}/configs/{name}", env!("CARGO_MANIFEST_DIR"));
    expand_file(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn every_shipped_config_runs() {
    for name in [
        "quickstart.json",
        "torus_3d_dor.json",
        "clos_adaptive.json",
        "dragonfly_ugal.json",
        "included_demo.json",
        // deadlock_2router.json is deliberately absent: it exists to trip
        // the watchdog (see fault_determinism.rs and the tier1-faults CI
        // job) and never completes cleanly.
        "fault_smoke.json",
        "latent_congestion.json",
    ] {
        let mut cfg = load(name);
        // Keep CI fast: shrink the sample counts, keep everything else.
        let blast = &cfg
            .req_str("workload.applications.0.name")
            .map(str::to_string);
        if blast.as_deref() == Ok("blast")
            && cfg
                .path("workload.applications.0.sample_messages")
                .is_some()
        {
            apply_override(&mut cfg, "workload.applications.0.sample_messages=uint=20")
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        apply_override(&mut cfg, "workload.applications.0.warmup_ticks=uint=100")
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let out = SuperSim::from_config(&cfg)
            .unwrap_or_else(|e| panic!("{name}: build: {e}"))
            .run()
            .unwrap_or_else(|e| panic!("{name}: run: {e}"));
        assert!(out.packets_delivered() > 0, "{name}: no samples");
        assert_eq!(
            out.counters.flits_sent, out.counters.flits_received,
            "{name}: flits lost"
        );
    }
}

#[test]
fn listing_1_overrides_apply_to_shipped_configs() {
    // The paper's Listing 1, verbatim mechanics.
    let mut cfg = load("quickstart.json");
    apply_override(&mut cfg, "network.topology.concentration=uint=2").expect("valid");
    apply_override(&mut cfg, "workload.applications.0.sample_messages=uint=10").expect("valid");
    let sim = SuperSim::from_config(&cfg).expect("build");
    assert_eq!(sim.topology().num_terminals(), 8); // 4 routers x 2
    let out = sim.run().expect("run");
    assert!(out.packets_delivered() >= 8 * 10);
}

#[test]
fn shipped_deadlock_config_trips_the_watchdog() {
    // The one shipped config that must NOT complete: total credit loss
    // wedges the 2-router network and the watchdog converts the hang into
    // a typed error plus diagnostic within its tick window.
    let cfg = load("deadlock_2router.json");
    let report = SuperSim::from_config(&cfg).expect("build").run_report();
    assert!(
        matches!(
            report.error,
            Some(supersim::core::SimError::Watchdog { .. })
        ),
        "expected watchdog trip, got {:?}",
        report.error
    );
    assert!(report.diagnostic.is_some(), "no diagnostic snapshot");
}

#[test]
fn config_sweep_covers_the_whole_directory() {
    // Enumerate configs/ and configs/scenarios/ so a newly added file can
    // never be silently untested: each must run end-to-end through the
    // same load path the CLI uses (declarations are auto-compiled), or be
    // the deliberate deadlock case checked above.
    let root = format!("{}/configs", env!("CARGO_MANIFEST_DIR"));
    let mut paths = Vec::new();
    for dir in [root.clone(), format!("{root}/scenarios")] {
        for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("{dir}: {e}")) {
            let path = entry.expect("dir entry").path();
            if path.is_file() && path.extension().and_then(|e| e.to_str()) == Some("json") {
                paths.push(path);
            }
        }
    }
    paths.sort();
    assert!(
        paths.len() >= 13,
        "configs/ shrank to {} files",
        paths.len()
    );

    let mut swept = 0;
    for path in &paths {
        let name = path.file_name().unwrap().to_str().unwrap();
        if name == "deadlock_2router.json" {
            continue; // expected-fail case, pinned by its own test above
        }
        let mut cfg = expand_file(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if cfg.path("workload").is_none() && !scenario::is_declaration(&cfg) {
            // An $include fragment (e.g. base_network.json): it must parse
            // (just did) and actually be included by some sibling config.
            let stem = name;
            let included = paths.iter().any(|p| {
                p.file_name().unwrap() != stem
                    && std::fs::read_to_string(p)
                        .map(|t| t.contains(stem))
                        .unwrap_or(false)
            });
            assert!(included, "{name}: orphan fragment — nothing includes it");
            swept += 1;
            continue;
        }
        if scenario::is_declaration(&cfg) {
            cfg = scenario::compile(&cfg)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .config;
        }
        // Keep the sweep fast: shrink the first app's sample count where
        // the knob exists, exactly as the CLI override would.
        if cfg.req_str("workload.applications.0.name") == Ok("blast")
            && cfg
                .path("workload.applications.0.sample_messages")
                .is_some()
        {
            apply_override(&mut cfg, "workload.applications.0.sample_messages=uint=20")
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        let out = SuperSim::from_config(&cfg)
            .unwrap_or_else(|e| panic!("{name}: build: {e}"))
            .run()
            .unwrap_or_else(|e| panic!("{name}: run: {e}"));
        assert!(out.packets_delivered() > 0, "{name}: no samples");
        swept += 1;
    }
    assert_eq!(
        swept,
        paths.len() - 1,
        "every file but the deadlock case runs"
    );
}
