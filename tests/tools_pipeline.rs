//! The full tool workflow of paper §V: simulate → write the log → parse
//! with filters (SSParse) → analyze → render series (SSPlot) — plus an
//! SSSweep-driven grid of real simulations.

use supersim::config::Value;
use supersim::core::{presets, SuperSim};
use supersim::stats::{Filter, RecordKind, SampleLog};
use supersim::tools::{self, Sweep};

#[test]
fn log_text_round_trips_through_ssparse() {
    let out = SuperSim::from_config(&presets::quickstart())
        .expect("build")
        .run()
        .expect("run");
    // Write and re-read the log as the on-disk text format.
    let text = out.log.to_text();
    let reparsed = SampleLog::parse(&text).expect("well-formed log");
    assert_eq!(reparsed, out.log);

    let analysis = tools::analyze_text::<&str>(&text, &[]).expect("analyzable");
    assert_eq!(
        analysis
            .of(RecordKind::Packet)
            .latency
            .expect("sampled")
            .count,
        out.packets_delivered()
    );

    // Paper-style filters slice the data consistently.
    let (start, end) = out.window().expect("window");
    let mid = (start + end) / 2;
    let early = tools::analyze_text(&text, &[format!("+send={start}-{mid}")]).expect("filterable");
    let late =
        tools::analyze_text(&text, &[format!("+send={}-{end}", mid + 1)]).expect("filterable");
    let total = analysis.of(RecordKind::Packet).latency.unwrap().count;
    let e = early.of(RecordKind::Packet).latency.map_or(0, |l| l.count);
    let l = late.of(RecordKind::Packet).latency.map_or(0, |l| l.count);
    assert_eq!(e + l, total, "time filters must partition the records");
}

#[test]
fn percentile_distribution_like_figure_7() {
    let out = SuperSim::from_config(&presets::quickstart())
        .expect("build")
        .run()
        .expect("run");
    let mut analysis = tools::analyze(&out.log, &Filter::new());
    let kind = analysis
        .kinds
        .iter_mut()
        .find(|k| k.kind == RecordKind::Packet)
        .expect("packets exist");
    let curve = kind.distribution.percentile_curve();
    assert!(!curve.is_empty());
    // Monotone in both axes.
    assert!(curve
        .windows(2)
        .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
    let csv = tools::percentile_csv(&curve);
    assert!(csv.lines().count() == curve.len() + 1);
    // The tail percentile read off the curve matches the summary.
    let p999 = kind.distribution.percentile(99.9).expect("non-empty");
    assert!(curve.iter().any(|&(p, l)| p >= 0.999 && l >= p999));
}

#[test]
fn sweep_grid_runs_real_simulations() {
    let mut sweep = Sweep::new(presets::quickstart());
    sweep.add_variable(
        "Load",
        "L",
        vec![Value::Float(0.1), Value::Float(0.3)],
        |v, cfg| {
            cfg.set_path("workload.applications.0.load", v.clone())
                .map_err(|e| e.to_string())
        },
    );
    sweep.add_variable(
        "Arbiter",
        "ARB",
        vec!["round_robin".into(), "age_based".into()],
        |v, cfg| {
            cfg.set_path("network.router.arbiter", v.clone())
                .map_err(|e| e.to_string())
        },
    );
    assert_eq!(sweep.len(), 4);
    let results = sweep.run(2, |perm| {
        let out = SuperSim::from_config(&perm.config)
            .map_err(|e| e.to_string())?
            .run()
            .map_err(|e| e.to_string())?;
        out.mean_packet_latency()
            .ok_or_else(|| "no samples".to_string())
    });
    assert_eq!(results.len(), 4);
    for r in &results {
        let mean = *r.outcome.as_ref().expect("all points run");
        assert!(mean > 0.0, "{}: empty mean", r.permutation.id);
    }
    // Higher load never *reduces* latency on this tiny network.
    let low = results[0].outcome.as_ref().unwrap();
    let high = results[2].outcome.as_ref().unwrap();
    assert!(high >= low, "latency decreased with load: {low} -> {high}");

    let md = Sweep::results_markdown(&results, |mean| {
        vec![("mean_latency".into(), format!("{mean:.2}"))]
    });
    assert!(md.contains("| L0p1_ARBroundrobin |"));
}

#[test]
fn load_latency_csv_from_real_sweep() {
    let spec =
        supersim::core::LoadSweepSpec::simple(presets::quickstart(), "quickstart", vec![0.1, 0.25]);
    let sweep = supersim::core::run_load_sweep(&spec).expect("sweep");
    let csv = tools::load_latency_csv(&[sweep], 0.05);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].starts_with("offered,quickstart_delivered"));
    // Below saturation the delivered column tracks the offered column.
    let fields: Vec<&str> = lines[1].split(',').collect();
    let offered: f64 = fields[0].parse().expect("number");
    let delivered: f64 = fields[1].parse().expect("number");
    assert!((offered - delivered).abs() / offered < 0.1);
}
