//! The zero-registry-dependency invariant, as a test.
//!
//! The workspace builds fully offline: every crate in `Cargo.lock` must
//! be one of our own `supersim*` workspace members. A registry dependency
//! sneaking in (via a hasty `cargo add`, or a transitive dependency of
//! one) breaks offline builds and the reproducibility story, so it fails
//! here — and in the CI job that runs the same check with `grep` before
//! any compilation happens.

#[test]
fn cargo_lock_contains_only_workspace_packages() {
    let lock = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.lock"))
        .expect("workspace Cargo.lock");
    let mut packages = 0;
    for line in lock.lines() {
        if let Some(name) = line.strip_prefix("name = \"") {
            let name = name.trim_end_matches('"');
            assert!(
                name.starts_with("supersim"),
                "non-workspace dependency in Cargo.lock: {name} \
                 (the workspace must build fully offline)"
            );
            packages += 1;
        }
    }
    assert!(packages > 0, "Cargo.lock lists no packages — parse drift?");
}

#[test]
fn lockfile_has_no_registry_sources() {
    let lock = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.lock"))
        .expect("workspace Cargo.lock");
    assert!(
        !lock.contains("registry+"),
        "Cargo.lock references a registry source; the workspace must build fully offline"
    );
    assert!(
        !lock.contains("source = "),
        "Cargo.lock pins an external source"
    );
}
