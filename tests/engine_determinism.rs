//! The tentpole contract of the engine split: for one `(configuration,
//! seed)` the sharded engine produces results byte-identical to the
//! sequential engine — same sample log, same flit trace, same metrics
//! snapshot (minus the per-shard scheduler-diagnostic planes, which
//! legitimately depend on the partition), same engine totals.
//!
//! Property-style: the whole contract is checked across a grid of seeds ×
//! topologies × shard counts, so a synchronization bug that only shows up
//! under a particular partition or event interleaving still trips it.

use supersim::config::Value;
use supersim::core::{presets, RunOutput, SuperSim};
use supersim::stats::MetricSample;

/// Pins the engine through configuration (which outranks the
/// `SUPERSIM_ENGINE` / `SUPERSIM_SHARDS` environment, so this test means
/// the same thing under the sharded CI job).
fn with_engine(cfg: &Value, kind: &str, shards: u64) -> Value {
    let mut cfg = cfg.clone();
    cfg.set_path("engine.kind", Value::Str(kind.into()))
        .expect("object");
    cfg.set_path("engine.shards", Value::Int(shards as i64))
        .expect("object");
    cfg
}

/// Pins the multi-process backend: `workers` shards, one OS process
/// each, spawned from the `supersim` binary cargo built for this test
/// run (the default of re-executing the current binary would hit the
/// test harness, which has no `__worker` role).
#[cfg(unix)]
fn with_process(cfg: &Value, workers: u64) -> Value {
    let mut cfg = with_engine(cfg, "sharded", workers);
    cfg.set_path("engine.transport", Value::Str("process".into()))
        .expect("object");
    cfg.set_path(
        "engine.worker_bin",
        Value::Str(env!("CARGO_BIN_EXE_supersim").into()),
    )
    .expect("object");
    cfg
}

fn run(cfg: &Value) -> RunOutput {
    SuperSim::from_config(cfg)
        .expect("build")
        .run()
        .expect("run")
}

/// The snapshot with the partition-dependent planes stripped: everything
/// that remains must be bit-identical across engines. The host-time
/// planes (`host`, `host_shard_*`) hold wall-clock measurements and are
/// legitimately different on every run.
fn stripped_samples(out: &RunOutput) -> Vec<MetricSample> {
    out.metrics
        .samples()
        .iter()
        .filter(|s| {
            !s.component.starts_with("engine_shard_")
                && s.component != "host"
                && !s.component.starts_with("host_shard_")
        })
        .cloned()
        .collect()
}

/// Turns on the full host-time observability surface: sampled wall-clock
/// profiling, the Chrome trace_event export, and the progress heartbeat
/// (interval far above the run time, so only the final line fires). The
/// determinism contract requires all of it to be invisible to simulation
/// bytes.
fn with_host_profiling(cfg: &Value) -> Value {
    let mut cfg = cfg.clone();
    cfg.set_path("host.profile.enabled", Value::Bool(true))
        .expect("object");
    cfg.set_path("host.trace.enabled", Value::Bool(true))
        .expect("object");
    cfg.set_path("progress.interval_ms", Value::Int(60_000))
        .expect("object");
    cfg
}

/// Small topologies spanning the factory families: a 1-D HyperX (the
/// quickstart), a folded Clos, and a flattened butterfly under IOQ
/// routers.
fn topologies() -> Vec<(&'static str, Value)> {
    let mut cfgs = vec![("hyperx", presets::quickstart())];
    let mut clos = presets::latent_congestion(2, 4, 1, Some(64), 3, 1, 0.3, 20);
    clos.set_path("observability.trace.capacity", Value::Int(1 << 15))
        .expect("object");
    cfgs.push(("folded_clos", clos));
    cfgs.push((
        "flatbfly",
        presets::credit_accounting(4, 4, "both", "vc", "uniform_random", 3, 1, 0.3, 20),
    ));
    cfgs
}

#[test]
fn sharded_run_is_byte_identical_to_sequential() {
    for (name, base) in topologies() {
        for seed in [1u64, 0x5eed, 0xDE7E_2A11] {
            let mut cfg = base.clone();
            cfg.set_path("seed", Value::Int(seed as i64))
                .expect("object");
            cfg.set_path("observability.trace.enabled", Value::Bool(true))
                .expect("object");
            let seq = run(&with_engine(&cfg, "sequential", 1));
            let seq_samples = stripped_samples(&seq);
            // The same grid row under every backend: in-process shard
            // counts, then the multi-process transport (unix only).
            let mut rows: Vec<(String, Value)> = [2u64, 3, 4]
                .iter()
                .map(|&shards| {
                    (
                        format!("shards={shards}"),
                        with_engine(&cfg, "sharded", shards),
                    )
                })
                .collect();
            #[cfg(unix)]
            rows.push(("workers=2".into(), with_process(&cfg, 2)));
            // The same contract with the host-time observability plane
            // armed: profiling, trace export, and the progress heartbeat
            // must not perturb a single simulation byte, on any backend.
            rows.push((
                "sequential+hostprof".into(),
                with_host_profiling(&with_engine(&cfg, "sequential", 1)),
            ));
            rows.push((
                "shards=2+hostprof".into(),
                with_host_profiling(&with_engine(&cfg, "sharded", 2)),
            ));
            #[cfg(unix)]
            rows.push((
                "workers=2+hostprof".into(),
                with_host_profiling(&with_process(&cfg, 2)),
            ));
            for (row, sh_cfg) in rows {
                let sh = run(&sh_cfg);
                let label = format!("{name} seed={seed:#x} {row}");
                assert_eq!(
                    seq.log.to_text(),
                    sh.log.to_text(),
                    "sample log diverged: {label}"
                );
                assert_eq!(seq.trace, sh.trace, "flit trace diverged: {label}");
                assert_eq!(
                    seq_samples,
                    stripped_samples(&sh),
                    "metrics snapshot diverged: {label}"
                );
                assert_eq!(
                    seq.engine.events_executed, sh.engine.events_executed,
                    "event count diverged: {label}"
                );
                assert_eq!(
                    seq.engine.total_enqueued, sh.engine.total_enqueued,
                    "enqueue count diverged: {label}"
                );
                assert_eq!(
                    seq.engine.end_time, sh.engine.end_time,
                    "end time diverged: {label}"
                );
                assert_eq!(seq.phase_times, sh.phase_times, "phases diverged: {label}");
            }
        }
    }
}

#[test]
fn shard_planes_report_every_shard() {
    let cfg = with_engine(&presets::quickstart(), "sharded", 2);
    let out = run(&cfg);
    // Both worker shards surface a diagnostics plane, and together they
    // account for every executed event.
    let mut per_shard = 0u64;
    for s in 0..2 {
        match out
            .metrics
            .get(&format!("engine_shard_{s}"), "events_executed")
            .expect("shard plane")
        {
            supersim::stats::MetricValue::Counter(n) => per_shard += n,
            other => panic!("expected counter, got {other:?}"),
        }
    }
    assert_eq!(per_shard, out.engine.events_executed);
}

#[test]
fn requesting_more_shards_than_routers_still_runs() {
    // The builder clamps the worker count to the router count; a tiny
    // network under a huge shard request must still drain identically.
    let seq = run(&with_engine(&presets::quickstart(), "sequential", 1));
    let sh = run(&with_engine(&presets::quickstart(), "sharded", 64));
    assert_eq!(seq.log.to_text(), sh.log.to_text());
}

#[test]
fn unknown_engine_kind_is_rejected() {
    let mut cfg = presets::quickstart();
    cfg.set_path("engine.kind", Value::Str("warp".into()))
        .expect("object");
    assert!(SuperSim::from_config(&cfg).is_err());
}
