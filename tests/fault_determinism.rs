//! The fault-plane contract: fault injection is part of the simulation,
//! not an observer of it — so for one `(configuration, seed)` the fault
//! schedule (which flits corrupt, which credits vanish, which links blip)
//! is bit-identical across the sequential and sharded engines at any
//! shard count. On top of that schedule, link-level retransmission must
//! deliver every packet exactly once, and when recovery is impossible the
//! no-progress watchdog must convert the hang into a typed error plus a
//! diagnostic snapshot.

use supersim::config::Value;
use supersim::core::{presets, RunOutput, SimError, SuperSim};
use supersim::stats::{MetricSample, MetricValue};

fn with_engine(cfg: &Value, kind: &str, shards: u64) -> Value {
    let mut cfg = cfg.clone();
    cfg.set_path("engine.kind", Value::Str(kind.into()))
        .expect("object");
    cfg.set_path("engine.shards", Value::Int(shards as i64))
        .expect("object");
    cfg
}

fn with_faults(cfg: &Value, seed: u64, bit_error_rate: f64) -> Value {
    let mut cfg = cfg.clone();
    cfg.set_path("seed", Value::Int(seed as i64)).expect("obj");
    cfg.set_path("fault.enabled", Value::Bool(true))
        .expect("obj");
    cfg.set_path("fault.bit_error_rate", Value::Float(bit_error_rate))
        .expect("obj");
    cfg
}

/// Pins the multi-process backend, spawning workers from the cargo-built
/// `supersim` binary.
#[cfg(unix)]
fn with_process(cfg: &Value, workers: u64) -> Value {
    let mut cfg = with_engine(cfg, "sharded", workers);
    cfg.set_path("engine.transport", Value::Str("process".into()))
        .expect("object");
    cfg.set_path(
        "engine.worker_bin",
        Value::Str(env!("CARGO_BIN_EXE_supersim").into()),
    )
    .expect("object");
    cfg
}

fn run(cfg: &Value) -> RunOutput {
    SuperSim::from_config(cfg)
        .expect("build")
        .run()
        .expect("run")
}

/// The snapshot minus the partition-dependent scheduler planes and the
/// wall-clock host-time planes: the part the determinism contract pins,
/// now including the `fault` plane.
fn stripped_samples(out: &RunOutput) -> Vec<MetricSample> {
    out.metrics
        .samples()
        .iter()
        .filter(|s| {
            !s.component.starts_with("engine_shard_")
                && s.component != "host"
                && !s.component.starts_with("host_shard_")
        })
        .cloned()
        .collect()
}

/// Arms the full host-time observability surface (profiling, trace
/// export, progress heartbeat) on top of a fault-injecting config.
fn with_host_profiling(cfg: &Value) -> Value {
    let mut cfg = cfg.clone();
    cfg.set_path("host.profile.enabled", Value::Bool(true))
        .expect("obj");
    cfg.set_path("host.trace.enabled", Value::Bool(true))
        .expect("obj");
    cfg.set_path("progress.interval_ms", Value::Int(60_000))
        .expect("obj");
    cfg
}

/// Only the fault-event lines of the flit trace.
fn fault_trace(out: &RunOutput) -> String {
    out.trace
        .as_ref()
        .expect("trace enabled")
        .lines()
        .filter(|l| l.contains("\"fault_"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn fault_counter(out: &RunOutput, name: &str) -> u64 {
    match out.metrics.get("fault", name) {
        Some(MetricValue::Counter(v)) => *v,
        other => panic!("fault/{name}: expected counter, got {other:?}"),
    }
}

/// Two topology families from different factory branches; both small
/// enough that the grid below stays fast.
fn topologies() -> Vec<(&'static str, Value)> {
    vec![
        ("hyperx", presets::quickstart()),
        (
            "flatbfly",
            presets::credit_accounting(4, 4, "both", "vc", "uniform_random", 3, 1, 0.3, 20),
        ),
    ]
}

#[test]
fn fault_schedule_is_identical_across_engines() {
    for (name, base) in topologies() {
        for seed in [1u64, 0x5eed, 0xFA17] {
            let mut cfg = with_faults(&base, seed, 4e-3);
            cfg.set_path("observability.trace.enabled", Value::Bool(true))
                .expect("obj");
            cfg.set_path("observability.trace.capacity", Value::Int(1 << 16))
                .expect("obj");
            let seq = run(&with_engine(&cfg, "sequential", 1));
            // A fault-determinism test proves nothing on a quiet run.
            assert!(
                fault_counter(&seq, "injected") > 0,
                "{name} seed={seed:#x}: no faults injected — raise the rate"
            );
            let seq_faults = fault_trace(&seq);
            let seq_samples = stripped_samples(&seq);
            let mut rows: Vec<(String, Value)> = [2u64, 4]
                .iter()
                .map(|&shards| {
                    (
                        format!("shards={shards}"),
                        with_engine(&cfg, "sharded", shards),
                    )
                })
                .collect();
            #[cfg(unix)]
            rows.push(("workers=2".into(), with_process(&cfg, 2)));
            // Fault schedules must also survive the host-time
            // observability plane being armed: profiling samples and
            // heartbeat reads never touch the fault RNG stream.
            rows.push((
                "shards=2+hostprof".into(),
                with_host_profiling(&with_engine(&cfg, "sharded", 2)),
            ));
            #[cfg(unix)]
            rows.push((
                "workers=2+hostprof".into(),
                with_host_profiling(&with_process(&cfg, 2)),
            ));
            for (row, sh_cfg) in rows {
                let sh = run(&sh_cfg);
                let label = format!("{name} seed={seed:#x} {row}");
                assert_eq!(
                    seq_faults,
                    fault_trace(&sh),
                    "fault-event trace diverged: {label}"
                );
                assert_eq!(seq.trace, sh.trace, "full trace diverged: {label}");
                assert_eq!(
                    seq_samples,
                    stripped_samples(&sh),
                    "metrics snapshot diverged: {label}"
                );
                assert_eq!(
                    seq.log.to_text(),
                    sh.log.to_text(),
                    "sample log diverged: {label}"
                );
            }
        }
    }
}

#[test]
fn retransmission_delivers_every_packet_exactly_once() {
    // Property-style sweep: across seeds and bit-error rates spanning the
    // acceptance floor (1e-3) and beyond, every flit sent is received
    // exactly once — duplicates would make received exceed sent, loss
    // would wedge the drain — and nothing escalates.
    let base = presets::quickstart();
    let mut detected_total = 0u64;
    for seed in [2u64, 33, 0xBEEF] {
        for ber in [1e-4, 1e-3, 5e-3, 2e-2] {
            let out = run(&with_faults(&base, seed, ber));
            let label = format!("seed={seed} ber={ber}");
            assert_eq!(
                out.counters.flits_sent, out.counters.flits_received,
                "flits duplicated or lost: {label}"
            );
            assert_eq!(
                out.counters.messages_sent, out.counters.messages_received,
                "messages duplicated or lost: {label}"
            );
            assert!(out.packets_delivered() > 0, "no samples: {label}");
            assert_eq!(
                fault_counter(&out, "escalated"),
                0,
                "retries exhausted: {label}"
            );
            assert_eq!(
                fault_counter(&out, "held_flits"),
                0,
                "flits still parked in retransmission holds: {label}"
            );
            detected_total += fault_counter(&out, "detected");
        }
    }
    assert!(detected_total > 0, "sweep never exercised a retransmission");
}

#[test]
fn total_credit_loss_trips_the_watchdog() {
    // Destroying every returning credit wedges the network: buffers fill,
    // injection stalls, and the interfaces burn wake events forever
    // without delivering a flit. The watchdog must cut that off — on both
    // engines, at the same simulated time.
    let mut cfg = presets::quickstart();
    cfg.set_path("fault.enabled", Value::Bool(true))
        .expect("obj");
    cfg.set_path("fault.credit_loss_rate", Value::Float(1.0))
        .expect("obj");
    cfg.set_path("watchdog.ticks", Value::Int(1000))
        .expect("obj");
    let mut trips = Vec::new();
    let mut rows = vec![
        ("sequential", with_engine(&cfg, "sequential", 1)),
        ("sharded", with_engine(&cfg, "sharded", 2)),
    ];
    #[cfg(unix)]
    rows.push(("process", with_process(&cfg, 2)));
    for (kind, row_cfg) in rows {
        let report = SuperSim::from_config(&row_cfg).expect("build").run_report();
        let err = report.error.as_ref().expect("run must degrade");
        let (tick, last_progress) = match err {
            SimError::Watchdog {
                tick,
                last_progress,
            } => (*tick, *last_progress),
            other => panic!("{kind}: expected watchdog trip, got {other}"),
        };
        assert!(
            tick > last_progress,
            "{kind}: trip tick {tick} not past last progress {last_progress}"
        );
        let diag = report.diagnostic.as_ref().expect("diagnostic snapshot");
        assert_eq!(diag.last_progress, Some(last_progress));
        assert!(
            diag.routers.iter().any(|r| {
                r.buffered_flits > 0 || r.credits.iter().any(|&(avail, cap)| avail < cap)
            }),
            "{kind}: snapshot shows no stuck state"
        );
        // Graceful degradation: the partial output is still assembled and
        // marked degraded.
        assert!(matches!(
            report.output.metrics.get("run", "degraded"),
            Some(MetricValue::Counter(1))
        ));
        trips.push((tick, last_progress));
    }
    assert!(
        trips.windows(2).all(|w| w[0] == w[1]),
        "watchdog trip diverged across engines: {trips:?}"
    );
}

#[test]
fn clean_runs_are_unmarked_and_fault_free_runs_have_no_fault_plane() {
    let out = run(&presets::quickstart());
    assert!(matches!(
        out.metrics.get("run", "degraded"),
        Some(MetricValue::Counter(0))
    ));
    // The fault plane is pay-for-what-you-use: disabled runs do not even
    // register the metrics plane.
    assert!(out.metrics.get("fault", "injected").is_none());
}

#[test]
fn clean_fault_path_never_clones_flits() {
    // The retransmission plane keeps flits under observation on every
    // link, but a clean transmission must move them by handle, never by
    // deep copy: with the fault plane enabled and a zero injection rate
    // the hot path is clone-free, pinned by the profiling plane's
    // clone counter. (Corruption legitimately clones — the retry hold
    // keeps the original while a corrupted copy goes out — so a lossy
    // run must show a nonzero count, proving the counter is live.)
    let clean = run(&with_faults(&presets::quickstart(), 7, 0.0));
    assert!(
        clean.counters.flits_sent > 0,
        "clean run moved no flits — nothing was proven"
    );
    assert_eq!(
        fault_counter(&clean, "flit_clones"),
        0,
        "zero-injection run cloned flit payloads on the hot path"
    );
    let lossy = run(&with_faults(&presets::quickstart(), 7, 2e-2));
    assert!(fault_counter(&lossy, "detected") > 0, "lossy run was clean");
    assert!(
        fault_counter(&lossy, "flit_clones") > 0,
        "corruption must clone (counter appears dead)"
    );
}

#[test]
fn scheduled_outage_recovers_and_is_deterministic() {
    // A finite scheduled outage on one router link: flits sent into the
    // outage are dropped and retransmitted after it lifts, so the run
    // still completes with exactly-once delivery.
    let mut cfg = presets::quickstart();
    cfg.set_path("fault.enabled", Value::Bool(true))
        .expect("obj");
    cfg.set_path(
        "fault.outages",
        Value::Array(vec![{
            let mut o = Value::object();
            o.set_path("router", Value::Int(0)).expect("obj");
            o.set_path("port", Value::Int(4)).expect("obj");
            o.set_path("start", Value::Int(250)).expect("obj");
            o.set_path("end", Value::Int(400)).expect("obj");
            o
        }]),
    )
    .expect("obj");
    let seq = run(&with_engine(&cfg, "sequential", 1));
    assert_eq!(seq.counters.flits_sent, seq.counters.flits_received);
    let sh = run(&with_engine(&cfg, "sharded", 2));
    assert_eq!(stripped_samples(&seq), stripped_samples(&sh));
    assert_eq!(seq.log.to_text(), sh.log.to_text());
}
