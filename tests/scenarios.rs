//! End-to-end contracts of the scenario compiler: every shipped scenario
//! expands byte-identically to its golden configuration, runs end-to-end
//! on every engine with byte-identical results, and reproduces its golden
//! time-series; the expander rejects malformed declarations with precise
//! errors instead of expanding surprises.

use supersim::config::Value;
use supersim::core::{RunOutput, SuperSim};
use supersim::scenario;

fn golden_path(name: &str, ext: &str) -> String {
    format!(
        "{}/tests/golden/scenarios/{name}.{ext}",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn run_with(mut cfg: Value, engine: &str, shards: u64) -> RunOutput {
    cfg.set_path("engine.kind", Value::Str(engine.into()))
        .expect("object");
    cfg.set_path("engine.shards", Value::Int(shards as i64))
        .expect("object");
    SuperSim::from_config(&cfg)
        .expect("build")
        .run()
        .expect("run")
}

#[test]
fn expanded_configs_match_the_goldens() {
    // Regenerate with: ssgen <name> --out tests/golden/scenarios/<name>.json
    for (name, _) in scenario::LIBRARY {
        let compiled = scenario::resolve(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        let golden = std::fs::read_to_string(golden_path(name, "json"))
            .unwrap_or_else(|e| panic!("{name}: golden config missing: {e}"));
        assert_eq!(
            compiled.config.to_json_pretty(),
            golden,
            "{name}: expansion drifted from the golden configuration"
        );
    }
}

#[test]
fn expansion_is_byte_deterministic() {
    for (name, _) in scenario::LIBRARY {
        let a = scenario::resolve(name).unwrap().config.to_json_pretty();
        let b = scenario::resolve(name).unwrap().config.to_json_pretty();
        assert_eq!(a, b, "{name}: two expansions of one declaration differ");
    }
}

#[test]
fn every_scenario_runs_identically_on_every_engine() {
    // Regenerate the time-series goldens with:
    //   supersim --scenario <name> --no-log \
    //     --timeseries tests/golden/scenarios/<name>.timeseries
    for (name, _) in scenario::LIBRARY {
        let cfg = scenario::resolve(name).unwrap().config;
        let seq = run_with(cfg.clone(), "sequential", 1);
        assert!(seq.packets_delivered() > 0, "{name}: no packets delivered");
        let ts = seq
            .timeseries
            .as_deref()
            .unwrap_or_else(|| panic!("{name}: sampling not armed"));
        let golden = std::fs::read_to_string(golden_path(name, "timeseries"))
            .unwrap_or_else(|e| panic!("{name}: golden time-series missing: {e}"));
        assert_eq!(
            ts, golden,
            "{name}: time-series drifted from the golden file"
        );
        let sharded = run_with(cfg, "sharded", 2);
        assert_eq!(
            seq.timeseries.as_deref(),
            sharded.timeseries.as_deref(),
            "{name}: time-series diverged between engines"
        );
        assert_eq!(
            seq.log.to_text(),
            sharded.log.to_text(),
            "{name}: sample log diverged between engines"
        );
    }
}

#[test]
fn declaration_files_on_disk_compile_to_their_names() {
    let dir = format!("{}/configs/scenarios", env!("CARGO_MANIFEST_DIR"));
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("configs/scenarios present") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let stem = path.file_stem().unwrap().to_str().unwrap().to_string();
        let text = std::fs::read_to_string(&path).expect("readable");
        let doc = Value::parse(&text).unwrap_or_else(|e| panic!("{stem}: {e}"));
        assert!(
            scenario::is_declaration(&doc),
            "{stem}: files under configs/scenarios/ must be declarations"
        );
        let compiled = scenario::compile(&doc).unwrap_or_else(|e| panic!("{stem}: {e}"));
        assert_eq!(
            compiled.name, stem,
            "declaration name must match its file name"
        );
        seen += 1;
    }
    assert_eq!(
        seen,
        scenario::LIBRARY.len(),
        "every on-disk declaration must be in the embedded library (and vice versa)"
    );
}

fn compile_str(text: &str) -> Result<scenario::Compiled, scenario::ScenarioError> {
    scenario::compile(&Value::parse(text).unwrap())
}

#[test]
fn unknown_keys_are_rejected_everywhere() {
    for (ctx, text) in [
        (
            "declaration",
            r#"{"scenario": "t", "seed": 1, "terminals": 16, "topolgy": {},
                "topology": {"family": "torus"},
                "traffic": [{"kind": "uniform", "load": 0.2}]}"#,
        ),
        (
            "topology",
            r#"{"scenario": "t", "seed": 1, "terminals": 16,
                "topology": {"family": "torus", "radix": 4},
                "traffic": [{"kind": "uniform", "load": 0.2}]}"#,
        ),
        (
            "traffic[0]",
            r#"{"scenario": "t", "seed": 1, "terminals": 16,
                "topology": {"family": "torus"},
                "traffic": [{"kind": "hotspot", "hot": 2, "load": 0.2, "bias2": 0.5}]}"#,
        ),
        (
            "faults.storm",
            r#"{"scenario": "t", "seed": 1, "terminals": 16,
                "topology": {"family": "torus"},
                "traffic": [{"kind": "uniform", "load": 0.2}],
                "faults": {"storm": {"links": 2, "start": 100, "duration": 50,
                                     "stag": 10}}}"#,
        ),
    ] {
        let err = compile_str(text).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(ctx) && msg.contains("unknown key"),
            "{ctx}: wrong error: {msg}"
        );
    }
}

#[test]
fn out_of_range_terminal_counts_are_rejected() {
    for terminals in [0, 1, 2_000_000] {
        let err = compile_str(&format!(
            r#"{{"scenario": "t", "seed": 1, "terminals": {terminals},
                "topology": {{"family": "torus"}},
                "traffic": [{{"kind": "uniform", "load": 0.2}}]}}"#
        ))
        .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }
    // A set size must leave at least one terminal outside the set.
    let err = compile_str(
        r#"{"scenario": "t", "seed": 1, "terminals": 16,
            "topology": {"family": "torus"},
            "traffic": [{"kind": "incast", "victims": 16, "load": 0.2}]}"#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("between 1 and"), "{err}");
}

#[test]
fn taper_is_validated_and_clos_only() {
    // Zero is not a taper: 1 is the full-bisection tree, R > 1 thins it.
    let err = compile_str(
        r#"{"scenario": "t", "seed": 1, "terminals": 64,
            "topology": {"family": "folded_clos", "levels": 3, "taper": 0},
            "traffic": [{"kind": "cross_subtree", "load": 0.2}]}"#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("taper"), "{err}");
    // The hint only means something on a tree; every other family
    // rejects it instead of silently ignoring it.
    for family in ["torus", "hyperx"] {
        let err = compile_str(&format!(
            r#"{{"scenario": "t", "seed": 1, "terminals": 16,
                "topology": {{"family": "{family}", "taper": 2}},
                "traffic": [{{"kind": "uniform", "load": 0.2}}]}}"#
        ))
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("taper") && msg.contains(family),
            "{family}: wrong error: {msg}"
        );
    }
}

#[test]
fn taper_thins_the_core_and_defaults_to_full_bisection() {
    let with_taper = |taper: &str| {
        compile_str(&format!(
            r#"{{"scenario": "t", "seed": 1, "terminals": 64,
                "topology": {{"family": "folded_clos", "levels": 3{taper}}},
                "traffic": [{{"kind": "cross_subtree", "load": 0.2}}]}}"#
        ))
        .unwrap()
        .config
    };
    let full = with_taper("");
    let tapered = with_taper(r#", "taper": 4"#);
    // R = 4 quadruples the local channel latency and quarters the
    // output-queue budget; an absent taper emits the same shape as
    // before the hint existed.
    for (cfg, latency, queue) in [(&full, 10, 16), (&tapered, 40, 4)] {
        assert_eq!(
            cfg.path("network.channel.local_latency")
                .and_then(Value::as_u64),
            Some(latency)
        );
        assert_eq!(
            cfg.path("network.router.output_queue")
                .and_then(Value::as_u64),
            Some(queue)
        );
    }
    // Extreme tapers floor the queue at 1 rather than emitting 0.
    let extreme = with_taper(r#", "taper": 32"#);
    assert_eq!(
        extreme
            .path("network.router.output_queue")
            .and_then(Value::as_u64),
        Some(1)
    );
}

#[test]
fn conflicting_traffic_declarations_are_rejected() {
    let err = compile_str(
        r#"{"scenario": "t", "seed": 1, "terminals": 16,
            "topology": {"family": "torus"},
            "traffic": [{"kind": "uniform", "load": 0.8},
                        {"kind": "incast", "victims": 2, "load": 0.4}]}"#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("conflicting"), "{err}");
}

#[test]
fn the_scenario_seed_rules_both_expansion_and_simulation() {
    // Changing only the declaration seed must change the picked sets (the
    // expansion PRNG) and flow into the emitted config's `seed` (the
    // simulation PRNG) — one knob, the whole experiment.
    let with_seed = |seed: u64| {
        compile_str(&format!(
            r#"{{"scenario": "t", "seed": {seed}, "terminals": 64,
                "topology": {{"family": "torus"}},
                "traffic": [{{"kind": "hotspot", "hot": 8, "load": 0.2}}]}}"#
        ))
        .unwrap()
        .config
    };
    let a = with_seed(3);
    let b = with_seed(4);
    assert_eq!(a.req_u64("seed").unwrap(), 3);
    assert_eq!(b.req_u64("seed").unwrap(), 4);
    assert_ne!(
        a.path("workload.applications.0.pattern.hot"),
        b.path("workload.applications.0.pattern.hot"),
        "different seeds must pick different hot sets"
    );
}
