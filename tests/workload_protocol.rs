//! The four-phase workload protocol observed end to end: sampling windows,
//! multi-application interop, and sample flagging (paper §IV-A).

use supersim::config::Value;
use supersim::core::{presets, SuperSim};
use supersim::netbase::Phase;
use supersim::stats::RecordKind;

#[test]
fn sampled_packets_were_sent_inside_the_window() {
    let cfg = presets::quickstart();
    let out = SuperSim::from_config(&cfg)
        .expect("build")
        .run()
        .expect("run");
    let (start, end) = out.window().expect("window exists");
    // The end boundary is inclusive: a message created at the same tick
    // the Stop command arrives was generated while its terminal was still
    // in the generating phase (intra-tick event ordering).
    for r in out.log.of_kind(RecordKind::Packet) {
        assert!(
            r.send >= start && r.send <= end,
            "sampled packet sent at {} outside window [{start}, {end}]",
            r.send
        );
    }
}

#[test]
fn warmup_traffic_is_not_sampled() {
    // With a long warmup the interfaces carry traffic before the window;
    // none of it may appear in the log.
    let mut cfg = presets::quickstart();
    cfg.set_path("workload.applications.0.warmup_ticks", Value::from(2000u64))
        .expect("object");
    let out = SuperSim::from_config(&cfg)
        .expect("build")
        .run()
        .expect("run");
    let start = out
        .phase_start(Phase::Generating)
        .expect("generating happened");
    assert!(start >= 2000, "warmup was cut short");
    // Traffic flowed during warming...
    let warm_flits: u64 = out.window_flits;
    assert!(
        out.counters.flits_received > warm_flits,
        "no warmup traffic"
    );
    // ...but every logged record was sampled inside the window.
    assert!(out.log.records().iter().all(|r| r.send >= start));
}

#[test]
fn blast_and_pulse_interoperate() {
    let cfg = presets::transient(0.2, 2000, 0.8, 20, 500);
    let out = SuperSim::from_config(&cfg)
        .expect("build")
        .run()
        .expect("run");
    // Both applications contributed samples.
    let blast = out.log.records().iter().filter(|r| r.app == 0).count();
    let pulse = out.log.records().iter().filter(|r| r.app == 1).count();
    assert!(blast > 0, "blast sampled nothing");
    assert!(pulse > 0, "pulse sampled nothing");
    // Pulse fired exactly 20 messages per terminal (32 terminals).
    let pulse_msgs = out
        .log
        .of_kind(RecordKind::Message)
        .filter(|r| r.app == 1)
        .count();
    assert_eq!(pulse_msgs, 20 * 32);
    // The generating phase lasted at least the configured sample time.
    let (start, end) = out.window().expect("window");
    assert!(
        end - start >= 2000,
        "sampling window shorter than blast asked for"
    );
}

#[test]
fn pingpong_transactions_are_recorded() {
    let mut cfg = presets::quickstart();
    cfg.set_path(
        "workload.applications.0",
        supersim::config::obj! {
            "name" => "pingpong",
            "request_size" => 1u64,
            "reply_size" => 3u64,
            "transactions" => 5u64,
            "pattern" => obj_pattern(),
        },
    )
    .expect("object");
    let out = SuperSim::from_config(&cfg)
        .expect("build")
        .run()
        .expect("run");
    let txns = out.log.of_kind(RecordKind::Transaction).count();
    // 16 terminals × 5 transactions each.
    assert_eq!(txns, 16 * 5);
    // Transaction latency covers a full round trip: strictly more than the
    // one-way packet latency of its request.
    let mean_pkt = out.mean_packet_latency().expect("packets sampled");
    let mean_txn: f64 = {
        let (sum, n) = out
            .log
            .of_kind(RecordKind::Transaction)
            .fold((0u64, 0u64), |(s, n), r| (s + r.latency(), n + 1));
        sum as f64 / n as f64
    };
    assert!(
        mean_txn > mean_pkt * 1.5,
        "transaction latency {mean_txn} vs packet {mean_pkt}"
    );
}

fn obj_pattern() -> Value {
    supersim::config::obj! { "name" => "random_permutation", "seed" => 3u64 }
}

#[test]
fn messages_latencies_bound_packet_latencies() {
    // A message completes no earlier than its last packet; with one packet
    // per message the two records agree exactly.
    let cfg = presets::quickstart();
    let out = SuperSim::from_config(&cfg)
        .expect("build")
        .run()
        .expect("run");
    let packets = out.log.of_kind(RecordKind::Packet).count();
    let messages = out.log.of_kind(RecordKind::Message).count();
    assert!(messages > 0);
    // 2-flit messages with max packet 4: exactly one packet per message.
    assert_eq!(packets, messages);
    let mean_pkt = out.mean_packet_latency().expect("sampled");
    let mean_msg: f64 = {
        let (sum, n) = out
            .log
            .of_kind(RecordKind::Message)
            .fold((0u64, 0u64), |(s, n), r| (s + r.latency(), n + 1));
        sum as f64 / n as f64
    };
    assert!((mean_pkt - mean_msg).abs() < 1e-9);
}
