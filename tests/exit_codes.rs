//! Pins the `supersim` binary's documented process exit codes, the
//! contract scripts and CI harnesses key off:
//!
//! | code | meaning                                              |
//! |------|------------------------------------------------------|
//! | 0    | clean run                                            |
//! | 1    | usage, configuration, build, or output-io error      |
//! | 2    | degraded run (model error, stall, incomplete output) |
//! | 3    | watchdog cutoff                                      |
//! | 4    | worker process died, hung, or failed to start        |
//! | 5    | checkpoint resume failure                            |
//!
//! Every test spawns the real binary so the codes observed here are the
//! codes the operating system reports, not an in-process approximation.
#![cfg(unix)]

use std::path::PathBuf;
use std::process::Command;

use supersim::config::Value;
use supersim::core::presets;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_supersim")
}

/// A fresh scratch directory unique to this test binary invocation.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("supersim-exit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn write_cfg(dir: &std::path::Path, cfg: &Value) -> PathBuf {
    let path = dir.join("config.json");
    std::fs::write(&path, cfg.to_json_pretty()).expect("write config");
    path
}

fn run_code(args: &[&str], env: &[(&str, &str)]) -> i32 {
    let mut cmd = Command::new(bin());
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let status = cmd.output().expect("spawn supersim").status;
    status.code().expect("no exit code (signal?)")
}

#[test]
fn code_0_clean_run() {
    let dir = scratch_dir("clean");
    let cfg = write_cfg(&dir, &presets::quickstart());
    assert_eq!(run_code(&[cfg.to_str().unwrap(), "--no-log"], &[]), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn code_1_usage_error() {
    assert_eq!(run_code(&[], &[]), 1, "no arguments must be a usage error");
    assert_eq!(
        run_code(&["/nonexistent/config.json", "--no-log"], &[]),
        1,
        "unreadable config must be a configuration error"
    );
}

#[test]
fn code_2_degraded_run() {
    // A tick limit below the drain point leaves the run stalled with
    // traffic still in flight: degraded, not clean, not a usage error.
    let dir = scratch_dir("degraded");
    let mut cfg = presets::quickstart();
    cfg.set_path("tick_limit", Value::Int(300)).expect("object");
    let cfg = write_cfg(&dir, &cfg);
    assert_eq!(run_code(&[cfg.to_str().unwrap(), "--no-log"], &[]), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn code_3_watchdog_cutoff() {
    let cfg = concat!(env!("CARGO_MANIFEST_DIR"), "/configs/deadlock_2router.json");
    assert_eq!(run_code(&[cfg, "--no-log"], &[]), 3);
}

#[test]
fn code_4_worker_failure() {
    let dir = scratch_dir("worker");
    let cfg = write_cfg(&dir, &presets::quickstart());
    assert_eq!(
        run_code(
            &[cfg.to_str().unwrap(), "--no-log", "--workers", "2"],
            &[("SUPERSIM_TEST_WORKER_FAIL", "exit:1:40")],
        ),
        4
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn code_5_resume_failure() {
    let dir = scratch_dir("resume");
    let cfg = write_cfg(&dir, &presets::quickstart());
    let junk = dir.join("junk.ssckpt");
    std::fs::write(&junk, b"this is not a checkpoint").expect("write junk");
    assert_eq!(
        run_code(
            &[
                cfg.to_str().unwrap(),
                "--no-log",
                "--resume",
                junk.to_str().unwrap(),
            ],
            &[],
        ),
        5
    );
    let _ = std::fs::remove_dir_all(&dir);
}
