//! Paper §IV-D: the framework catches broken user models early. These
//! tests inject deliberately buggy components through the public factory
//! API and assert the simulator refuses or fails loudly instead of
//! producing silently wrong results.

use std::sync::Arc;

use supersim::config::{obj, Value};
use supersim::core::factory::{Factories, NetworkPlan};
use supersim::core::{BuildError, SimError, SuperSim};
use supersim::netbase::Flit;
use supersim::topology::{HyperX, RouteChoice, RoutingAlgorithm, RoutingContext, Topology};

fn tiny_config(topology_name: &str) -> Value {
    obj! {
        "seed" => 5u64,
        "network" => obj! {
            "topology" => obj! { "name" => topology_name, "widths" => vec![4u64], "concentration" => 1u64 },
            "vcs" => 2u64,
            "routing" => obj! { "algorithm" => "minimal" },
            "channel" => obj! { "local_latency" => 2u64 },
            "router" => obj! { "architecture" => "input_queued", "input_buffer" => 8u64 },
            "interface" => obj! { "eject_buffer" => 16u64 },
        },
        "workload" => obj! {
            "applications" => vec![obj! {
                "name" => "blast",
                "load" => 0.2f64,
                "sample_messages" => 10u64,
            }],
        },
    }
}

/// A routing engine returning a VC that was never registered.
struct IllegalVcRouting {
    topology: Arc<HyperX>,
}

impl RoutingAlgorithm for IllegalVcRouting {
    fn name(&self) -> &str {
        "illegal_vc"
    }
    fn vcs_required(&self) -> u32 {
        2
    }
    fn route(&mut self, ctx: &mut RoutingContext<'_>, flit: &mut Flit) -> RouteChoice {
        let (dst_router, dst_port) = self.topology.terminal_attachment(flit.pkt.dst);
        if ctx.router == dst_router {
            return RouteChoice {
                port: dst_port,
                vc: 99,
            }; // unregistered VC
        }
        let coord = self.topology.router_coords(dst_router)[0];
        RouteChoice {
            port: self.topology.port_toward(ctx.router, 0, coord),
            vc: 0,
        }
    }
}

/// A routing engine that targets an unused (out of range) output port.
struct WildPortRouting;

impl RoutingAlgorithm for WildPortRouting {
    fn name(&self) -> &str {
        "wild_port"
    }
    fn vcs_required(&self) -> u32 {
        2
    }
    fn route(&mut self, _ctx: &mut RoutingContext<'_>, _flit: &mut Flit) -> RouteChoice {
        RouteChoice { port: 1000, vc: 0 }
    }
}

/// A routing engine that misdelivers: everything goes to terminal port 0
/// of the local router, regardless of destination.
struct MisdeliverRouting;

impl RoutingAlgorithm for MisdeliverRouting {
    fn name(&self) -> &str {
        "misdeliver"
    }
    fn vcs_required(&self) -> u32 {
        2
    }
    fn route(&mut self, _ctx: &mut RoutingContext<'_>, _flit: &mut Flit) -> RouteChoice {
        RouteChoice { port: 0, vc: 0 }
    }
}

fn factories_with(
    name: &'static str,
    make: fn(Arc<HyperX>) -> Box<dyn RoutingAlgorithm>,
) -> Factories {
    let mut f = Factories::with_defaults();
    f.networks.register_raw(name, move |net| {
        let widths: Vec<u32> = net
            .req_u64_array("topology.widths")?
            .iter()
            .map(|&x| x as u32)
            .collect();
        let conc = net.req_u64("topology.concentration")? as u32;
        let topology = Arc::new(HyperX::new(widths, conc)?);
        let t = Arc::clone(&topology);
        let routing: Arc<dyn Fn(_, _) -> Box<dyn RoutingAlgorithm> + Send + Sync> =
            Arc::new(move |_, _| make(Arc::clone(&t)));
        Ok(NetworkPlan { topology, routing })
    });
    f
}

#[test]
fn unregistered_vc_use_is_caught() {
    let factories = factories_with("buggy", |t| Box::new(IllegalVcRouting { topology: t }));
    let mut cfg = tiny_config("buggy");
    cfg.set_path("network.topology.name", "buggy".into())
        .expect("object");
    let err = SuperSim::with_factories(&cfg, &factories)
        .expect("builds fine")
        .run()
        .expect_err("must fail at runtime");
    let msg = err.to_string();
    assert!(msg.contains("illegal output"), "unexpected error: {msg}");
}

#[test]
fn unused_output_port_is_rejected() {
    let factories = factories_with("wild", |_| Box::new(WildPortRouting));
    let mut cfg = tiny_config("wild");
    cfg.set_path("network.topology.name", "wild".into())
        .expect("object");
    let err = SuperSim::with_factories(&cfg, &factories)
        .expect("builds fine")
        .run()
        .expect_err("must fail at runtime");
    assert!(matches!(err, SimError::Model(_)), "unexpected error: {err}");
}

#[test]
fn wrong_destination_delivery_is_caught() {
    let factories = factories_with("misdeliver", |_| Box::new(MisdeliverRouting));
    let mut cfg = tiny_config("misdeliver");
    cfg.set_path("network.topology.name", "misdeliver".into())
        .expect("object");
    let err = SuperSim::with_factories(&cfg, &factories)
        .expect("builds fine")
        .run()
        .expect_err("must fail at runtime");
    let msg = err.to_string();
    assert!(msg.contains("delivered to"), "unexpected error: {msg}");
}

#[test]
fn build_errors_are_descriptive() {
    // Unknown models.
    let mut cfg = tiny_config("hyperx");
    cfg.set_path("network.topology.name", "klein_bottle".into())
        .expect("object");
    let err = SuperSim::from_config(&cfg).expect_err("unknown topology");
    assert!(err.to_string().contains("klein_bottle"));

    let mut cfg = tiny_config("hyperx");
    cfg.set_path("network.router.architecture", "quantum".into())
        .expect("object");
    let err = SuperSim::from_config(&cfg).expect_err("unknown architecture");
    assert!(matches!(err, BuildError::UnknownModel { .. }));

    // Missing required settings.
    let mut cfg = tiny_config("hyperx");
    cfg.as_object_mut()
        .expect("object")
        .get_mut("network")
        .and_then(|n| n.as_object_mut())
        .expect("object")
        .remove("vcs");
    let err = SuperSim::from_config(&cfg).expect_err("missing vcs");
    assert!(err.to_string().contains("vcs"));

    // Structurally invalid: UGAL with one VC.
    let mut cfg = tiny_config("hyperx");
    cfg.set_path("network.vcs", Value::from(1u64))
        .expect("object");
    cfg.set_path("network.routing.algorithm", "ugal".into())
        .expect("object");
    let err = SuperSim::from_config(&cfg).expect_err("ugal needs 2 vcs");
    assert!(err.to_string().contains("2 VCs"));
}

#[test]
fn overload_configurations_are_rejected() {
    // A load above one flit/tick/terminal cannot be offered.
    let mut cfg = tiny_config("hyperx");
    cfg.set_path("workload.applications.0.load", Value::Float(1.5))
        .expect("object");
    assert!(SuperSim::from_config(&cfg).is_err());
}
