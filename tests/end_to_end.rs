//! Cross-crate integration: every topology × router architecture
//! combination builds, runs all four workload phases, drains, and
//! conserves flits end to end.

use supersim::config::{obj, Value};
use supersim::core::SuperSim;

/// Builds a small config for the given topology block and router
/// architecture.
fn config(topology: Value, vcs: u64, arch: &str, routing: Value) -> Value {
    let mut router = obj! {
        "architecture" => arch,
        "input_buffer" => 16u64,
        "xbar_latency" => 1u64,
        "core_latency" => 2u64,
        "flow_control" => "flit_buffer",
        "arbiter" => "round_robin",
    };
    if arch == "input_output_queued" {
        router
            .set_path("output_queue", Value::from(32u64))
            .expect("object");
    }
    obj! {
        "seed" => 99u64,
        "network" => obj! {
            "topology" => topology,
            "vcs" => vcs,
            "routing" => routing,
            "channel" => obj! { "terminal_latency" => 1u64, "local_latency" => 3u64, "global_latency" => 9u64 },
            "router" => router,
            "interface" => obj! { "eject_buffer" => 32u64, "max_packet_size" => 4u64 },
        },
        "workload" => obj! {
            "applications" => vec![obj! {
                "name" => "blast",
                "load" => 0.2f64,
                "message_size" => 3u64,
                "warmup_ticks" => 100u64,
                "sample_messages" => 30u64,
                "pattern" => obj! { "name" => "uniform_random" },
            }],
        },
    }
}

fn run_and_check(cfg: Value, what: &str) {
    let sim = SuperSim::from_config(&cfg).unwrap_or_else(|e| panic!("{what}: build failed: {e}"));
    let terminals = sim.topology().num_terminals();
    let out = sim
        .run()
        .unwrap_or_else(|e| panic!("{what}: run failed: {e}"));
    assert!(out.packets_delivered() > 0, "{what}: nothing sampled");
    // Flit conservation: after draining, everything injected was ejected.
    assert_eq!(
        out.counters.flits_sent, out.counters.flits_received,
        "{what}: flits lost or duplicated"
    );
    assert_eq!(
        out.counters.messages_sent, out.counters.messages_received,
        "{what}: messages lost"
    );
    // Every terminal generated its share.
    assert!(
        out.counters.messages_sent >= 30 * terminals as u64,
        "{what}: undergenerated"
    );
    // The four phases happened in order.
    let ticks: Vec<u64> = out.phase_times.iter().map(|&(_, t)| t).collect();
    assert!(
        ticks.windows(2).all(|w| w[0] <= w[1]),
        "{what}: phases out of order"
    );
    assert_eq!(out.phase_times.len(), 4, "{what}: missing phases");
}

#[test]
fn torus_with_each_architecture() {
    for arch in ["input_queued", "output_queued", "input_output_queued"] {
        let cfg = config(
            obj! { "name" => "torus", "widths" => vec![4u64, 4u64], "concentration" => 1u64 },
            2,
            arch,
            obj! { "algorithm" => "dimension_order" },
        );
        run_and_check(cfg, &format!("torus/{arch}"));
    }
}

#[test]
fn folded_clos_with_each_architecture() {
    for arch in ["input_queued", "output_queued", "input_output_queued"] {
        let cfg = config(
            obj! { "name" => "folded_clos", "levels" => 2u64, "k" => 4u64 },
            1,
            arch,
            obj! { "algorithm" => "adaptive_updown" },
        );
        run_and_check(cfg, &format!("clos/{arch}"));
    }
}

#[test]
fn hyperx_minimal_and_ugal() {
    for algo in ["minimal", "ugal", "valiant"] {
        let cfg = config(
            obj! { "name" => "hyperx", "widths" => vec![6u64], "concentration" => 2u64 },
            2,
            "input_output_queued",
            obj! { "algorithm" => algo },
        );
        run_and_check(cfg, &format!("hyperx/{algo}"));
    }
}

#[test]
fn dragonfly_minimal_and_ugal() {
    for (algo, vcs) in [("minimal", 3u64), ("ugal", 6u64)] {
        let cfg = config(
            obj! { "name" => "dragonfly", "group_size" => 3u64, "global_ports" => 1u64, "concentration" => 2u64 },
            vcs,
            "input_queued",
            obj! { "algorithm" => algo },
        );
        run_and_check(cfg, &format!("dragonfly/{algo}"));
    }
}

#[test]
fn every_flow_control_on_long_messages() {
    for fc in ["flit_buffer", "packet_buffer", "winner_take_all"] {
        let mut cfg = config(
            obj! { "name" => "torus", "widths" => vec![4u64], "concentration" => 2u64 },
            4,
            "input_queued",
            obj! { "algorithm" => "dimension_order" },
        );
        cfg.set_path("network.router.flow_control", fc.into())
            .expect("object");
        cfg.set_path("workload.applications.0.message_size", Value::from(8u64))
            .expect("object");
        cfg.set_path("network.interface.max_packet_size", Value::from(8u64))
            .expect("object");
        run_and_check(cfg, &format!("torus/{fc}"));
    }
}

#[test]
fn adversarial_patterns_drain() {
    for pattern in ["bit_complement", "transpose", "random_permutation"] {
        let mut cfg = config(
            obj! { "name" => "torus", "widths" => vec![4u64, 4u64], "concentration" => 1u64 },
            2,
            "input_queued",
            obj! { "algorithm" => "dimension_order" },
        );
        cfg.set_path("workload.applications.0.pattern.name", pattern.into())
            .expect("object");
        run_and_check(cfg, &format!("torus/{pattern}"));
    }
}

#[test]
fn tornado_on_a_ring() {
    let mut cfg = config(
        obj! { "name" => "torus", "widths" => vec![8u64], "concentration" => 1u64 },
        2,
        "input_queued",
        obj! { "algorithm" => "dimension_order" },
    );
    cfg.set_path(
        "workload.applications.0.pattern",
        obj! { "name" => "tornado", "widths" => vec![8u64], "concentration" => 1u64 },
    )
    .expect("object");
    run_and_check(cfg, "torus/tornado");
}

#[test]
fn multi_flit_messages_segment_into_packets() {
    let mut cfg = config(
        obj! { "name" => "hyperx", "widths" => vec![4u64], "concentration" => 1u64 },
        2,
        "input_queued",
        obj! { "algorithm" => "minimal" },
    );
    // 10-flit messages, max packet 4: 3 packets per message.
    cfg.set_path("workload.applications.0.message_size", Value::from(10u64))
        .expect("obj");
    cfg.set_path("network.interface.max_packet_size", Value::from(4u64))
        .expect("obj");
    let out = SuperSim::from_config(&cfg)
        .expect("build")
        .run()
        .expect("run");
    assert_eq!(out.counters.packets_sent, out.counters.messages_sent * 3);
    assert_eq!(out.counters.flits_sent, out.counters.messages_sent * 10);
    assert_eq!(out.counters.flits_sent, out.counters.flits_received);
}
