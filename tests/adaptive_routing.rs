//! Adaptive routing earns its keep: under adversarial traffic on a 1-D
//! flattened butterfly, minimal routing bottlenecks on the single direct
//! link per router pair, while Valiant spreads load over all links and
//! UGAL adaptively matches whichever is better — the behavior UGAL was
//! designed for (Singh 2005) and the foundation of paper case study B.

use supersim::config::{obj, Value};
use supersim::core::SuperSim;
use supersim::stats::Filter;

fn config(algorithm: &str, pattern: &str, load: f64) -> Value {
    obj! {
        "seed" => 21u64,
        "network" => obj! {
            "topology" => obj! { "name" => "hyperx", "widths" => vec![8u64], "concentration" => 8u64 },
            "vcs" => 2u64,
            "routing" => obj! { "algorithm" => algorithm, "threshold" => 0.0f64 },
            "channel" => obj! { "terminal_latency" => 1u64, "local_latency" => 8u64 },
            "router" => obj! {
                "architecture" => "input_output_queued",
                "input_buffer" => 32u64,
                "output_queue" => 64u64,
                "xbar_latency" => 2u64,
                "flow_control" => "flit_buffer",
                "arbiter" => "round_robin",
                "congestion_sensor" => obj! {
                    "source" => "downstream",
                    "granularity" => "port",
                    "delay" => 0u64,
                },
            },
            "interface" => obj! { "eject_buffer" => 32u64, "max_packet_size" => 4u64 },
        },
        "workload" => obj! {
            "applications" => vec![obj! {
                "name" => "blast",
                "load" => load,
                "message_size" => 1u64,
                "warmup_ticks" => 600u64,
                "sample_messages" => 80u64,
                "pattern" => obj! { "name" => pattern },
            }],
        },
    }
}

fn delivered(algorithm: &str, pattern: &str, load: f64) -> f64 {
    let out = SuperSim::from_config(&config(algorithm, pattern, load))
        .unwrap_or_else(|e| panic!("{algorithm}/{pattern}: {e}"))
        .run()
        .unwrap_or_else(|e| panic!("{algorithm}/{pattern}: {e}"));
    out.load_point(load, &Filter::new())
        .expect("window")
        .delivered
}

#[test]
fn ugal_beats_minimal_under_bit_complement() {
    // Bit complement pairs routers; minimal routing funnels each pair's
    // 8 terminals of traffic over one link (capacity 1/8 = 0.125 of line
    // rate per terminal).
    let load = 0.6;
    let minimal = delivered("minimal", "bit_complement", load);
    let ugal = delivered("ugal", "bit_complement", load);
    let valiant = delivered("valiant", "bit_complement", load);
    assert!(
        minimal < 0.25,
        "minimal should bottleneck hard under BC, delivered {minimal:.3}"
    );
    assert!(
        ugal > minimal * 2.0,
        "ugal ({ugal:.3}) should far exceed minimal ({minimal:.3}) under BC"
    );
    assert!(
        valiant > minimal * 2.0,
        "valiant ({valiant:.3}) should far exceed minimal ({minimal:.3}) under BC"
    );
}

#[test]
fn minimal_and_ugal_match_under_uniform_random() {
    // On benign traffic UGAL should stay (mostly) minimal and not give up
    // meaningful throughput; Valiant pays its 2x path tax.
    let load = 0.55;
    let minimal = delivered("minimal", "uniform_random", load);
    let ugal = delivered("ugal", "uniform_random", load);
    assert!(
        (minimal - ugal).abs() < 0.1 * minimal,
        "ugal ({ugal:.3}) should track minimal ({minimal:.3}) under UR"
    );
    assert!(
        (minimal - load).abs() < 0.05,
        "minimal should deliver the offered load"
    );
}

fn torus_config(algorithm: &str, vcs: u64, pattern: Value, load: f64) -> Value {
    obj! {
        "seed" => 33u64,
        "network" => obj! {
            "topology" => obj! { "name" => "torus", "widths" => vec![4u64, 4u64], "concentration" => 1u64 },
            "vcs" => vcs,
            "routing" => obj! { "algorithm" => algorithm },
            "channel" => obj! { "terminal_latency" => 1u64, "local_latency" => 4u64 },
            "router" => obj! {
                "architecture" => "input_queued",
                "input_buffer" => 8u64,
                "xbar_latency" => 2u64,
                "flow_control" => "flit_buffer",
                "arbiter" => "age_based",
            },
            "interface" => obj! { "eject_buffer" => 16u64, "max_packet_size" => 4u64 },
        },
        "workload" => obj! {
            "applications" => vec![obj! {
                "name" => "blast",
                "load" => load,
                "message_size" => 4u64,
                "warmup_ticks" => 400u64,
                "sample_messages" => 60u64,
                "pattern" => pattern,
            }],
        },
    }
}

#[test]
fn adaptive_torus_survives_saturating_adversarial_traffic() {
    // High-load multi-flit wormhole traffic with the freedom to pick any
    // productive dimension: the Duato escape sub-network must keep the
    // network deadlock-free all the way through the drain.
    for pattern in [
        obj! { "name" => "transpose" },
        obj! { "name" => "tornado", "widths" => vec![4u64, 4u64], "concentration" => 1u64 },
        obj! { "name" => "uniform_random" },
    ] {
        let cfg = torus_config("adaptive", 4, pattern.clone(), 0.9);
        let out = SuperSim::from_config(&cfg)
            .unwrap_or_else(|e| panic!("adaptive/{pattern}: {e}"))
            .run()
            .unwrap_or_else(|e| panic!("adaptive/{pattern}: {e}"));
        assert_eq!(
            out.counters.flits_sent, out.counters.flits_received,
            "adaptive/{pattern}: flits lost"
        );
        assert!(out.packets_delivered() > 0);
    }
}

#[test]
fn adaptive_torus_beats_dor_under_transpose() {
    // Transpose concentrates row traffic onto single DOR paths; minimal
    // adaptive routing can spread it across both productive dimensions.
    let load = 0.75;
    let dor = SuperSim::from_config(&torus_config(
        "dimension_order",
        4,
        obj! { "name" => "transpose" },
        load,
    ))
    .expect("build")
    .run()
    .expect("run")
    .load_point(load, &Filter::new())
    .expect("window")
    .delivered;
    let adaptive = SuperSim::from_config(&torus_config(
        "adaptive",
        4,
        obj! { "name" => "transpose" },
        load,
    ))
    .expect("build")
    .run()
    .expect("run")
    .load_point(load, &Filter::new())
    .expect("window")
    .delivered;
    assert!(
        adaptive >= dor * 0.98,
        "adaptive ({adaptive:.3}) should at least match DOR ({dor:.3}) under transpose"
    );
}
