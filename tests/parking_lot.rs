//! The parking-lot problem (paper §IV-B): a chain of routers all funneling
//! traffic toward one destination. With round-robin crossbar arbitration
//! the source closest to the destination gets an outsized bandwidth share
//! (each merge point splits 50/50 regardless of how many flows are
//! upstream); age-based arbitration restores fairness. SuperSim ships a
//! stress topology for exactly this; here we reproduce it on a ring.

use std::sync::Arc;

use supersim::config::{obj, Value};
use supersim::core::factory::Factories;
use supersim::core::{BuildError, SuperSim};
use supersim::netbase::TerminalId;
use supersim::stats::RecordKind;
use supersim::workload::TrafficPattern;

/// Everyone sends to terminal 0.
#[derive(Debug)]
struct AllToZero;

impl TrafficPattern for AllToZero {
    fn name(&self) -> &str {
        "all_to_zero"
    }
    fn dest(&self, _src: TerminalId, _rng: &mut supersim_des::Rng) -> TerminalId {
        TerminalId(0)
    }
}

fn config(arbiter: &str) -> Value {
    obj! {
        "seed" => 11u64,
        // An 8-ring where sources 1..=3 all route the short (minus) way to
        // terminal 0, merging hop by hop: the parking lot.
        "network" => obj! {
            "topology" => obj! { "name" => "torus", "widths" => vec![8u64], "concentration" => 1u64 },
            "vcs" => 2u64,
            "routing" => obj! { "algorithm" => "dimension_order" },
            "channel" => obj! { "terminal_latency" => 1u64, "local_latency" => 2u64 },
            "router" => obj! {
                "architecture" => "input_queued",
                "input_buffer" => 8u64,
                "xbar_latency" => 1u64,
                "flow_control" => "flit_buffer",
                "arbiter" => arbiter,
            },
            "interface" => obj! { "eject_buffer" => 8u64, "max_packet_size" => 1u64 },
        },
        "workload" => obj! {
            "applications" => vec![obj! {
                "name" => "blast",
                "load" => 0.9f64,
                "message_size" => 1u64,
                "warmup_ticks" => 400u64,
                "sample_ticks" => 6000u64,
                "pattern" => obj! { "name" => "all_to_zero" },
            }],
        },
    }
}

/// Delivered sampled packets per source terminal (1..=3 contend; the rest
/// also send but from the plus side).
fn per_source_share(arbiter: &str) -> Vec<u64> {
    let mut factories = Factories::with_defaults();
    factories
        .patterns
        .register("all_to_zero", |_cfg, terminals| {
            if terminals < 2 {
                return Err(BuildError::invalid("need at least 2 terminals"));
            }
            Ok(Arc::new(AllToZero) as Arc<dyn TrafficPattern>)
        });
    let out = SuperSim::with_factories(&config(arbiter), &factories)
        .expect("build")
        .run()
        .expect("run");
    // Bandwidth shares are rates *during* the oversubscribed window; after
    // the window everything drains eventually, so totals would hide the
    // unfairness.
    let (start, end) = out.window().expect("window");
    let mut counts = vec![0u64; 8];
    for r in out.log.of_kind(RecordKind::Packet) {
        if r.recv >= start && r.recv < end {
            counts[r.src as usize] += 1;
        }
    }
    counts
}

#[test]
fn age_based_arbitration_fixes_parking_lot_unfairness() {
    let rr = per_source_share("round_robin");
    let age = per_source_share("age_based");

    // Contending minus-direction sources: terminals 1, 2, 3 (4 ties and
    // goes plus; 5..7 travel the plus way and contend among themselves).
    let unfairness = |c: &[u64]| {
        let group = [c[1], c[2], c[3]];
        let max = *group.iter().max().expect("non-empty") as f64;
        let min = *group.iter().min().expect("non-empty") as f64;
        max / min.max(1.0)
    };
    let rr_unfair = unfairness(&rr);
    let age_unfair = unfairness(&age);

    // Round-robin favors the source nearest the destination; age-based
    // arbitration should be substantially more balanced.
    assert!(
        rr_unfair > age_unfair * 1.2,
        "expected age-based to be fairer: round_robin {rr:?} (ratio {rr_unfair:.2}) \
         vs age_based {age:?} (ratio {age_unfair:.2})"
    );
    // And age-based should be close to fair outright.
    assert!(
        age_unfair < 1.5,
        "age-based still unfair: {age:?} (ratio {age_unfair:.2})"
    );
}
