//! The fault plane of the multi-process backend itself: a worker that
//! dies, hangs, or never starts must degrade the run into a typed
//! [`SimError::Worker`] within the transport's timeout budget — never a
//! silent stall — while the parent still assembles whatever partial
//! outputs the surviving workers deliver.
//!
//! Worker misbehavior is injected through the in-tree
//! `SUPERSIM_TEST_WORKER_FAIL` hook (`<exit|hang>:<worker>:<round>`),
//! which the spawned worker processes inherit through the environment.
//! The checkpoint-based recovery path uses two further hooks:
//! `SUPERSIM_TEST_WORKER_WEDGE=<worker>` (worker sleeps before ever
//! connecting, exercising the accept-phase timeout) and
//! `SUPERSIM_TEST_KILL_WORKER=<worker>:<round>` (the parent SIGKILLs the
//! worker right after checkpoint `<round>` completes).
#![cfg(unix)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

use supersim::config::Value;
use supersim::core::{presets, RunReport, SimError, SuperSim};
use supersim::stats::MetricValue;

/// Serializes the tests in this file: they all mutate the same
/// process-global environment variable that spawned workers inherit.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn process_cfg(timeout_ms: u64) -> Value {
    let mut cfg = presets::quickstart();
    for (path, value) in [
        ("engine.kind", Value::Str("sharded".into())),
        ("engine.transport", Value::Str("process".into())),
        ("engine.shards", Value::Int(2)),
        (
            "engine.worker_bin",
            Value::Str(env!("CARGO_BIN_EXE_supersim").into()),
        ),
        ("engine.worker_timeout_ms", Value::Int(timeout_ms as i64)),
    ] {
        cfg.set_path(path, value).expect("object");
    }
    cfg
}

fn run_report(cfg: &Value) -> RunReport {
    SuperSim::from_config(cfg).expect("build").run_report()
}

fn assert_degraded_by_worker(report: &RunReport, worker: u32, label: &str) {
    match &report.error {
        Some(SimError::Worker { worker: w, .. }) => {
            assert_eq!(*w, worker, "{label}: wrong worker blamed");
        }
        other => panic!("{label}: expected SimError::Worker, got {other:?}"),
    }
    assert!(
        matches!(
            report.output.metrics.get("run", "degraded"),
            Some(MetricValue::Counter(1))
        ),
        "{label}: degraded run not marked in the metrics"
    );
    assert!(
        report.diagnostic.is_some(),
        "{label}: degraded run carries no diagnostic snapshot"
    );
}

#[test]
fn killed_worker_degrades_to_a_typed_error() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("SUPERSIM_TEST_WORKER_FAIL", "exit:1:40");
    let report = run_report(&process_cfg(10_000));
    std::env::remove_var("SUPERSIM_TEST_WORKER_FAIL");
    assert_degraded_by_worker(&report, 1, "killed worker");
    let reason = match &report.error {
        Some(SimError::Worker { reason, .. }) => reason.clone(),
        _ => unreachable!(),
    };
    assert!(
        reason.contains("died") || reason.contains("closed"),
        "reason should point at the dead connection, got {reason:?}"
    );
}

#[test]
fn hung_worker_trips_the_timeout_budget() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("SUPERSIM_TEST_WORKER_FAIL", "hang:0:40");
    let started = Instant::now();
    let report = run_report(&process_cfg(2_000));
    let elapsed = started.elapsed();
    std::env::remove_var("SUPERSIM_TEST_WORKER_FAIL");
    assert_degraded_by_worker(&report, 0, "hung worker");
    let reason = match &report.error {
        Some(SimError::Worker { reason, .. }) => reason.clone(),
        _ => unreachable!(),
    };
    assert!(
        reason.contains("hung") || reason.contains("timeout"),
        "reason should point at the timeout, got {reason:?}"
    );
    // The whole degrade path — detection, aborting the survivor,
    // collecting its partial, reaping children — must stay within a few
    // timeout budgets, never a silent stall.
    assert!(
        elapsed < Duration::from_secs(30),
        "degrade took {elapsed:?} on a 2s budget"
    );
}

#[test]
fn missing_worker_binary_is_a_startup_error() {
    let _guard = ENV_LOCK.lock().unwrap();
    let mut cfg = process_cfg(2_000);
    cfg.set_path(
        "engine.worker_bin",
        Value::Str("/nonexistent/supersim-worker".into()),
    )
    .expect("object");
    let report = run_report(&cfg);
    assert_degraded_by_worker(&report, 0, "missing binary");
    let reason = match &report.error {
        Some(SimError::Worker { reason, .. }) => reason.clone(),
        _ => unreachable!(),
    };
    assert!(
        reason.starts_with("startup:"),
        "expected a startup-phase reason, got {reason:?}"
    );
}

/// A fresh, empty scratch directory under the system temp dir, unique
/// per test so parallel test binaries cannot collide.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("supersim-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn wedged_worker_is_cut_off_by_the_process_timeout() {
    // A worker that wedges before it ever connects must be cut off by
    // the accept-phase budget, not waited on forever. The canonical
    // `process.timeout_ms` key must also win over the legacy
    // `engine.worker_timeout_ms` fallback that `process_cfg` sets.
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("SUPERSIM_TEST_WORKER_WEDGE", "1");
    let mut cfg = process_cfg(600_000);
    cfg.set_path("process.timeout_ms", Value::Int(500))
        .expect("object");
    let started = Instant::now();
    let report = run_report(&cfg);
    let elapsed = started.elapsed();
    std::env::remove_var("SUPERSIM_TEST_WORKER_WEDGE");
    assert_degraded_by_worker(&report, 0, "wedged worker");
    let reason = match &report.error {
        Some(SimError::Worker { reason, .. }) => reason.clone(),
        _ => unreachable!(),
    };
    assert!(
        reason.contains("startup") || reason.contains("connected") || reason.contains("timeout"),
        "reason should point at the accept timeout, got {reason:?}"
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "wedge cut-off took {elapsed:?} on a 500ms budget"
    );
}

#[test]
fn crashed_worker_is_respawned_from_the_last_checkpoint() {
    // With checkpointing armed, a SIGKILLed worker must not degrade the
    // run: the parent respawns the whole fleet from the last completed
    // checkpoint and the run finishes clean.
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::remove_var("SUPERSIM_TEST_WORKER_FAIL");
    let dir = scratch_dir("heal-ckpt");
    std::env::set_var("SUPERSIM_TEST_KILL_WORKER", "1:2");
    let mut cfg = process_cfg(30_000);
    cfg.set_path("checkpoint.interval", Value::Int(200))
        .expect("object");
    cfg.set_path(
        "checkpoint.dir",
        Value::Str(dir.to_string_lossy().into_owned()),
    )
    .expect("object");
    let report = run_report(&cfg);
    std::env::remove_var("SUPERSIM_TEST_KILL_WORKER");
    assert!(
        report.is_ok(),
        "recovered run still degraded: {:?}",
        report.error
    );
    assert!(report.output.packets_delivered() > 0);
    assert!(matches!(
        report.output.metrics.get("run", "degraded"),
        Some(MetricValue::Counter(0))
    ));
    // The checkpoint the fleet restarted from must exist on disk.
    assert!(
        dir.join("ckpt-00000002.ssckpt").is_file(),
        "round-2 checkpoint missing from {dir:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_restart_budget_degrades_to_a_typed_error() {
    // `checkpoint.max_restarts = 0` turns recovery off even when
    // checkpoints exist: the first worker death is terminal.
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::remove_var("SUPERSIM_TEST_WORKER_FAIL");
    let dir = scratch_dir("budget-ckpt");
    std::env::set_var("SUPERSIM_TEST_KILL_WORKER", "1:1");
    let mut cfg = process_cfg(30_000);
    for (path, value) in [
        ("checkpoint.interval", Value::Int(200)),
        (
            "checkpoint.dir",
            Value::Str(dir.to_string_lossy().into_owned()),
        ),
        ("checkpoint.max_restarts", Value::Int(0)),
    ] {
        cfg.set_path(path, value).expect("object");
    }
    let report = run_report(&cfg);
    std::env::remove_var("SUPERSIM_TEST_KILL_WORKER");
    assert_degraded_by_worker(&report, 1, "restart budget exhausted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_process_run_reports_no_error() {
    // The robustness hooks must not leak into a clean run: same
    // configuration, no injected failure, full outputs.
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::remove_var("SUPERSIM_TEST_WORKER_FAIL");
    let report = run_report(&process_cfg(30_000));
    assert!(report.is_ok(), "clean run degraded: {:?}", report.error);
    assert!(report.output.packets_delivered() > 0);
    assert!(matches!(
        report.output.metrics.get("run", "degraded"),
        Some(MetricValue::Counter(0))
    ));
}
